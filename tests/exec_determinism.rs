//! Determinism gate for the shared executor: every parallelized stage —
//! data-plane extraction, fault sweeps, spec mining, and the k-degree
//! candidate search — must produce **byte-identical** results at any
//! worker count. The whole suite runs under `CONFMASK_THREADS=1` and
//! `=N` in CI; this test additionally flips the thread count in-process
//! via `configure_threads` and compares the outputs directly, so a
//! completion-order dependency fails even in a single CI configuration.
//!
//! Everything lives in one `#[test]` because the executor's thread count
//! is process-global: concurrent test functions flipping it would race.

use confmask_netgen::{smallnets::university, synthesize};
use confmask_sim::fault::enumerate_single_link_failures;
use confmask_sim::simulate;
use confmask_sim::sweep::{DigestList, ScenarioDigest};
use confmask_sim_delta::{DeltaEngine, ScenarioScratch};
use confmask_topology::kdegree::plan_k_degree;
use confmask_topology::{LinkInfo, NodeKind, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `f` with the executor pinned to `n` workers, restoring the
/// default afterwards even if `f` panics.
fn at_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            confmask_exec::configure_threads(0);
        }
    }
    let _restore = Restore;
    confmask_exec::configure_threads(n);
    f()
}

/// A star topology whose k-degree anonymization needs probing attempts
/// (parity forces perturbation), exercising the parallel candidate waves.
fn star(leaves: usize) -> Topology {
    let mut t = Topology::new();
    let c = t.add_node("c", NodeKind::Router);
    for i in 0..leaves {
        let l = t.add_node(&format!("l{i}"), NodeKind::Router);
        t.add_edge(c, l, LinkInfo::default());
    }
    t
}

/// `Result<ScenarioDigest, SimError>` with the error stringified, so
/// whole sweeps compare with `assert_eq!`.
fn comparable(
    runs: Vec<Result<ScenarioDigest, confmask_sim::SimError>>,
) -> Vec<Result<ScenarioDigest, String>> {
    runs.into_iter().map(|r| r.map_err(|e| e.to_string())).collect()
}

#[test]
fn every_parallel_stage_is_byte_identical_across_thread_counts() {
    let configs = synthesize(&university());
    let scenarios = enumerate_single_link_failures(&configs);
    assert!(scenarios.len() >= 4, "sweep must be non-trivial");

    // 1. Full simulation (parallel SPF + data-plane trace fan-out).
    let sim_serial = at_threads(1, || simulate(&configs)).expect("simulates");
    let sim_parallel = at_threads(8, || simulate(&configs)).expect("simulates");
    assert_eq!(
        sim_serial.dataplane, sim_parallel.dataplane,
        "data plane must not depend on thread count"
    );

    // 2. Incremental fault sweep: the streaming sweep at 1 and 8 workers,
    //    and the sequential per-scenario digest loop, must agree
    //    scenario-for-scenario.
    let sequential = at_threads(1, || {
        let engine = DeltaEngine::new(4);
        let base = engine.converged(&configs).expect("converges");
        let sweep = engine.sweep(&base, &base.sim.dataplane);
        let mut scratch = ScenarioScratch::default();
        scenarios
            .iter()
            .map(|s| sweep.digest(s, &mut scratch))
            .collect::<Vec<_>>()
    });
    let sweep_at = |n: usize| {
        at_threads(n, || {
            let engine = DeltaEngine::new(4);
            let base = engine.converged(&configs).expect("converges");
            let sweep = engine.sweep(&base, &base.sim.dataplane);
            let mut list = DigestList::default();
            sweep.run(scenarios.iter(), &mut list);
            list.results
        })
    };
    let serial = comparable(sequential);
    assert_eq!(serial, comparable(sweep_at(1)), "1-worker sweep diverged");
    assert_eq!(serial, comparable(sweep_at(8)), "8-worker sweep diverged");

    // 3. Spec mining (university has 56 ordered host pairs, enough to take
    //    the parallel path).
    let spec_serial = at_threads(1, || confmask_spec::mine(&sim_serial.dataplane));
    let spec_parallel = at_threads(8, || confmask_spec::mine(&sim_serial.dataplane));
    assert!(spec_serial.len() > 32, "university must mine a real spec");
    assert_eq!(spec_serial, spec_parallel, "mined spec diverged");

    // 4. k-degree candidate search: same caller seed, same plan, at any
    //    thread count (the star's parity mismatch forces probing waves).
    let topo = star(8);
    let plan_at = |n: usize| {
        at_threads(n, || {
            plan_k_degree(&topo, 4, &mut StdRng::seed_from_u64(7)).expect("realizable")
        })
    };
    let plan_serial = plan_at(1);
    let plan_parallel = plan_at(8);
    assert_eq!(plan_serial.new_edges, plan_parallel.new_edges, "k-degree plan diverged");
    assert_eq!(plan_serial.achieved_k, plan_parallel.achieved_k);
}
