//! Differential harness for the incremental simulation engine: on random
//! networks across protocol flavors (OSPF, RIP, two-AS BGP+OSPF), every
//! k = 1 fault simulated through [`DeltaEngine::simulate_perturbed`] must
//! be **byte-identical** to a cold `simulate()` of the same failed
//! configurations — same FIB entries on every router, same data-plane
//! paths for every host pair, and the same error when simulation fails.
//!
//! The sweep is seeded and deterministic. `DELTA_DIFF_SEEDS` controls how
//! many random networks are generated (default 8; CI runs more).

use confmask_netgen::{synthesize, IgpProtocol, TopoSpec};
use confmask_sim::fault::{enumerate_single_link_failures, FailureScenario, Fault};
use confmask_sim::sweep::{PairTable, ScenarioDigest};
use confmask_sim::{simulate, Simulation};
use confmask_sim_delta::{DeltaEngine, ScenarioScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected network of 4–10 routers: random spanning tree plus
/// random extra links with optional costs, random host placement, and the
/// protocol flavor picked by `flavor` (0 = OSPF, 1 = RIP, 2 = BGP+OSPF).
fn random_spec(rng: &mut StdRng, flavor: u8) -> TopoSpec {
    let n = rng.gen_range(4usize..=10);
    let igp = if flavor == 1 {
        IgpProtocol::Rip
    } else {
        IgpProtocol::Ospf
    };
    let mut spec = TopoSpec::new("diff", (0..n).map(|i| format!("d{i}")).collect(), igp);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        spec.links.push((parent, i, None));
    }
    for _ in 0..rng.gen_range(0..8) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let cost = if rng.gen_bool(0.5) {
            Some(rng.gen_range(1u32..20))
        } else {
            None
        };
        if a != b
            && !spec
                .links
                .iter()
                .any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b)))
        {
            spec.links.push((a.min(b), a.max(b), cost));
        }
    }
    for i in 0..rng.gen_range(2usize..5) {
        spec.hosts.push((format!("dh{i}"), rng.gen_range(0..n)));
    }
    if flavor == 2 {
        let cut = n / 2;
        spec.asn_of = Some(
            (0..n)
                .map(|i| if i < cut { 65001 } else { 65002 })
                .collect(),
        );
    }
    spec.boilerplate = false;
    spec
}

/// Byte-level equality of two simulations: every router's FIB entries in
/// order, and the full data plane (paths, flags) for every host pair.
fn assert_sims_equal(tag: &str, cold: &Simulation, delta: &Simulation) {
    assert_eq!(
        cold.fibs.per_router.len(),
        delta.fibs.per_router.len(),
        "{tag}: router count"
    );
    for (i, (fc, fd)) in cold
        .fibs
        .per_router
        .iter()
        .zip(delta.fibs.per_router.iter())
        .enumerate()
    {
        assert_eq!(
            fc.entries().collect::<Vec<_>>(),
            fd.entries().collect::<Vec<_>>(),
            "{tag}: FIB of router #{i} differs"
        );
    }
    assert_eq!(cold.dataplane, delta.dataplane, "{tag}: data plane differs");
}

#[test]
fn delta_simulation_matches_cold_simulation_on_random_networks() {
    let seeds: u64 = std::env::var("DELTA_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mut networks_checked = 0u64;
    let mut scenarios_checked = 0u64;
    for i in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0xD1FF_0000 ^ i);
        let flavor = (i % 3) as u8;
        let spec = random_spec(&mut rng, flavor);
        let configs = synthesize(&spec);
        // An unsimulatable healthy network is a generator artifact (e.g. a
        // BGP split isolating hosts), not a delta-engine case: skip it.
        if simulate(&configs).is_err() {
            continue;
        }
        networks_checked += 1;
        let engine = DeltaEngine::new(4);
        let base = engine.converged(&configs).expect("baseline converges");

        // Every single-link failure, plus two router-down faults: the full
        // supported perturbation class (shutdown-only).
        let mut scenarios = enumerate_single_link_failures(&configs);
        for router in configs.routers.keys().take(2) {
            scenarios.push(FailureScenario::single(Fault::RouterDown {
                router: router.clone(),
            }));
        }
        for scenario in scenarios {
            let tag = format!("seed {i} flavor {flavor}: {scenario}");
            let failed = scenario.apply(&configs).expect("fault applies");
            scenarios_checked += 1;
            match (simulate(&failed), engine.simulate_perturbed(&base, &failed)) {
                (Ok(cold), Ok((delta, stats))) => {
                    assert!(
                        !stats.full_fallback,
                        "{tag}: shutdown-only faults must take the delta path"
                    );
                    assert_sims_equal(&tag, &cold, &delta);
                }
                // Post-failure divergence (e.g. BGP oscillation) must be
                // reported identically by both engines.
                (Err(cold_err), Err(delta_err)) => {
                    assert_eq!(
                        cold_err.to_string(),
                        delta_err.to_string(),
                        "{tag}: error mismatch"
                    );
                }
                (cold, delta) => panic!(
                    "{tag}: outcome mismatch — cold {:?} vs delta {:?}",
                    cold.map(|_| "ok").map_err(|e| e.to_string()),
                    delta.map(|_| "ok").map_err(|e| e.to_string()),
                ),
            }
        }
    }
    assert!(networks_checked > 0, "every generated network was degenerate");
    assert!(scenarios_checked > 0);
    eprintln!(
        "delta-diff: {scenarios_checked} scenario(s) across {networks_checked} network(s), \
         zero mismatches"
    );
}

/// The engine's `run_scenario` façade must classify every pair exactly as
/// the cold `fault::run_scenario` does (it is documented as a drop-in).
#[test]
fn run_scenario_facade_matches_cold_on_random_networks() {
    let seeds: u64 = std::env::var("DELTA_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (n / 2).max(2))
        .unwrap_or(4);
    for i in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0x5CEA_0000 ^ i);
        let spec = random_spec(&mut rng, (i % 3) as u8);
        let configs = synthesize(&spec);
        let Ok(sim) = simulate(&configs) else { continue };
        let engine = DeltaEngine::new(4);
        let base = engine.converged(&configs).expect("baseline converges");
        for scenario in enumerate_single_link_failures(&configs) {
            let cold = confmask_sim::fault::run_scenario(&configs, &sim.dataplane, &scenario);
            let warm = engine.run_scenario(&base, &sim.dataplane, &scenario);
            match (cold, warm) {
                (Ok(c), Ok(w)) => assert_eq!(c, w, "seed {i}: {scenario}"),
                (Err(c), Err(w)) => assert_eq!(c.to_string(), w.to_string()),
                (c, w) => panic!(
                    "seed {i}: {scenario}: outcome mismatch — cold {:?} vs warm {:?}",
                    c.map(|_| "ok").map_err(|e| e.to_string()),
                    w.map(|_| "ok").map_err(|e| e.to_string()),
                ),
            }
        }
    }
}

/// The streaming sweep's digests must be byte-identical (down to the wire
/// encoding) to folding the cold `run_scenario` outcome through
/// `ScenarioDigest::from_outcome` — for every k = 1 fault plus router-down
/// faults, on random networks across protocol flavors.
#[test]
fn streaming_digests_match_cold_folds_on_random_networks() {
    let seeds: u64 = std::env::var("DELTA_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| (n / 2).max(2))
        .unwrap_or(4);
    let mut scenarios_checked = 0u64;
    for i in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0xD16E_0000 ^ i);
        let spec = random_spec(&mut rng, (i % 3) as u8);
        let configs = synthesize(&spec);
        let Ok(sim) = simulate(&configs) else { continue };
        let engine = DeltaEngine::new(4);
        let base = engine.converged(&configs).expect("baseline converges");
        let sweep = engine.sweep(&base, &sim.dataplane);
        let table = PairTable::from_baseline(&sim.dataplane);
        let mut scratch = ScenarioScratch::default();
        let mut scenarios = enumerate_single_link_failures(&configs);
        for router in configs.routers.keys().take(2) {
            scenarios.push(FailureScenario::single(Fault::RouterDown {
                router: router.clone(),
            }));
        }
        for scenario in scenarios {
            scenarios_checked += 1;
            let cold = confmask_sim::fault::run_scenario(&configs, &sim.dataplane, &scenario);
            let warm = sweep.digest(&scenario, &mut scratch);
            match (cold, warm) {
                (Ok(c), Ok(w)) => {
                    let folded = ScenarioDigest::from_outcome(&c, &table);
                    assert_eq!(folded, w, "seed {i}: {scenario}");
                    assert_eq!(
                        folded.encode(),
                        w.encode(),
                        "seed {i}: {scenario}: wire encoding differs"
                    );
                }
                (Err(c), Err(w)) => assert_eq!(c.to_string(), w.to_string()),
                (c, w) => panic!(
                    "seed {i}: {scenario}: outcome mismatch — cold {:?} vs warm {:?}",
                    c.map(|_| "ok").map_err(|e| e.to_string()),
                    w.map(|_| "ok").map_err(|e| e.to_string()),
                ),
            }
        }
    }
    assert!(scenarios_checked > 0);
    eprintln!("digest-diff: {scenarios_checked} scenario(s), zero mismatches");
}
