//! Multi-vendor differential test over committed golden fixtures.
//!
//! Networks A and D are rendered in every dialect under
//! `tests/fixtures/vendors/`. The test asserts, for each network:
//!
//! 1. **Golden bytes**: the current emitters reproduce the committed
//!    fixture byte-for-byte (regenerate with
//!    `CONFMASK_REGEN_FIXTURES=1 cargo test --test vendor_differential`).
//! 2. **Round-trip**: parsing a fixture with its own dialect and
//!    re-emitting is byte-exact.
//! 3. **Differential**: every dialect parses to the *identical* neutral
//!    model — the same `NetworkConfigs` regardless of which vendor the
//!    network arrived in — and auto-detection picks the right dialect.
//!
//! Fixture format: one file per (network, dialect), concatenating the
//! bundle's files with `>>> <relative path>` section markers.

use confmask::{NetworkConfigs, Vendor};
use confmask_config::{parse_host_as, parse_router_as};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/vendors")
}

fn fixture_path(id: char, vendor: Vendor) -> PathBuf {
    fixture_dir().join(format!("net-{id}.{}.txt", vendor.name()))
}

/// Renders a bundle as one fixture file with section markers.
fn render_fixture(files: &[(String, String)]) -> String {
    let mut out = String::new();
    for (path, text) in files {
        out.push_str(">>> ");
        out.push_str(path);
        out.push('\n');
        out.push_str(text);
    }
    out
}

/// Splits a fixture file back into `(relative path, file text)` pairs.
fn split_fixture(text: &str) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(path) = line.strip_prefix(">>> ") {
            files.push((path.to_string(), String::new()));
        } else if let Some((_, body)) = files.last_mut() {
            body.push_str(line);
            body.push('\n');
        } else {
            panic!("fixture text before the first '>>> ' marker: {line:?}");
        }
    }
    files
}

/// Parses a fixture bundle into a `NetworkConfigs` with the given dialect.
fn parse_bundle(files: &[(String, String)], vendor: Vendor) -> NetworkConfigs {
    let mut routers = Vec::new();
    let mut hosts = Vec::new();
    for (path, text) in files {
        if path.starts_with("routers/") {
            routers.push(
                parse_router_as(vendor, text)
                    .unwrap_or_else(|e| panic!("{}", e.with_file(path.clone()))),
            );
        } else if path.starts_with("hosts/") {
            hosts.push(
                parse_host_as(vendor, text)
                    .unwrap_or_else(|e| panic!("{}", e.with_file(path.clone()))),
            );
        } else {
            panic!("unexpected fixture entry {path:?}");
        }
    }
    NetworkConfigs::new(routers, hosts)
}

fn eval_network(id: char) -> confmask_netgen::suite::EvalNetwork {
    confmask_netgen::full_suite()
        .into_iter()
        .find(|n| n.id == id)
        .unwrap_or_else(|| panic!("no evaluation network '{id}'"))
}

const NETWORKS: [char; 2] = ['A', 'D'];

#[test]
fn golden_fixtures_match_the_current_emitters() {
    let regen = std::env::var("CONFMASK_REGEN_FIXTURES").is_ok_and(|v| v == "1");
    if regen {
        std::fs::create_dir_all(fixture_dir()).unwrap();
    }
    for id in NETWORKS {
        let net = eval_network(id);
        for vendor in Vendor::ALL {
            let rendered = render_fixture(&net.bundle(vendor));
            let path = fixture_path(id, vendor);
            if regen {
                std::fs::write(&path, &rendered).unwrap();
                continue;
            }
            let committed = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            assert_eq!(
                committed,
                rendered,
                "net {id} {vendor} fixture is stale — regenerate with CONFMASK_REGEN_FIXTURES=1"
            );
        }
    }
}

#[test]
fn every_dialect_round_trips_its_fixture_byte_exactly() {
    for id in NETWORKS {
        for vendor in Vendor::ALL {
            let text = std::fs::read_to_string(fixture_path(id, vendor)).unwrap();
            let files = split_fixture(&text);
            for (path, body) in &files {
                let reemitted = if path.starts_with("routers/") {
                    parse_router_as(vendor, body).unwrap().emit_as(vendor)
                } else {
                    parse_host_as(vendor, body).unwrap().emit_as(vendor)
                };
                assert_eq!(&reemitted, body, "net {id} {vendor} {path} round-trip");
            }
        }
    }
}

#[test]
fn every_dialect_yields_the_identical_neutral_model() {
    for id in NETWORKS {
        let ground_truth = eval_network(id).configs;
        for vendor in Vendor::ALL {
            let text = std::fs::read_to_string(fixture_path(id, vendor)).unwrap();
            let files = split_fixture(&text);
            // Auto-detection picks the emitting dialect from the bundle.
            let sniffed = Vendor::sniff_all(
                files
                    .iter()
                    .filter(|(p, _)| p.starts_with("routers/"))
                    .map(|(_, t)| t.as_str()),
            );
            assert_eq!(sniffed, vendor, "net {id} bundle detection");
            let parsed = parse_bundle(&files, vendor);
            assert_eq!(
                parsed, ground_truth,
                "net {id} parsed from {vendor} differs from the generator's model"
            );
        }
    }
}
