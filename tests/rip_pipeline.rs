//! End-to-end pipeline coverage for distance-vector (RIP) networks.
//!
//! The SFE conditions for distance-vector protocols (§5.1) differ from the
//! link-state ones: fake links carry no cost (hop metric), so *every* fake
//! link shortens some distances, and route equivalence relies entirely on
//! Algorithm 1's filters with the DV fallback behaviour (a filtered
//! neighbor's advertisement is dropped and the route falls back to the
//! next-best neighbor).

use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;

fn rip_net() -> confmask::NetworkConfigs {
    confmask_netgen::synthesize(&confmask_netgen::smallnets::branch_office_rip())
}

#[test]
fn rip_pipeline_end_to_end() {
    let net = rip_net();
    let result = anonymize(&net, &Params::new(4, 2)).expect("RIP pipeline");
    assert!(
        result.functionally_equivalent(),
        "{:?}",
        result.equivalence.violations
    );
    assert!((result.path_preservation() - 1.0).abs() < 1e-12);
    let kd = min_same_degree(&extract_topology(&result.configs));
    assert!(kd >= 4, "k_d = {kd}");
    // RIP fake links exist and carry no cost lines (hop metric).
    assert!(!result.fake_links.is_empty());
    for rc in result.configs.routers.values() {
        for iface in rc.interfaces.iter().filter(|i| i.added) {
            assert_eq!(iface.ospf_cost, None, "RIP interfaces have no OSPF cost");
        }
    }
}

#[test]
fn rip_filters_fix_shortcuts_iteratively() {
    // Fake links in a hop-metric network always create shortcuts, so the
    // route-equivalence stage must add filters (unlike OSPF, where
    // equal-cost fake links may coexist without any path moving).
    let net = rip_net();
    let result = anonymize(&net, &Params::new(6, 2)).expect("RIP pipeline");
    assert!(!result.fake_links.is_empty());
    assert!(
        result.equiv.filters_added > 0,
        "hop-metric shortcuts require filters"
    );
    assert!(result.functionally_equivalent());
}

#[test]
fn rip_fake_hosts_filtered_and_reachable() {
    let net = rip_net();
    let result = anonymize(
        &net,
        &Params {
            k_h: 3,
            noise_p: 0.5,
            ..Params::new(4, 3)
        },
    )
    .expect("RIP pipeline with heavy noise");
    for (pair, ps) in result.final_sim.dataplane.pairs() {
        assert!(ps.clean(), "{pair:?}: {ps:?}");
    }
    assert_eq!(
        result.configs.hosts.values().filter(|h| h.added).count(),
        2 * net.hosts.len()
    );
}

#[test]
fn rip_strawmen_also_converge() {
    use confmask::EquivalenceMode;
    let net = rip_net();
    for mode in [EquivalenceMode::Strawman1, EquivalenceMode::Strawman2] {
        let result = anonymize(&net, &Params::new(4, 2).with_mode(mode))
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert!(result.functionally_equivalent(), "{mode:?}");
    }
}
