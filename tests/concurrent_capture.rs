//! Regression test for the serve worker pool's foundation: per-attempt
//! stage samples come from thread-local span capture, so pipelines running
//! concurrently on different threads must never interleave their samples.
//! If capture ever became process-global, a job's `DegradationReport`
//! would show stages that belong to a neighbouring worker's job.

use confmask::{anonymize, Params};
use confmask_netgen::smallnets::example_network;

const STAGES: [&str; 6] =
    ["preprocess", "scale", "topology", "route_equiv", "route_anon", "verify"];

#[test]
fn concurrent_pipelines_keep_their_stage_samples_separate() {
    // Global collection on, exactly as the daemon runs: every worker's
    // spans land in the shared collector, but each attempt's *samples*
    // must still be captured per-thread.
    confmask_obs::reset();
    confmask_obs::set_enabled(true);

    let net = example_network();
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            let net = net.clone();
            std::thread::Builder::new()
                .name(format!("pipeline-{i}"))
                .spawn(move || anonymize(&net, &Params::new(3, 2).with_seed(40 + i)).unwrap())
                .unwrap()
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    confmask_obs::set_enabled(false);

    for (i, result) in results.iter().enumerate() {
        assert!(!result.degradation.attempts.is_empty());
        for record in &result.degradation.attempts {
            let names: Vec<&str> = record.stages.iter().map(|s| s.stage).collect();
            // Interleaving would show up as duplicated or out-of-order
            // stages (another thread's samples spliced in).
            assert_eq!(
                names, STAGES,
                "run {i} attempt {}: exactly the six stages, in order",
                record.attempt
            );
            // Samples are consistent with the attempt they belong to: no
            // stage can outlast the whole attempt.
            for s in &record.stages {
                assert!(
                    s.duration <= record.duration,
                    "run {i}: stage {} ({:?}) exceeds its attempt ({:?})",
                    s.stage,
                    s.duration,
                    record.duration
                );
            }
        }
    }

    // All four runs used the same network with different seeds; their
    // results must be independent (same shape, distinct randomness).
    for r in &results {
        assert!(r.functionally_equivalent());
    }
}
