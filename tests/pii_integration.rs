//! Integration of the PII add-on with the full pipeline: the complete
//! sharing workflow is ConfMask (topology + routes) followed by PII
//! obfuscation (addresses + names + secrets), and the final artifact must
//! still be simulable, behaviour-preserving up to renaming, and free of
//! the original identifiers.

use confmask::pii::{apply_pii, PiiOptions};
use confmask::{anonymize, Params};
use std::collections::BTreeSet;

#[test]
fn full_sharing_workflow_confmask_then_pii() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
    let result = anonymize(&net, &Params::default()).expect("pipeline");
    let (shared, report) = apply_pii(&result.configs, &PiiOptions::default());

    // 1. Structurally valid and simulable.
    assert!(confmask_config::validate(&shared).is_empty());
    let sim = confmask_sim::simulate(&shared).expect("shared artifact simulates");

    // 2. Behaviour preserved up to renaming: translate the anonymized
    //    (pre-PII) data plane through the name map.
    let rename = |n: &String| report.name_map.get(n).cloned().unwrap_or_else(|| n.clone());
    let mut translated = confmask_sim::DataPlane::default();
    for ((s, d), ps) in result.final_sim.dataplane.pairs() {
        let mut ps = ps.clone();
        for p in ps.paths.iter_mut() {
            for node in p.iter_mut() {
                *node = rename(node);
            }
        }
        translated.insert(rename(s), rename(d), ps);
    }
    assert_eq!(translated, sim.dataplane);

    // 3. No original hostname or address survives in the emitted text.
    let original_names: BTreeSet<&String> =
        net.routers.keys().chain(net.hosts.keys()).collect();
    let original_addrs: BTreeSet<std::net::Ipv4Addr> = net
        .routers
        .values()
        .flat_map(|r| r.interfaces.iter())
        .filter_map(|i| i.address.map(|(a, _)| a))
        .collect();
    let shared_addrs: BTreeSet<std::net::Ipv4Addr> = shared
        .routers
        .values()
        .flat_map(|r| r.interfaces.iter())
        .filter_map(|i| i.address.map(|(a, _)| a))
        .collect();
    assert!(
        original_addrs.is_disjoint(&shared_addrs),
        "original interface addresses survive PII: {:?}",
        original_addrs.intersection(&shared_addrs).collect::<Vec<_>>()
    );
    for rc in shared.routers.values() {
        let text = rc.emit();
        for name in &original_names {
            assert!(
                !text.contains(&format!("hostname {name}")),
                "{} leaks hostname {name}",
                rc.hostname
            );
        }
    }

    // 4. Secrets from the management boilerplate are gone.
    for rc in shared.routers.values() {
        for line in &rc.extra_lines {
            assert!(
                !line.contains("$1$XXXX$REDACTEDREDACTEDREDACTED") || line.ends_with("REDACTED"),
                "secret survived: {line}"
            );
        }
    }
}

#[test]
fn pii_is_deterministic_and_seed_sensitive() {
    let net = confmask_netgen::smallnets::example_network();
    let (a1, _) = apply_pii(&net, &PiiOptions::default());
    let (a2, _) = apply_pii(&net, &PiiOptions::default());
    assert_eq!(a1, a2);
    let (b, _) = apply_pii(
        &net,
        &PiiOptions {
            seed: 99,
            ..PiiOptions::default()
        },
    );
    assert_ne!(a1, b, "different keys must give different addresses");
}

#[test]
fn pii_after_confmask_keeps_fake_hosts_indistinguishable() {
    let net = confmask_netgen::smallnets::example_network();
    let result = anonymize(&net, &Params::new(3, 2)).expect("pipeline");
    let (shared, _) = apply_pii(&result.configs, &PiiOptions::default());
    // After renaming, fake and real host files share the same name shape
    // and structure — the "-fakeN" suffix is gone.
    for (name, h) in &shared.hosts {
        assert!(name.starts_with("host-"), "leaky name {name}");
        assert!(!h.emit().contains("fake"));
    }
}
