//! End-to-end integration tests: the full pipeline on the fast evaluation
//! networks, including the share-as-text cycle a real user would perform.

use confmask::{anonymize, Params};
use confmask_config::{parse_host, parse_router, NetworkConfigs};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;

fn nets() -> Vec<confmask_netgen::EvalNetwork> {
    confmask_netgen::suite::small_suite()
}

#[test]
fn pipeline_succeeds_on_every_small_net() {
    for net in nets() {
        let result = anonymize(&net.configs, &Params::default())
            .unwrap_or_else(|e| panic!("net {}: {e}", net.id));
        assert!(
            result.functionally_equivalent(),
            "net {}: {:?}",
            net.id,
            result.equivalence.violations
        );
        assert!((result.path_preservation() - 1.0).abs() < 1e-12, "net {}", net.id);
        let kd = min_same_degree(&extract_topology(&result.configs));
        assert!(kd >= 6, "net {}: k_d = {kd} < 6", net.id);
    }
}

#[test]
fn share_as_text_round_trip_preserves_behaviour() {
    // The actual sharing workflow: emit the anonymized configs to text,
    // re-parse them as the recipient would, and verify the recipient's
    // simulation matches the original owner's network exactly.
    let net = nets().remove(0).configs; // net A (BGP+OSPF)
    let result = anonymize(&net, &Params::default()).unwrap();

    let routers: Vec<_> = result
        .configs
        .routers
        .values()
        .map(|rc| parse_router(&rc.emit()).expect("emitted config parses"))
        .collect();
    let hosts: Vec<_> = result
        .configs
        .hosts
        .values()
        .map(|hc| parse_host(&hc.emit()).expect("emitted host parses"))
        .collect();
    let received = NetworkConfigs::new(routers, hosts);

    let recipient_sim = confmask::simulate(&received).expect("recipient can simulate");
    assert!(
        recipient_sim
            .dataplane
            .equivalent_on(&result.baseline.sim.dataplane, &result.baseline.real_hosts),
        "recipient's data plane matches the original on real hosts"
    );
    // And matches the anonymized simulation everywhere (fake hosts too).
    assert_eq!(recipient_sim.dataplane, result.final_sim.dataplane);
}

#[test]
fn fake_devices_are_syntactically_ordinary() {
    // De-anonymization resistance smoke test: emitted fake interfaces and
    // hosts use the same syntax as real ones (no marker survives emission).
    let net = nets().remove(0).configs;
    let result = anonymize(&net, &Params::default()).unwrap();
    for rc in result.configs.routers.values() {
        let text = rc.emit();
        assert!(!text.contains("fake"), "{}: emitted text leaks 'fake'", rc.hostname);
        assert!(!text.to_lowercase().contains("anonym"), "{}", rc.hostname);
    }
    // Host files: fake hosts are only distinguishable in-memory via the
    // provenance flag, not in the emitted text structure.
    let real = result.configs.hosts.values().find(|h| !h.added).unwrap();
    let fake = result.configs.hosts.values().find(|h| h.added).unwrap();
    let shape = |t: &str| {
        t.lines()
            .map(|l| l.split_whitespace().next().unwrap_or("").to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        shape(&real.emit()),
        shape(&fake.emit()),
        "fake host files have the same line structure as real ones"
    );
}

#[test]
fn wan_scale_network_runs_within_budget() {
    // Net D (Bics-sized, 49 routers / 98 hosts) end to end.
    let suite = confmask_netgen::full_suite();
    let d = suite.iter().find(|n| n.id == 'D').unwrap();
    let t = std::time::Instant::now();
    let result = anonymize(&d.configs, &Params::default()).unwrap();
    assert!(result.functionally_equivalent());
    // The paper anonymizes the largest network in ~6 minutes with Batfish;
    // the native simulator does this network in seconds.
    assert!(
        t.elapsed() < std::time::Duration::from_secs(120),
        "took {:?}",
        t.elapsed()
    );
}

#[test]
fn k_route_anonymity_definition_holds() {
    // Definition 3.2 (with the fake-host copies counted): every routing
    // path shares its (ingress, egress) router pair with at least k_H
    // host connections.
    let net = nets().remove(3).configs; // net G (FatTree04) — richest DP
    let k_h = 2;
    let result = anonymize(&net, &Params::new(6, k_h)).unwrap();
    let mut group_sizes: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    for (_pair, ps) in result.final_sim.dataplane.pairs() {
        for path in &ps.paths {
            if path.len() < 3 {
                continue;
            }
            let key = (path[1].clone(), path[path.len() - 2].clone());
            *group_sizes.entry(key).or_insert(0) += 1;
        }
    }
    // Every group that carried original traffic now carries >= k_h paths.
    for (_pair, ps) in result
        .baseline
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts)
        .pairs()
    {
        for path in &ps.paths {
            if path.len() < 3 {
                continue;
            }
            let key = (path[1].clone(), path[path.len() - 2].clone());
            assert!(
                group_sizes.get(&key).copied().unwrap_or(0) >= k_h,
                "group {key:?} has fewer than k_H paths"
            );
        }
    }
}

#[test]
fn ledger_matches_observable_diff() {
    // The ledger's interface count equals the number of added interface
    // stanzas actually present in the output.
    let net = nets().remove(1).configs;
    let result = anonymize(&net, &Params::default()).unwrap();
    let added_ifaces: usize = result
        .configs
        .routers
        .values()
        .flat_map(|r| r.interfaces.iter())
        .filter(|i| i.added)
        .count();
    assert!(added_ifaces > 0);
    // Each added interface contributes >= 2 lines (name + address).
    assert!(result.ledger.interface_lines >= 2 * added_ifaces);
    let added_hosts = result.configs.hosts.values().filter(|h| h.added).count();
    assert_eq!(added_hosts, result.route_anon.fake_hosts.len());
}
