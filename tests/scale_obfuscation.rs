//! Integration tests for network-scale obfuscation (§9): fake routers
//! change `|R|` while functional equivalence and the anonymity guarantees
//! survive.

use confmask::attacks::{dead_link_detection, degree_reidentification};
use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;

fn params(fake_routers: usize) -> Params {
    Params {
        k_r: 4,
        k_h: 2,
        fake_routers,
        ..Params::default()
    }
}

#[test]
fn fake_routers_preserve_functional_equivalence() {
    for net in [
        confmask_netgen::smallnets::example_network(),
        confmask_netgen::synthesize(&confmask_netgen::smallnets::university()),
        confmask_netgen::synthesize(&confmask_netgen::smallnets::branch_office_rip()),
    ] {
        let result = anonymize(&net, &params(3)).expect("scale pipeline");
        assert!(
            result.functionally_equivalent(),
            "{:?}",
            result.equivalence.violations
        );
        assert_eq!(result.scale.fake_routers.len(), 3);
        assert_eq!(
            result.configs.routers.len(),
            net.routers.len() + 3,
            "|R| is obfuscated"
        );
    }
}

#[test]
fn fake_routers_participate_in_k_anonymity() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let result = anonymize(&net, &params(4)).expect("scale pipeline");
    let topo = extract_topology(&result.configs);
    assert!(
        min_same_degree(&topo) >= 4,
        "whole graph (incl. fakes) is k-anonymous: {}",
        min_same_degree(&topo)
    );
}

#[test]
fn real_traffic_never_transits_fake_routers() {
    let net = confmask_netgen::smallnets::example_network();
    let result = anonymize(&net, &params(2)).expect("scale pipeline");
    let fake: std::collections::BTreeSet<&String> = result.scale.fake_routers.iter().collect();
    for (pair, ps) in result
        .final_sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts)
        .pairs()
    {
        for path in &ps.paths {
            for hop in path {
                assert!(
                    !fake.contains(hop),
                    "{pair:?} transits fake router {hop}: {path:?}"
                );
            }
        }
    }
}

#[test]
fn fake_router_links_carry_traffic() {
    // A fake router with idle links would fall to the dead-link detector;
    // the liveness host keeps its stub link busy.
    let net = confmask_netgen::smallnets::example_network();
    let result = anonymize(&net, &params(2)).expect("scale pipeline");
    let traffic = dead_link_detection(&result.final_sim);
    for fr in &result.scale.fake_routers {
        let used = traffic
            .used
            .iter()
            .any(|(a, b)| a == fr || b == fr);
        assert!(used, "fake router {fr} has only dead links");
    }
}

#[test]
fn scale_obfuscation_defeats_router_count_inference() {
    // The adversary's |R| estimate is now wrong, and the degree
    // re-identification bound still holds over the enlarged graph.
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let result = anonymize(
        &net,
        &Params {
            k_r: 6,
            fake_routers: 5,
            ..Params::default()
        },
    )
    .expect("scale pipeline");
    let shared = extract_topology(&result.configs);
    assert_eq!(shared.routers().len(), 18, "13 real + 5 fake");
    let reid = degree_reidentification(&result.baseline.topo, &shared);
    assert!(reid.expected_success() <= 1.0 / 6.0 + 1e-9);
}

#[test]
fn fake_router_files_blend_in() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let result = anonymize(&net, &params(2)).expect("scale pipeline");
    for fr in &result.scale.fake_routers {
        let rc = &result.configs.routers[fr];
        let text = rc.emit();
        // Same structural inventory as a real file.
        assert!(text.contains("interface Ethernet0/0"));
        assert!(text.contains("router "));
        assert!(text.contains("ntp server"), "boilerplate inherited");
        assert!(!text.contains("fake"));
        // Emits and reparses like any other config.
        let back = confmask_config::parse_router(&text).unwrap();
        assert_eq!(back.hostname, *fr);
    }
}

#[test]
fn ledger_accounts_for_router_files() {
    let net = confmask_netgen::smallnets::example_network();
    let with = anonymize(&net, &params(3)).unwrap();
    let without = anonymize(&net, &params(0)).unwrap();
    assert!(with.ledger.router_lines > 0);
    assert_eq!(without.ledger.router_lines, 0);
    assert!(with.ledger.total_added() > without.ledger.total_added());
}

#[test]
fn fake_router_hosts_reach_real_hosts_bidirectionally() {
    // Regression: Algorithm 1 used to scan fake routers' routing tables
    // and filter away their only routes to real destinations, leaving the
    // liveness hosts able to receive but not send.
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let result = anonymize(
        &net,
        &Params {
            fake_routers: 3,
            ..Params::default()
        },
    )
    .expect("scale pipeline");
    for (pair, ps) in result.final_sim.dataplane.pairs() {
        assert!(ps.clean(), "{pair:?}: {ps:?}");
    }
}

#[test]
fn emitted_configs_have_no_dangling_filter_references() {
    // Regression: Algorithm 2 rollback could empty a prefix list; empty
    // lists emit no lines, so their distribute-list bindings came back
    // from text as dangling references.
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let result = anonymize(
        &net,
        &Params {
            fake_routers: 3,
            noise_p: 0.5, // more filters, more rollbacks
            ..Params::default()
        },
    )
    .expect("scale pipeline");
    // Round-trip through text like a recipient would, then validate.
    let routers: Vec<_> = result
        .configs
        .routers
        .values()
        .map(|rc| confmask_config::parse_router(&rc.emit()).unwrap())
        .collect();
    let hosts: Vec<_> = result
        .configs
        .hosts
        .values()
        .map(|hc| confmask_config::parse_host(&hc.emit()).unwrap())
        .collect();
    let received = confmask::NetworkConfigs::new(routers, hosts);
    let errors = confmask_config::validate(&received);
    assert!(errors.is_empty(), "{errors:?}");
}
