//! Ablation of the §3.2 design choices: why fake links must carry the
//! original minimum path cost, and what each naive alternative costs.
//!
//! The paper walks through three options for fake-link OSPF costs
//! (Figure 2b–2d). This test suite turns that narrative into measurements:
//!
//! * **default cost** — the shortest-path tree migrates onto fake links and
//!   route filters cannot restore it (link-state filters only *remove*
//!   candidates; they cannot resurrect a path that is no longer
//!   minimum-cost), so the pipeline must refuse to emit the result;
//! * **large cost** — functional equivalence holds, but every fake link is
//!   dead: the §3.2 "applying the SPT calculation precisely identifies
//!   these links" attack works;
//! * **min cost** (ConfMask) — functional equivalence holds *and* fake
//!   links carry fake-host traffic, defeating the dead-link detector.

use confmask::attacks::{dead_link_detection, fake_link_camouflage};
use confmask::{anonymize, CostStrategy, Error, Params};

fn params(strategy: CostStrategy) -> Params {
    Params {
        k_r: 4,
        k_h: 4,
        cost_strategy: strategy,
        ..Params::default()
    }
}

/// A network where path migration is observable: the Figure 2 example.
fn network() -> confmask::NetworkConfigs {
    confmask_netgen::smallnets::example_network()
}

/// Equivalence failures are retryable, so a network that can never reach
/// equivalence surfaces as [`Error::RetriesExhausted`] wrapping the
/// underlying violation once self-healing gives up.
fn is_equivalence_failure(err: &Error) -> bool {
    match err {
        Error::EquivalenceViolated(_) | Error::EquivalenceDiverged { .. } => true,
        Error::RetriesExhausted { last, .. } => is_equivalence_failure(last),
        _ => false,
    }
}

#[test]
fn default_cost_breaks_route_equivalence() {
    let err = anonymize(&network(), &params(CostStrategy::DefaultCost))
        .expect_err("default-cost fake links must be rejected");
    assert!(is_equivalence_failure(&err), "unexpected error: {err}");
}

#[test]
fn large_cost_preserves_equivalence_but_leaves_dead_links() {
    let result = anonymize(&network(), &params(CostStrategy::LargeCost))
        .expect("large costs never move traffic");
    assert!(result.functionally_equivalent());
    assert!(!result.fake_links.is_empty());
    // The adversary's dead-link census finds every fake link idle.
    let cam = fake_link_camouflage(&result.final_sim, &result.fake_links);
    assert_eq!(cam, 0.0, "no traffic ever crosses a 65535-cost link");
    let traffic = dead_link_detection(&result.final_sim);
    assert!(traffic.dead.len() >= result.fake_links.len());
}

#[test]
fn min_cost_preserves_equivalence_and_camouflages_links() {
    let result =
        anonymize(&network(), &params(CostStrategy::MinCost)).expect("the ConfMask strategy");
    assert!(result.functionally_equivalent());
    assert!(!result.fake_links.is_empty());
    let cam = fake_link_camouflage(&result.final_sim, &result.fake_links);
    assert!(
        cam > 0.0,
        "min-cost fake links carry fake-host traffic (got {cam:.2})"
    );
}

#[test]
fn camouflage_improves_with_more_fake_hosts() {
    // More fake hosts → more traffic available to exercise fake links.
    let low = anonymize(&network(), &Params { k_h: 2, k_r: 4, ..Params::default() }).unwrap();
    let high = anonymize(&network(), &Params { k_h: 6, k_r: 4, ..Params::default() }).unwrap();
    let cam_low = fake_link_camouflage(&low.final_sim, &low.fake_links);
    let cam_high = fake_link_camouflage(&high.final_sim, &high.fake_links);
    assert!(
        cam_high >= cam_low,
        "k_H=6 camouflage {cam_high:.2} < k_H=2 {cam_low:.2}"
    );
}

#[test]
fn ablation_holds_on_a_wan() {
    // Same story on a mid-size OSPF WAN.
    let spec = confmask_netgen::wan::wan_spec("abl", 16, 8, 32, 3);
    let net = confmask_netgen::synthesize(&spec);

    let min = anonymize(&net, &params(CostStrategy::MinCost)).unwrap();
    assert!(min.functionally_equivalent());

    let large = anonymize(&net, &params(CostStrategy::LargeCost)).unwrap();
    assert_eq!(fake_link_camouflage(&large.final_sim, &large.fake_links), 0.0);

    match anonymize(&net, &params(CostStrategy::DefaultCost)) {
        Err(e) if is_equivalence_failure(&e) => {}
        Err(e) => panic!("unexpected error {e}"),
        // Default cost *can* coincidentally equal the min cost on dense
        // uniform-cost graphs; equivalence then survives by luck.
        Ok(r) => assert!(r.functionally_equivalent()),
    }
}
