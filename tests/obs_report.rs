//! Integration test for the observability report emitted by a full
//! pipeline run: the span tree must contain one `pipeline.stage.*` span
//! per stage per attempt, nested under `pipeline.attempt` under
//! `pipeline.anonymize`, and the simulator/topology layers must register
//! their metrics. Kept as a single `#[test]` because the obs collector is
//! process-global.

use confmask::{anonymize, Params, STAGE_SPAN_PREFIX};
use confmask_netgen::smallnets::example_network;
use confmask_obs::report::SpanNode;
use confmask_obs::Report;

const STAGES: [&str; 6] =
    ["preprocess", "scale", "topology", "route_equiv", "route_anon", "verify"];

#[test]
fn metrics_report_has_one_span_per_stage_per_attempt() {
    confmask_obs::reset();
    confmask_obs::set_enabled(true);
    // Learn this thread's dense index so the assertions below ignore spans
    // recorded by simulator worker threads.
    let (_, probe) = confmask_obs::capture(|| confmask_obs::span("obs.probe").finish());
    let me = probe[0].thread;

    let result = anonymize(&example_network(), &Params::new(3, 2)).unwrap();
    confmask_obs::set_enabled(false);
    let attempts = result.degradation.attempts.len();
    assert!(attempts >= 1);

    // The report a `--metrics-out` user would get: through JSON and back.
    let report = Report::from_json(&confmask_obs::report().to_json()).unwrap();
    assert_eq!(report.dropped_spans, 0);

    // Exactly one pipeline root on this thread, with one child per attempt.
    let tree = report.tree();
    let roots: Vec<&SpanNode> = tree
        .iter()
        .filter(|n| n.span.name == "pipeline.anonymize" && n.span.thread == me)
        .collect();
    assert_eq!(roots.len(), 1, "one pipeline.anonymize root span");
    let attempt_nodes: Vec<&SpanNode> = roots[0]
        .children
        .iter()
        .filter(|n| n.span.name == "pipeline.attempt")
        .collect();
    assert_eq!(attempt_nodes.len(), attempts, "one pipeline.attempt span per attempt");

    // One span per stage per attempt, nested under its attempt, matching
    // the durations the degradation report derived from the same spans.
    for (node, record) in attempt_nodes.iter().zip(&result.degradation.attempts) {
        let stage_names: Vec<&str> = node
            .children
            .iter()
            .filter_map(|n| n.span.name.strip_prefix(STAGE_SPAN_PREFIX))
            .collect();
        let expected: Vec<&str> = record.stages.iter().map(|s| s.stage).collect();
        assert_eq!(stage_names, expected, "stage spans mirror the attempt record");
        assert_eq!(stage_names, STAGES, "all six stages ran, in order");
    }

    // Simulations happen inside stages: every sim.control_plane span on
    // this thread has a parent.
    let sims: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name == "sim.control_plane" && s.thread == me)
        .collect();
    assert!(!sims.is_empty(), "route stages simulate the network");
    assert!(sims.iter().all(|s| s.parent.is_some()));

    // The metric registry is stable across protocol mixes: all of these
    // exist even when their count is zero for this network.
    let expected_counters = [
        "sim.simulations",
        "sim.ospf.spf_runs",
        "sim.rip.rounds",
        "sim.bgp.rounds",
        "sim.dataplane.pairs",
        "core.route_equiv.iterations",
        "core.route_equiv.filters_added",
        "topology.kdegree.attempts",
        "topology.kdegree.edges_added",
    ];
    for name in expected_counters {
        assert!(report.counter(name).is_some(), "counter {name} missing");
    }
    for name in ["sim.fib.size", "sim.dataplane.paths_per_pair"] {
        let h = report.histogram(name).unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(h.count > 0, "histogram {name} is empty");
        assert!(h.min <= h.p50 && h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max);
    }
    assert!(
        report.counters.len() + report.histograms.len() >= 8,
        "at least 8 named metrics ({} counters, {} histograms)",
        report.counters.len(),
        report.histograms.len()
    );
    // This network exercises the interesting paths for real.
    assert!(report.counter("sim.simulations").unwrap() >= 2);
    assert!(report.counter("sim.ospf.spf_runs").unwrap() > 0);
    assert!(report.counter("topology.kdegree.attempts").unwrap() >= 1);
}
