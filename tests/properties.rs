//! Property-based integration tests: the headline invariant — the pipeline
//! produces functionally equivalent, k-anonymous networks — holds on
//! *randomly generated* networks across protocols and parameters.

use confmask::{anonymize, Params};
use confmask_netgen::{synthesize, IgpProtocol, TopoSpec};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;
use proptest::prelude::*;

/// Strategy: a random connected network of 4–10 routers with random extra
/// links, random link costs, random host placement, and a random protocol
/// flavor (OSPF / RIP / two-AS BGP+OSPF).
fn arb_network() -> impl Strategy<Value = TopoSpec> {
    (
        4usize..=10,
        prop::collection::vec((any::<u16>(), any::<u16>(), proptest::option::of(1u32..20)), 0..8),
        prop::collection::vec(any::<u16>(), 2..5),
        0u8..3,
        any::<u64>(),
    )
        .prop_map(|(n, extra, host_places, flavor, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);

            let igp = if flavor == 1 {
                IgpProtocol::Rip
            } else {
                IgpProtocol::Ospf
            };
            let mut spec = TopoSpec::new(
                "prop",
                (0..n).map(|i| format!("p{i}")).collect(),
                igp,
            );
            // Random spanning tree.
            for i in 1..n {
                let parent = rng.gen_range(0..i);
                spec.links.push((parent, i, None));
            }
            // Extra links with optional costs.
            for (a, b, cost) in extra {
                let (a, b) = (a as usize % n, b as usize % n);
                if a != b && !spec.links.iter().any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b))) {
                    spec.links.push((a.min(b), a.max(b), cost));
                }
            }
            // Hosts.
            for (i, hp) in host_places.iter().enumerate() {
                spec.hosts.push((format!("ph{i}"), *hp as usize % n));
            }
            // BGP flavor: split routers into two ASes; RIP+BGP is uncommon,
            // keep BGP with OSPF.
            if flavor == 2 {
                let cut = n / 2;
                spec.asn_of = Some((0..n).map(|i| if i < cut { 65001 } else { 65002 }).collect());
            }
            spec.boilerplate = false; // speed: skip the management lines
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 40,
        .. ProptestConfig::default()
    })]

    #[test]
    fn pipeline_invariants_on_random_networks(
        spec in arb_network(),
        k_r in 2usize..6,
        k_h in 1usize..4,
        seed in any::<u64>(),
    ) {
        let configs = synthesize(&spec);
        // Skip degenerate networks the generator can produce (e.g. a BGP
        // split that isolates hosts behind a partition is still valid, but
        // an unsimulatable network is a generator artifact, not a pipeline
        // bug).
        let Ok(baseline) = confmask::simulate(&configs) else { return Ok(()); };
        prop_assume!(baseline.dataplane.pairs().all(|(_, ps)| ps.clean()));

        let params = Params { k_r, k_h, seed, ..Params::default() };
        let result = anonymize(&configs, &params).expect("pipeline must succeed");

        // 1. Functional equivalence (the Theorem B.7 umbrella).
        prop_assert!(result.functionally_equivalent(),
            "violations: {:?}", result.equivalence.violations);

        // 2. Topology k-anonymity (Definition 3.1).
        let kd = min_same_degree(&extract_topology(&result.configs));
        prop_assert!(kd >= k_r.min(configs.routers.len()),
            "k_d = {} < k_R = {}", kd, k_r);

        // 3. Exactly (k_h - 1) fakes per real host.
        let fakes = result.configs.hosts.values().filter(|h| h.added).count();
        prop_assert_eq!(fakes, (k_h - 1) * configs.hosts.len());

        // 4. Every host (fake or real) remains reachable from every other.
        for (_pair, ps) in result.final_sim.dataplane.pairs() {
            prop_assert!(ps.clean(), "anonymization broke reachability");
        }

        // 5. The ledger is consistent: total added >= per-category parts.
        let l = result.ledger;
        prop_assert_eq!(
            l.total_added(),
            l.protocol_lines + l.filter_lines + l.interface_lines + l.host_lines
        );
    }

    #[test]
    fn anonymization_is_deterministic(
        spec in arb_network(),
        seed in any::<u64>(),
    ) {
        let configs = synthesize(&spec);
        let Ok(baseline) = confmask::simulate(&configs) else { return Ok(()); };
        prop_assume!(baseline.dataplane.pairs().all(|(_, ps)| ps.clean()));
        let params = Params { k_r: 3, k_h: 2, seed, ..Params::default() };
        let a = anonymize(&configs, &params).expect("run 1");
        let b = anonymize(&configs, &params).expect("run 2");
        prop_assert_eq!(a.configs, b.configs);
    }
}
