//! Integration tests for the baselines (strawmen, NetHide) and their
//! relationships to ConfMask — the qualitative claims of Figures 8–10
//! and 16.

use confmask::{anonymize, EquivalenceMode, Params};
use confmask_topology::extract::extract_topology;
use std::collections::BTreeSet;

fn small_nets() -> Vec<confmask_netgen::EvalNetwork> {
    confmask_netgen::suite::small_suite()
}

#[test]
fn all_three_modes_reach_functional_equivalence() {
    for net in small_nets() {
        for mode in [
            EquivalenceMode::ConfMask,
            EquivalenceMode::Strawman1,
            EquivalenceMode::Strawman2,
        ] {
            let result = anonymize(&net.configs, &Params::default().with_mode(mode))
                .unwrap_or_else(|e| panic!("net {} {:?}: {e}", net.id, mode));
            assert!(
                result.functionally_equivalent(),
                "net {} {:?}: {:?}",
                net.id,
                mode,
                result.equivalence.violations
            );
        }
    }
}

#[test]
fn strawman1_injects_most_filter_lines() {
    // Figure 10 (R): S1 filters everything everywhere; ConfMask and S2 are
    // selective.
    for net in small_nets() {
        let s1 = anonymize(
            &net.configs,
            &Params::default().with_mode(EquivalenceMode::Strawman1),
        )
        .unwrap();
        let cm = anonymize(&net.configs, &Params::default()).unwrap();
        if s1.fake_links.is_empty() {
            continue; // already k-anonymous: nothing to filter anywhere
        }
        assert!(
            s1.ledger.filter_lines >= cm.ledger.filter_lines,
            "net {}: S1 {} < CM {}",
            net.id,
            s1.ledger.filter_lines,
            cm.ledger.filter_lines
        );
    }
}

#[test]
fn strawman2_needs_more_simulations_than_confmask() {
    // Figure 16: S2's per-pair, one-hop-at-a-time fixes require more
    // simulation rounds (and each needs a full data plane).
    let mut s2_total = 0usize;
    let mut cm_total = 0usize;
    for net in small_nets() {
        let s2 = anonymize(
            &net.configs,
            &Params::default().with_mode(EquivalenceMode::Strawman2),
        )
        .unwrap();
        let cm = anonymize(&net.configs, &Params::default()).unwrap();
        s2_total += s2.equiv.iterations;
        cm_total += cm.equiv.iterations;
    }
    assert!(
        s2_total >= cm_total,
        "S2 iterations {} < ConfMask {}",
        s2_total,
        cm_total
    );
}

#[test]
fn strawman1_pattern_is_detectable_but_confmasks_is_not() {
    // §4.3: an adversary can identify S1's fake interfaces as the ones
    // binding a deny-list of *every* host prefix. ConfMask's lists are
    // destination-specific.
    let net = &small_nets()[0];
    let s1 = anonymize(
        &net.configs,
        &Params::default().with_mode(EquivalenceMode::Strawman1),
    )
    .unwrap();
    let n_hosts = net.configs.hosts.len();
    let full_lists = |res: &confmask::Anonymized| {
        res.configs
            .routers
            .values()
            .flat_map(|r| r.prefix_lists.iter())
            .filter(|pl| {
                let denied: BTreeSet<_> = pl.entries.iter().map(|e| e.prefix).collect();
                denied.len() >= n_hosts
            })
            .count()
    };
    assert!(full_lists(&s1) > 0, "S1 leaves the unified pattern");
    let cm = anonymize(&net.configs, &Params::default()).unwrap();
    assert_eq!(full_lists(&cm), 0, "ConfMask lists never cover every host");
}

#[test]
fn nethide_loses_paths_and_specs_on_every_network() {
    for net in small_nets() {
        let sim = confmask::simulate(&net.configs).unwrap();
        let topo = extract_topology(&net.configs);
        let nh = confmask_nethide::obfuscate(&topo, 6, 0).unwrap();
        let pu = confmask_nethide::exact_path_preservation(&sim.dataplane, &nh.dataplane);
        assert!(pu < 1.0, "net {}: NetHide kept everything ({pu})", net.id);

        let orig_spec = confmask_spec::mine(&sim.dataplane);
        let nh_spec = confmask_spec::mine(&nh.dataplane);
        let hosts: BTreeSet<String> = net.configs.hosts.keys().cloned().collect();
        let d = confmask_spec::diff(&orig_spec, &nh_spec, &hosts);
        assert!(d.missing > 0, "net {}: NetHide lost no specs", net.id);
    }
}

#[test]
fn confmask_preserves_all_specs_where_nethide_does_not() {
    // The Figure 9 headline: ConfMask's kept-spec ratio is 1.0.
    for net in small_nets() {
        let result = anonymize(&net.configs, &Params::new(6, 4)).unwrap();
        let orig_spec = confmask_spec::mine(&result.baseline.sim.dataplane);
        let anon_spec = confmask_spec::mine(&result.final_sim.dataplane);
        let d = confmask_spec::diff(&orig_spec, &anon_spec, &result.baseline.real_hosts);
        assert_eq!(d.missing, 0, "net {}", net.id);
        assert!(
            d.introduced_fake_fraction() > 0.9,
            "net {}: introduced specs should involve fake hosts ({:.2})",
            net.id,
            d.introduced_fake_fraction()
        );
    }
}
