//! Parameter sensitivity: how `k_R` and `k_H` trade privacy against
//! configuration utility (the §7.3 analysis, Figures 11–15, on one
//! network).
//!
//! ```sh
//! cargo run --release --example parameter_sweep [network-letter]
//! ```

use confmask::{anonymize, Params};

fn main() {
    let id = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('A');
    let suite = confmask_netgen::full_suite();
    let net = suite
        .iter()
        .find(|n| n.id == id)
        .unwrap_or_else(|| panic!("no network '{id}' (use A..H)"));
    println!("sweeping network {} ({})\n", net.id, net.name);

    println!(
        "{:>4} {:>4} | {:>8} {:>8} {:>8} {:>9} {:>8}",
        "k_R", "k_H", "N_r avg", "U_C", "fakes", "filters", "time"
    );
    let mut points: Vec<(f64, f64)> = Vec::new();
    for k_r in [2usize, 6, 10] {
        for k_h in [2usize, 4, 6] {
            let result =
                anonymize(&net.configs, &Params::new(k_r, k_h)).expect("anonymization succeeds");
            assert!(result.functionally_equivalent());
            let nr = result.route_anonymity().avg();
            let uc = result.config_utility();
            points.push((nr, uc));
            println!(
                "{:>4} {:>4} | {:>8.2} {:>8.3} {:>8} {:>9} {:>7.2}s",
                k_r,
                k_h,
                nr,
                uc,
                result.route_anon.fake_hosts.len(),
                result.ledger.filter_lines,
                result.total_stage_time().as_secs_f64()
            );
        }
    }

    // The privacy–utility trade-off (Figure 15's correlation).
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx > 0.0 && vy > 0.0 {
        println!(
            "\nN_r vs U_C correlation on this grid: r = {:.2} (paper: loose negative, −0.36)",
            cov / (vx * vy).sqrt()
        );
    } else {
        println!("\nN_r vs U_C correlation undefined on this grid (no variance)");
    }
}
