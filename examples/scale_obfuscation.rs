//! Network-scale obfuscation (§9 of the paper, implemented as an
//! extension): hide even the *number of routers* by generating whole fake
//! router files that blend in with the human-configured ones.
//!
//! ```sh
//! cargo run --release --example scale_obfuscation
//! ```
//!
//! The paper leaves this as future work, noting the two hard parts: fake
//! routers must not perturb real routing (solved with half-diameter link
//! costs plus Algorithm 1's filters), and their configuration files must be
//! indistinguishable from real ones (solved by cloning a template router's
//! protocol blocks and management boilerplate, and naming them by the
//! network's own convention).

use confmask::attacks::dead_link_detection;
use confmask::pii::{apply_pii, PiiOptions};
use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;

fn main() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    println!(
        "original: {} routers, {} hosts",
        net.routers.len(),
        net.hosts.len()
    );

    let params = Params {
        k_r: 6,
        k_h: 2,
        fake_routers: 5,
        ..Params::default()
    };
    let result = anonymize(&net, &params).expect("pipeline");

    println!("\n=== After ConfMask + scale obfuscation ===");
    println!(
        "shared network: {} routers ({} fake), {} hosts ({} fake)",
        result.configs.routers.len(),
        result.scale.fake_routers.len(),
        result.configs.hosts.len(),
        result.configs.hosts.values().filter(|h| h.added).count(),
    );
    println!("fake routers: {:?}", result.scale.fake_routers);
    println!(
        "functional equivalence: {} (real paths byte-identical)",
        result.functionally_equivalent()
    );
    let topo = extract_topology(&result.configs);
    println!(
        "k_d over the enlarged graph: {} (>= k_R = {})",
        min_same_degree(&topo),
        params.k_r
    );

    // The liveness hosts keep fake-router links busy, so the dead-link
    // detector finds nothing suspicious.
    let traffic = dead_link_detection(&result.final_sim);
    println!(
        "links carrying traffic: {} of {} (dead: {})",
        traffic.used.len(),
        traffic.used.len() + traffic.dead.len(),
        traffic.dead.len()
    );

    // Print one fake router's file next to a real one: same shape.
    let fake_name = &result.scale.fake_routers[0];
    println!("\n=== A fake router's configuration ({fake_name}) ===");
    let text = result.configs.routers[fake_name].emit();
    for line in text.lines().take(14) {
        println!("{line}");
    }
    println!("  … ({} more lines)", text.lines().count().saturating_sub(14));

    // Finish with the PII pass for actual sharing.
    let (_, report) = apply_pii(&result.configs, &PiiOptions::default());
    println!(
        "\nPII add-on would rewrite {} addresses and rename {} devices before sharing.",
        report.addresses_rewritten, report.devices_renamed
    );
}
