//! The §2.3 case study: collaborative debugging of a QoS misconfiguration.
//!
//! ```sh
//! cargo run --release --example collaborative_debugging
//! ```
//!
//! A FatTree-04 operator sees high delay from pod 3 to pod 1. The root
//! cause: `core2` marks management traffic from `agg3-1` *low*-priority, so
//! it starves in `agg1-1`'s low-priority queue. Diagnosing this from shared
//! configurations requires (a) the QoS lines to survive anonymization and
//! (b) the waypoint `edge3-1 → agg3-1 → core2 → agg1-1 → edge1-0` to stay
//! visible in the shared network's data plane.
//!
//! Every registered [`confmask::Anonymizer`] strategy runs the same case
//! study, so the comparison automatically covers any future strategy:
//! ConfMask and NetCloak preserve the diagnosis path, while a NetHide-style
//! obfuscation reroutes it and hides the root cause (Figure 1).

use confmask::{anonymizer_for, Params, Strategy};

fn main() {
    let network = confmask_netgen::smallnets::case_study_network();
    let original = confmask::simulate(&network).expect("case-study network simulates");

    // The problematic flow: a pod-3 host talking to a pod-1 host.
    let (src, dst) = ("h3-1-0", "h1-0-0");
    let orig_paths = &original.dataplane.between(src, dst).unwrap().paths;
    println!("=== Original trouble flow {src} -> {dst} ===");
    for p in orig_paths {
        println!("  {}", p.join(" -> "));
    }
    let via_core2 = orig_paths.iter().any(|p| p.iter().any(|n| n == "core2"));
    println!("some path crosses core2 (the misconfigured router): {via_core2}");

    let orig_set: std::collections::BTreeSet<_> = orig_paths.iter().collect();
    let mut verdicts = Vec::new();
    for strategy in Strategy::ALL {
        println!("\n=== {strategy} anonymization ===");
        let result = anonymizer_for(strategy)
            .anonymize(&network, &Params::new(6, 2))
            .unwrap_or_else(|e| panic!("{strategy} fails on the case study: {e}"));

        // (b) Is the waypoint still visible in the shared data plane?
        let anon_paths = &result.dataplane.between(src, dst).unwrap().paths;
        for p in anon_paths {
            println!("  {}", p.join(" -> "));
        }
        let kept = anon_paths.iter().collect::<std::collections::BTreeSet<_>>() == orig_set;
        println!("paths preserved exactly: {kept}");
        assert_eq!(
            kept, result.guarantees.exact_path_preservation,
            "{strategy}'s guarantee metadata must match its behaviour"
        );

        // (a) Do the shared artifacts carry the QoS root cause at all?
        // NetHide shares a topology, not configurations, so the engineer
        // never sees core2's traffic-policy no matter where paths go.
        if result.guarantees.config_level_sharing {
            let c2 = &result.configs.routers["core2"];
            let qos_visible = c2
                .emit()
                .contains("traffic-policy mark_agg31_high_priority inbound");
            println!("core2 QoS root cause visible in shared configs: {qos_visible}");
            let agg = &result.configs.routers["agg1-1"];
            println!(
                "agg1-1 queue weights visible: {}",
                agg.emit().contains("qos queue 2 wrr weight 10")
            );
        } else {
            println!("strategy shares topology only: QoS config lines are never shared");
        }
        verdicts.push((strategy, kept));
    }

    println!();
    for (strategy, kept) in verdicts {
        println!(
            "verdict: {strategy} {}.",
            if kept {
                "keeps the diagnosis path visible, guiding the engineer to the root cause"
            } else {
                "reroutes the trace, steering the engineer away from the root cause"
            }
        );
    }
}
