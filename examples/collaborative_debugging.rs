//! The §2.3 case study: collaborative debugging of a QoS misconfiguration.
//!
//! ```sh
//! cargo run --release --example collaborative_debugging
//! ```
//!
//! A FatTree-04 operator sees high delay from pod 3 to pod 1. The root
//! cause: `core2` marks management traffic from `agg3-1` *low*-priority, so
//! it starves in `agg1-1`'s low-priority queue. Diagnosing this from shared
//! configurations requires (a) the QoS lines to survive anonymization and
//! (b) the waypoint `edge3-1 → agg3-1 → core2 → agg1-1 → edge1-0` to stay
//! visible in the shared network's data plane.
//!
//! The example shows ConfMask preserves both, while a NetHide-style
//! obfuscation reroutes the path and hides the root cause (Figure 1).

use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;

fn main() {
    let network = confmask_netgen::smallnets::case_study_network();
    let original = confmask::simulate(&network).expect("case-study network simulates");

    // The problematic flow: a pod-3 host talking to a pod-1 host.
    let (src, dst) = ("h3-1-0", "h1-0-0");
    let orig_paths = &original.dataplane.between(src, dst).unwrap().paths;
    println!("=== Original trouble flow {src} -> {dst} ===");
    for p in orig_paths {
        println!("  {}", p.join(" -> "));
    }
    let via_core2 = orig_paths.iter().any(|p| p.iter().any(|n| n == "core2"));
    println!("some path crosses core2 (the misconfigured router): {via_core2}");

    // --- ConfMask ----------------------------------------------------------
    println!("\n=== ConfMask anonymization ===");
    let result = anonymize(&network, &Params::new(6, 2)).expect("anonymization succeeds");
    let anon_paths = &result.final_sim.dataplane.between(src, dst).unwrap().paths;
    assert_eq!(orig_paths, anon_paths, "functional equivalence");
    println!("paths preserved exactly: true");

    // The QoS misconfiguration is still visible in the shared files.
    let c2 = &result.configs.routers["core2"];
    let qos_visible = c2
        .emit()
        .contains("traffic-policy mark_agg31_high_priority inbound");
    println!("core2 QoS root cause visible in shared configs: {qos_visible}");
    let agg = &result.configs.routers["agg1-1"];
    println!(
        "agg1-1 queue weights visible: {}",
        agg.emit().contains("qos queue 2 wrr weight 10")
    );

    // --- NetHide-style baseline ---------------------------------------------
    println!("\n=== NetHide-style obfuscation (baseline) ===");
    let topo = extract_topology(&network);
    let nh = confmask_nethide::obfuscate(&topo, 6, 0).expect("nethide");
    let nh_paths = &nh.dataplane.between(src, dst).unwrap().paths;
    for p in nh_paths {
        println!("  {}", p.join(" -> "));
    }
    let kept = orig_paths
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        == nh_paths.iter().collect::<std::collections::BTreeSet<_>>();
    println!("paths preserved exactly: {kept}");
    let nh_via_core2 = nh_paths.iter().all(|p| p.iter().any(|n| n == "core2"));
    println!("NetHide trace always waypoints through core2: {nh_via_core2}");
    println!(
        "\nverdict: ConfMask keeps the diagnosis path visible; a NetHide-style \
         virtual topology {} the engineer toward the wrong links.",
        if kept { "does not mislead" } else { "misleads" }
    );
}
