//! Sharing configurations for research: anonymize a BGP+OSPF campus
//! network and verify that research-grade analyses still hold on the
//! shared artifact.
//!
//! ```sh
//! cargo run --release --example research_sharing
//! ```
//!
//! A university wants to contribute its configurations to a verification
//! benchmark (the §2.1 motivation). The recipients must be able to run
//! network-verification tooling and get the *same answers* as on the
//! original network — while learning neither the real topology nor the
//! real communication patterns.

use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::min_same_degree;

fn main() {
    let network = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    println!(
        "university network: {} routers, {} hosts, {} config lines (BGP + OSPF, 2 ASes)",
        network.routers.len(),
        network.hosts.len(),
        network.total_lines()
    );

    let result = anonymize(&network, &Params::new(6, 2)).expect("anonymization succeeds");
    println!(
        "anonymized: +{} fake links, +{} fake hosts, {} filter lines, U_C = {:.3}",
        result.fake_links.len(),
        result.route_anon.fake_hosts.len(),
        result.ledger.filter_lines,
        result.config_utility()
    );

    // --- What the researcher can still do -----------------------------------
    // 1. Mine the network's specification: every original policy survives.
    let orig_spec = confmask_spec::mine(&result.baseline.sim.dataplane);
    let anon_spec = confmask_spec::mine(&result.final_sim.dataplane);
    let diff = confmask_spec::diff(&orig_spec, &anon_spec, &result.baseline.real_hosts);
    println!(
        "\nspecification mining: {} original policies, {} kept ({:.1}%), {} introduced ({:.0}% about fake hosts)",
        diff.original_total,
        diff.kept,
        100.0 * diff.kept_ratio(),
        diff.introduced,
        100.0 * diff.introduced_fake_fraction()
    );
    assert_eq!(diff.missing, 0, "functional equivalence keeps every policy");

    // 2. Verification answers agree: reachability, waypoints, path lengths.
    let real_pairs = result
        .baseline
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    let mut agree = 0;
    let mut total = 0;
    for (pair, orig_ps) in real_pairs.pairs() {
        total += 1;
        if result.final_sim.dataplane.between(&pair.0, &pair.1) == Some(orig_ps) {
            agree += 1;
        }
    }
    println!("verification agreement on real host pairs: {agree}/{total}");

    // --- What the adversary cannot learn -------------------------------------
    let orig_kd = min_same_degree(&result.baseline.topo);
    let anon_kd = min_same_degree(&extract_topology(&result.configs));
    println!(
        "\ntopology anonymity: min same-degree {} -> {} (every router hides among >= {})",
        orig_kd, anon_kd, anon_kd
    );
    let nr = result.route_anonymity();
    println!(
        "route anonymity: avg {:.2} distinct paths per edge-router pair (min {})",
        nr.avg(),
        nr.min()
    );
    println!(
        "fake and real hosts are syntactically identical in the shared files; \
         the real communication pattern hides among {} host pairs.",
        result.final_sim.dataplane.len()
    );
}
