//! Quickstart: anonymize the paper's §3.2 example network and inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example network (Figure 2a) has four routers; the only path from h1
//! to h4 is `(h1, r1, r3, r2, r4, h4)`, which leaks the departments'
//! relationships. ConfMask adds fake links and hosts until the topology is
//! k-degree anonymous and the routes are k-anonymous — while every original
//! forwarding path survives *exactly*.

use confmask::{anonymize, Params};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::{clustering_coefficient, min_same_degree};

fn main() {
    let network = confmask_netgen::smallnets::example_network();

    println!("=== Original network ===");
    let original = confmask::simulate(&network).expect("example network simulates");
    println!(
        "routers: {}, hosts: {}, config lines: {}",
        network.routers.len(),
        network.hosts.len(),
        network.total_lines()
    );
    let path = &original.dataplane.between("h1", "h4").unwrap().paths[0];
    println!("h1 -> h4 path: {}", path.join(" -> "));
    println!(
        "min routers sharing a degree (k_d): {}",
        min_same_degree(&extract_topology(&network))
    );

    println!("\n=== Anonymizing (k_R=3, k_H=2) ===");
    let params = Params::new(3, 2);
    let result = anonymize(&network, &params).expect("anonymization succeeds");

    println!(
        "fake links added: {:?}",
        result
            .fake_links
            .iter()
            .map(|l| format!("{}–{}", l.a, l.b))
            .collect::<Vec<_>>()
    );
    println!("fake hosts added: {:?}", result.route_anon.fake_hosts);
    println!(
        "route-equivalence iterations: {} ({} filters)",
        result.equiv.iterations, result.equiv.filters_added
    );

    println!("\n=== Guarantees ===");
    println!("functionally equivalent: {}", result.functionally_equivalent());
    println!("paths kept exactly (P_U): {:.0}%", 100.0 * result.path_preservation());
    let topo = extract_topology(&result.configs);
    println!("k_d after: {} (>= k_R = 3)", min_same_degree(&topo));
    println!(
        "clustering coefficient: {:.3} -> {:.3}",
        clustering_coefficient(&result.baseline.topo),
        clustering_coefficient(&topo)
    );
    println!(
        "config utility U_C: {:.3} ({} lines injected of {})",
        result.config_utility(),
        result.ledger.total_added(),
        result.configs.total_lines()
    );

    // The anonymized h1 -> h4 path is unchanged.
    let anon_path = &result.final_sim.dataplane.between("h1", "h4").unwrap().paths[0];
    println!("h1 -> h4 path after: {}", anon_path.join(" -> "));

    println!("\n=== Anonymized configuration of r1 (shareable) ===");
    print!("{}", result.configs.routers["r1"].emit());
}
