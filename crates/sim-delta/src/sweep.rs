//! The warm streaming fault sweep: incremental delta simulation folded
//! directly into [`ScenarioDigest`]s, never materializing a perturbed
//! data plane.
//!
//! [`ScenarioSweep`] binds a cached baseline ([`ConvergedSim`]) to an
//! interned pair table once, then classifies each failure scenario
//! per-pair straight off the [`delta::ShutdownPlan`]:
//!
//! * a **reusable** pair (same predicate the materializing path uses —
//!   [`delta::ShutdownPlan::pair_reusable`]) whose baseline path set
//!   equals the base's classifies as `Unchanged` without touching a path;
//! * a reusable pair whose sweep baseline *differs* from the base (a
//!   masked-network sweep compared against the original's baseline)
//!   classifies the cached base path set against the sweep baseline;
//! * a **non-reusable** pair re-traces in id space into a reused
//!   [`PathArena`] and compares against the baseline allocation-free
//!   ([`PathArena::matches`]) — no `PathSet` is ever built.
//!
//! The result is byte-identical to folding the cold
//! [`confmask_sim::fault::run_scenario`] outcome through
//! [`ScenarioDigest::from_outcome`] (the differential gate in
//! `tests/delta_diff.rs` asserts encode-level equality), but a swept
//! scenario allocates nothing that outlives its digest — the memory
//! profile that makes exhaustive k = 2 enumeration and parallel sweeps on
//! a single core viable.

use crate::{delta, record_stats, ConvergedSim, DeltaEngine, DeltaStats, ScenarioScratch};
use confmask_config::NetworkConfigs;
use confmask_net_types::HostId;
use confmask_sim::dataplane::{trace_into, DataPlane, PathArena};
use confmask_sim::fault::{
    classify_pair, classify_pair_with, physical_components, revert_shutdowns, DegradationClass,
    FailureScenario,
};
use confmask_sim::sweep::{PairTable, ScenarioDigest, SweepMeter, SweepReducer, SweepStats};
use confmask_sim::{PathSet, SimError};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One baseline pair's precomputed binding to the base simulation: where
/// it sits in the base data plane, its endpoints' host ids, and whether
/// the sweep's baseline path set equals the base's (computed once, so the
/// per-scenario fold never deep-compares paths for reused pairs).
struct PairBinding {
    /// Source host id (index into the plan's host order).
    si: u32,
    /// Destination host id.
    di: u32,
    /// Index of this pair in the base data plane's key order (and thus
    /// into `pair_meta`); `u32::MAX` when the base lacks the pair.
    base_idx: u32,
    /// Whether `baseline` equals the base's path set for this pair.
    same_as_base: bool,
    /// The sweep baseline's path set (what digests classify against).
    baseline: Arc<PathSet>,
    /// The base simulation's path set (what a reused pair yields).
    base_ps: Option<Arc<PathSet>>,
}

/// A streaming fault sweep over one cached baseline.
///
/// Built once per (baseline, pair table); [`ScenarioSweep::digest`] folds
/// one scenario, [`ScenarioSweep::run`] drives a whole scenario sequence
/// through the shared executor in bounded windows, feeding a
/// [`SweepReducer`] in scenario order.
pub struct ScenarioSweep<'a> {
    /// Held so a sweep cannot outlive the engine whose cache owns `base`
    /// (and to leave room for engine-level knobs later).
    _engine: &'a DeltaEngine,
    base: &'a ConvergedSim,
    table: Arc<PairTable>,
    binding: Vec<PairBinding>,
    /// The base data plane's key order disagreed with the host
    /// enumeration (the same defensive invariant the materializing path
    /// zips for): every scenario goes through the cold path.
    force_cold: bool,
}

impl<'a> ScenarioSweep<'a> {
    /// A sweep classifying `baseline`'s pairs, with a fresh [`PairTable`]
    /// interned from it.
    pub fn new(
        engine: &'a DeltaEngine,
        base: &'a ConvergedSim,
        baseline: &DataPlane,
    ) -> ScenarioSweep<'a> {
        let table = Arc::new(PairTable::from_baseline(baseline));
        Self::with_table(engine, base, baseline, table)
            .expect("a table interned from the baseline always matches it")
    }

    /// A sweep reusing an existing pair table — callers comparing two
    /// sweeps index-align their digests by sharing one table. Returns
    /// `None` when `table`'s pairs are not exactly `baseline`'s (fall
    /// back to [`ScenarioSweep::new`] and name-based comparison).
    pub fn with_table(
        engine: &'a DeltaEngine,
        base: &'a ConvergedSim,
        baseline: &DataPlane,
        table: Arc<PairTable>,
    ) -> Option<ScenarioSweep<'a>> {
        if table.len() != baseline.len() {
            return None;
        }
        for (i, ((s, d), _)) in baseline.pairs().enumerate() {
            if table.pair(i) != (s.as_str(), d.as_str()) {
                return None;
            }
        }

        let host_id: BTreeMap<&str, u32> = base
            .sim
            .net
            .hosts_iter()
            .map(|(id, h)| (h.name.as_str(), id.0))
            .collect();

        // The plan's pair indices assume the base data plane enumerates
        // exactly the ordered host pairs in host order — the invariant
        // `delta::materialize` re-zips per scenario; verify it once here.
        let mut force_cold = false;
        {
            let names: Vec<&str> = base
                .sim
                .net
                .hosts_iter()
                .map(|(_, h)| h.name.as_str())
                .collect();
            let mut cached = base.sim.dataplane.pairs();
            'check: for s in &names {
                for d in &names {
                    if s == d {
                        continue;
                    }
                    match cached.next() {
                        Some(((ks, kd), _)) if ks == s && kd == d => {}
                        _ => {
                            force_cold = true;
                            break 'check;
                        }
                    }
                }
            }
            if !force_cold && cached.next().is_some() {
                force_cold = true;
            }
        }

        // Merge-join the baseline against the base data plane (both are
        // name-sorted; the baseline is normally a restriction of it).
        let mut base_pairs = base.sim.dataplane.shared_pairs().enumerate().peekable();
        let mut binding = Vec::with_capacity(baseline.len());
        for ((s, d), ps) in baseline.shared_pairs() {
            while let Some((_, (k, _))) = base_pairs.peek() {
                if (&k.0, &k.1) < (s, d) {
                    base_pairs.next();
                } else {
                    break;
                }
            }
            let (mut base_idx, base_ps, same_as_base) = match base_pairs.peek() {
                Some((idx, (k, bp))) if (&k.0, &k.1) == (s, d) => {
                    let same = Arc::ptr_eq(ps, bp) || **ps == ***bp;
                    (*idx as u32, Some(Arc::clone(bp)), same)
                }
                _ => (u32::MAX, None, false),
            };
            let (si, di) = match (host_id.get(s.as_str()), host_id.get(d.as_str())) {
                (Some(&a), Some(&b)) => (a, b),
                _ => (u32::MAX, u32::MAX),
            };
            if si == u32::MAX || di == u32::MAX {
                base_idx = u32::MAX;
            }
            binding.push(PairBinding {
                si,
                di,
                base_idx,
                same_as_base: same_as_base && base_idx != u32::MAX,
                baseline: Arc::clone(ps),
                base_ps,
            });
        }

        Some(ScenarioSweep {
            _engine: engine,
            base,
            table,
            binding,
            force_cold,
        })
    }

    /// The shared pair table digests of this sweep refer into.
    pub fn table(&self) -> Arc<PairTable> {
        Arc::clone(&self.table)
    }

    /// Folds one scenario into its digest, reusing the worker's scratch
    /// configs (same apply/revert discipline as
    /// [`DeltaEngine::run_scenario_scratch`]). Byte-identical to folding
    /// the cold `run_scenario` outcome through
    /// [`ScenarioDigest::from_outcome`] with this sweep's table.
    pub fn digest(
        &self,
        scenario: &FailureScenario,
        scratch: &mut ScenarioScratch,
    ) -> Result<ScenarioDigest, SimError> {
        let _sp = confmask_obs::span("sim.fault.scenario");
        confmask_obs::counter_add("sim.fault.scenarios", 1);
        confmask_obs::debug!("sim.delta", "injecting scenario {scenario}");
        if scratch
            .0
            .as_ref()
            .is_none_or(|(uid, _)| *uid != self.base.uid)
        {
            scratch.0 = Some((self.base.uid, self.base.configs.clone()));
        }
        let configs = &mut scratch.0.as_mut().expect("scratch was just filled").1;
        let flipped = scenario.apply_in_place(configs)?;
        let out = self.digest_failed(configs);
        revert_shutdowns(configs, &flipped);
        out
    }

    /// Digests the already-failed configs: plan the delta, classify every
    /// bound pair off the plan, fall back to a cold run when planning
    /// declines.
    fn digest_failed(&self, failed: &NetworkConfigs) -> Result<ScenarioDigest, SimError> {
        let sp = confmask_obs::span("sim.delta.sim");
        confmask_obs::counter_add("sim.delta.sims", 1);
        let plan = if self.force_cold {
            None
        } else {
            delta::plan_shutdowns(self.base, failed)?
        };
        let (digest, stats) = match plan {
            Some(plan) => self.digest_plan(failed, &plan),
            None => (self.digest_cold(failed)?, DeltaStats::full()),
        };
        sp.finish();
        record_stats(&stats);
        Ok(digest)
    }

    /// Classifies every bound pair against the plan. Replicates
    /// `classify_pair_with`'s decision order exactly for re-traced pairs
    /// (equality, loop, dropped, rerouted) so the digest matches the
    /// materializing path bit for bit.
    fn digest_plan(
        &self,
        failed: &NetworkConfigs,
        plan: &delta::ShutdownPlan,
    ) -> (ScenarioDigest, DeltaStats) {
        // Physical connectivity only arbitrates dropped traffic, so the
        // component flood fill runs lazily, at most once per scenario.
        let comp: OnceCell<BTreeMap<String, usize>> = OnceCell::new();
        let connected = |src: &str, dst: &str| {
            let comp = comp.get_or_init(|| physical_components(failed));
            match (comp.get(src), comp.get(dst)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        };
        let empty = PathSet {
            blackhole: true,
            ..PathSet::default()
        };
        let mut arena = PathArena::default();
        let mut digest = ScenarioDigest::new(self.table.len());
        let mut recomputed = 0usize;
        for (i, b) in self.binding.iter().enumerate() {
            let (src, dst) = self.table.pair(i);
            let class = if b.base_idx == u32::MAX {
                // The base simulation lacks this pair: the perturbed data
                // plane cannot contain it either (delta runs start from
                // the base's pair set), so it reads as dropped.
                classify_pair_with(&b.baseline, &empty, || connected(src, dst))
            } else if plan.pair_reusable(self.base, b.si as usize, b.di as usize, b.base_idx as usize)
            {
                if b.same_as_base {
                    // Reused ⇒ post-failure == base == this baseline.
                    DegradationClass::Unchanged
                } else {
                    let after = b.base_ps.as_ref().expect("present pair has a base path set");
                    classify_pair_with(&b.baseline, after, || connected(src, dst))
                }
            } else {
                recomputed += 1;
                trace_into(
                    &plan.new_net,
                    &plan.fibs,
                    HostId(b.si),
                    HostId(b.di),
                    &mut arena,
                );
                if arena.matches(&plan.new_net, &b.baseline) {
                    DegradationClass::Unchanged
                } else if arena.has_loop {
                    DegradationClass::Looping
                } else if arena.path_count() == 0 || arena.blackhole {
                    if connected(src, dst) {
                        DegradationClass::BlackHoled
                    } else {
                        DegradationClass::Partitioned
                    }
                } else {
                    DegradationClass::Rerouted
                }
            };
            digest.record(i, class);
        }
        (digest, plan.stats(self.binding.len(), recomputed))
    }

    /// Cold fallback: full re-simulation, classified per table pair —
    /// exactly `run_scenario`'s loop, folded straight into a digest.
    fn digest_cold(&self, failed: &NetworkConfigs) -> Result<ScenarioDigest, SimError> {
        let sim = confmask_sim::simulate(failed)?;
        let comp = physical_components(failed);
        let empty = PathSet {
            blackhole: true,
            ..PathSet::default()
        };
        let mut digest = ScenarioDigest::new(self.table.len());
        for (i, b) in self.binding.iter().enumerate() {
            let (src, dst) = self.table.pair(i);
            let after = sim.dataplane.between(src, dst).unwrap_or(&empty);
            let connected = match (comp.get(src), comp.get(dst)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            digest.record(i, classify_pair(&b.baseline, after, connected));
        }
        Ok(digest)
    }

    /// Sweeps a scenario sequence: windows of scenarios fan out across
    /// the shared executor with per-worker scratch configs, and each
    /// digest is folded into `reducer` in scenario order while the window
    /// behind it is freed. Peak retention is one window of digests — the
    /// `peak_digest_bytes` the returned [`SweepStats`] reports.
    ///
    /// Items may be owned scenarios (a lazy k = 2 enumerator) or borrows
    /// (`scenarios.iter()` over a caller-held `Vec` — no per-item clone).
    pub fn run<B: std::borrow::Borrow<FailureScenario> + Sync>(
        &self,
        scenarios: impl IntoIterator<Item = B>,
        reducer: &mut dyn SweepReducer,
    ) -> SweepStats {
        let window = (confmask_exec::thread_count() * 32).clamp(64, 1024);
        let mut meter = SweepMeter::new(window);
        confmask_exec::par_stream_init(
            scenarios,
            window,
            ScenarioScratch::default,
            |scratch, _i, sc: &B| self.digest(sc.borrow(), scratch),
            |i, r| match r {
                Ok(d) => {
                    meter.fold_ok(i, d.retained_bytes());
                    reducer.fold(i, d);
                }
                Err(e) => {
                    meter.fold_err(i);
                    reducer.fold_err(i, e);
                }
            },
        );
        meter.finish()
    }

    /// The most severe class in a single ad-hoc scenario (convenience for
    /// callers that probe one compound failure).
    pub fn worst_of(
        &self,
        scenario: &FailureScenario,
        scratch: &mut ScenarioScratch,
    ) -> Result<DegradationClass, SimError> {
        self.digest(scenario, scratch).map(|d| d.worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs};
    use confmask_sim::fault::{
        enumerate_single_link_failures, run_scenario, Fault,
    };
    use confmask_sim::sweep::DigestList;
    use confmask_sim::simulate;

    fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
        HostConfig {
            hostname: name.into(),
            iface_name: "eth0".into(),
            address: (addr.parse().unwrap(), 24),
            gateway: gw.parse().unwrap(),
            extra: vec![],
            added: false,
        }
    }

    /// Triangle r1–r2–r3 (all OSPF), hosts on r1 and r2.
    fn triangle() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.1.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.2.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.2.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r3 = parse_router(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n!\n",
        )
        .unwrap();
        NetworkConfigs::new(
            [r1, r2, r3],
            [
                host("h1", "10.1.1.100", "10.1.1.1"),
                host("h2", "10.1.2.100", "10.1.2.1"),
            ],
        )
    }

    fn scenarios(cfgs: &NetworkConfigs) -> Vec<FailureScenario> {
        let mut out = enumerate_single_link_failures(cfgs);
        for r in ["r1", "r2", "r3"] {
            out.push(FailureScenario::single(Fault::RouterDown { router: r.into() }));
        }
        out
    }

    #[test]
    fn warm_digests_match_cold_folds() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let sweep = engine.sweep(&base, &base.sim.dataplane);
        let mut scratch = ScenarioScratch::default();
        for sc in scenarios(&cfgs) {
            let warm = sweep.digest(&sc, &mut scratch).unwrap();
            let cold = ScenarioDigest::from_outcome(
                &run_scenario(&cfgs, &base.sim.dataplane, &sc).unwrap(),
                &sweep.table(),
            );
            assert_eq!(warm, cold, "{sc}");
            assert_eq!(warm.encode(), cold.encode(), "{sc}");
        }
    }

    #[test]
    fn warm_digests_match_against_foreign_baseline() {
        // The baseline comes from a *separate* cold simulation: no Arc
        // sharing with the cached base, so same_as_base runs on deep
        // equality. Results must still match the cold fold.
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let sweep = engine.sweep(&base, &baseline);
        let mut scratch = ScenarioScratch::default();
        for sc in scenarios(&cfgs) {
            let warm = sweep.digest(&sc, &mut scratch).unwrap();
            let cold = ScenarioDigest::from_outcome(
                &run_scenario(&cfgs, &baseline, &sc).unwrap(),
                &sweep.table(),
            );
            assert_eq!(warm, cold, "{sc}");
        }
    }

    #[test]
    fn run_streams_in_order_with_digest_stats() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let sweep = engine.sweep(&base, &base.sim.dataplane);
        let scs = scenarios(&cfgs);
        let mut list = DigestList::default();
        let stats = sweep.run(scs.iter(), &mut list);
        assert_eq!(stats.scenarios, scs.len());
        assert_eq!(stats.errors, 0);
        assert!(stats.peak_digest_bytes > 0);
        assert_eq!(list.results.len(), scs.len());
        let mut scratch = ScenarioScratch::default();
        for (sc, got) in scs.iter().zip(&list.results) {
            assert_eq!(
                got.as_ref().unwrap(),
                &sweep.digest(sc, &mut scratch).unwrap(),
                "{sc}"
            );
        }
    }

    #[test]
    fn with_table_rejects_mismatched_tables() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let table = Arc::new(PairTable::from_baseline(&base.sim.dataplane));
        assert!(ScenarioSweep::with_table(
            &engine,
            &base,
            &base.sim.dataplane,
            Arc::clone(&table)
        )
        .is_some());
        // A restricted baseline has fewer pairs than the full table.
        let only: std::collections::BTreeSet<String> = ["h1".to_string()].into();
        let restricted = base.sim.dataplane.restricted_to(&only);
        assert!(ScenarioSweep::with_table(&engine, &base, &restricted, table).is_none());
    }

    #[test]
    fn erroring_scenarios_fold_as_errors() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let sweep = engine.sweep(&base, &base.sim.dataplane);
        let bad = FailureScenario::single(Fault::RouterDown {
            router: "nope".into(),
        });
        let mut list = DigestList::default();
        let stats = sweep.run([bad], &mut list);
        assert_eq!(stats.scenarios, 0);
        assert_eq!(stats.errors, 1);
        assert!(matches!(
            list.results[0],
            Err(SimError::UnknownElement(_))
        ));
    }
}
