//! Content-addressed cache keys: a stable 128-bit structural hash over
//! [`NetworkConfigs`].
//!
//! The hash covers every field the simulator can observe — addresses,
//! costs, protocol blocks, filters, static routes, provenance flags, and
//! even uninterpreted `extra` lines — so any semantic (or textual) change
//! to any configuration produces a different key. It deliberately does
//! *not* use `std::hash` machinery: `DefaultHasher` is allowed to change
//! across Rust releases, while cache keys must be stable across runs and
//! builds. FNV-1a over a canonical byte encoding is trivially portable and
//! has no iteration-order pitfalls because `NetworkConfigs` stores devices
//! in `BTreeMap`s (sorted by hostname regardless of insertion order).
//!
//! Collisions are handled by the cache, which compares the stored
//! `NetworkConfigs` for equality on every hit — the hash narrows the
//! search, equality decides it.

use confmask_config::{
    BgpConfig, DistributeListBinding, FilterAction, HostConfig, Interface, NetworkConfigs,
    NetworkStatement, OspfConfig, PrefixList, RipConfig, RouterConfig, StaticRoute,
};
use confmask_net_types::{Ipv4Addr, Ipv4Prefix};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental FNV-1a/128 over a canonical byte stream.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed string (prefixing prevents concatenation ambiguity:
    /// `("ab", "c")` must hash differently from `("a", "bc")`).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn addr(&mut self, a: Ipv4Addr) {
        self.u32(u32::from(a));
    }

    fn prefix(&mut self, p: &Ipv4Prefix) {
        self.addr(p.network());
        self.u8(p.len());
    }

    /// Option tag: 0 = None, 1 = Some (then the payload).
    fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    fn list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }
}

/// The stable structural hash of a network — the cache key.
///
/// Deterministic across runs, processes, and builds; independent of the
/// order configurations were inserted (device maps are sorted); sensitive
/// to every configuration field.
pub fn structural_hash(configs: &NetworkConfigs) -> u128 {
    let mut h = Fnv128::new();
    h.u64(configs.routers.len() as u64);
    for (name, rc) in &configs.routers {
        h.str(name);
        hash_router(&mut h, rc);
    }
    h.u64(configs.hosts.len() as u64);
    for (name, hc) in &configs.hosts {
        h.str(name);
        hash_host(&mut h, hc);
    }
    h.0
}

fn hash_router(h: &mut Fnv128, rc: &RouterConfig) {
    h.str(&rc.hostname);
    h.bool(rc.added);
    h.list(&rc.interfaces, hash_interface);
    h.opt(&rc.ospf, hash_ospf);
    h.opt(&rc.rip, hash_rip);
    h.opt(&rc.bgp, hash_bgp);
    h.list(&rc.prefix_lists, hash_prefix_list);
    h.list(&rc.static_routes, hash_static_route);
    h.list(&rc.extra_lines, |h, l| h.str(l));
}

fn hash_interface(h: &mut Fnv128, i: &Interface) {
    h.str(&i.name);
    h.opt(&i.address, |h, (a, l)| {
        h.addr(*a);
        h.u8(*l);
    });
    h.opt(&i.ospf_cost, |h, c| h.u32(*c));
    h.opt(&i.description, |h, d| h.str(d));
    h.bool(i.shutdown);
    h.list(&i.extra, |h, l| h.str(l));
    h.bool(i.added);
}

fn hash_network_statement(h: &mut Fnv128, n: &NetworkStatement) {
    h.prefix(&n.prefix);
    h.u32(n.area);
    h.bool(n.added);
}

fn hash_binding(h: &mut Fnv128, b: &DistributeListBinding) {
    match b {
        DistributeListBinding::Interface {
            list,
            interface,
            added,
        } => {
            h.u8(0);
            h.str(list);
            h.str(interface);
            h.bool(*added);
        }
        DistributeListBinding::Neighbor {
            list,
            neighbor,
            added,
        } => {
            h.u8(1);
            h.str(list);
            h.addr(*neighbor);
            h.bool(*added);
        }
    }
}

fn hash_ospf(h: &mut Fnv128, o: &OspfConfig) {
    h.u32(o.process_id);
    h.list(&o.networks, hash_network_statement);
    h.list(&o.distribute_lists, hash_binding);
}

fn hash_rip(h: &mut Fnv128, r: &RipConfig) {
    h.list(&r.networks, hash_network_statement);
    h.list(&r.distribute_lists, hash_binding);
}

fn hash_bgp(h: &mut Fnv128, b: &BgpConfig) {
    h.u32(b.asn.0);
    h.list(&b.networks, hash_network_statement);
    h.list(&b.neighbors, |h, n| {
        h.addr(n.addr);
        h.u32(n.remote_as.0);
        h.opt(&n.local_pref, |h, p| h.u32(*p));
        h.bool(n.added);
    });
    h.list(&b.distribute_lists, hash_binding);
}

fn hash_prefix_list(h: &mut Fnv128, p: &PrefixList) {
    h.str(&p.name);
    h.list(&p.entries, |h, e| {
        h.u32(e.seq);
        h.u8(match e.action {
            FilterAction::Permit => 0,
            FilterAction::Deny => 1,
        });
        h.prefix(&e.prefix);
        h.bool(e.added);
    });
}

fn hash_static_route(h: &mut Fnv128, s: &StaticRoute) {
    h.prefix(&s.prefix);
    h.addr(s.next_hop);
    h.bool(s.added);
}

fn hash_host(h: &mut Fnv128, hc: &HostConfig) {
    h.str(&hc.hostname);
    h.str(&hc.iface_name);
    h.addr(hc.address.0);
    h.u8(hc.address.1);
    h.addr(hc.gateway);
    h.list(&hc.extra, |h, l| h.str(l));
    h.bool(hc.added);
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::parse_router;

    fn sample() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n ip ospf cost 5\n!\ninterface Ethernet0/1\n ip address 10.1.0.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n network 10.1.0.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\nrouter bgp 65001\n network 10.1.0.0 mask 255.255.255.0\n neighbor 10.0.0.0 remote-as 65002\n!\n",
        )
        .unwrap();
        let h = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.0.100".parse().unwrap(), 24),
            gateway: "10.1.0.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2], [h])
    }

    #[test]
    fn deterministic_across_runs() {
        // Two fully independent constructions hash identically.
        assert_eq!(structural_hash(&sample()), structural_hash(&sample()));
    }

    #[test]
    fn insensitive_to_insertion_order() {
        let a = sample();
        // Rebuild with routers and hosts inserted in reverse order.
        let routers: Vec<_> = a.routers.values().rev().cloned().collect();
        let hosts: Vec<_> = a.hosts.values().rev().cloned().collect();
        let b = NetworkConfigs::new(routers, hosts);
        assert_eq!(a, b, "BTreeMap canonicalizes device order");
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn sensitive_to_every_kind_of_change() {
        let base = structural_hash(&sample());
        type Mutation = Box<dyn Fn(&mut NetworkConfigs)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(|c| c.routers.get_mut("r1").unwrap().interfaces[0].shutdown = true),
            Box::new(|c| c.routers.get_mut("r1").unwrap().interfaces[0].ospf_cost = Some(7)),
            Box::new(|c| c.routers.get_mut("r1").unwrap().interfaces[1].address = None),
            Box::new(|c| {
                c.routers
                    .get_mut("r1")
                    .unwrap()
                    .extra_lines
                    .push("no ip cef".into());
            }),
            Box::new(|c| {
                c.routers
                    .get_mut("r1")
                    .unwrap()
                    .ospf
                    .as_mut()
                    .unwrap()
                    .networks
                    .pop();
            }),
            Box::new(|c| {
                c.routers
                    .get_mut("r2")
                    .unwrap()
                    .bgp
                    .as_mut()
                    .unwrap()
                    .neighbors[0]
                    .local_pref = Some(200);
            }),
            Box::new(|c| {
                c.hosts.get_mut("h1").unwrap().gateway = "10.1.0.2".parse().unwrap();
            }),
            Box::new(|c| {
                let r = c.routers.get_mut("r1").unwrap();
                r.static_routes.push(StaticRoute {
                    prefix: "10.9.0.0/24".parse().unwrap(),
                    next_hop: "10.0.0.1".parse().unwrap(),
                    added: true,
                });
            }),
            Box::new(|c| {
                let h = c.hosts.remove("h1").unwrap();
                c.hosts.insert("h1-renamed".into(), h);
            }),
        ];
        for (i, m) in mutations.iter().enumerate() {
            let mut c = sample();
            m(&mut c);
            assert_ne!(
                structural_hash(&c),
                base,
                "mutation {i} must change the hash"
            );
        }
    }

    #[test]
    fn option_and_concat_ambiguities_are_distinguished() {
        // `description: Some("")` vs `None`.
        let mut a = sample();
        a.routers.get_mut("r1").unwrap().interfaces[0].description = Some(String::new());
        assert_ne!(structural_hash(&a), structural_hash(&sample()));
        // Two extra lines "ab"+"c" vs "a"+"bc".
        let mut x = sample();
        let mut y = sample();
        x.routers.get_mut("r1").unwrap().extra_lines = vec!["ab".into(), "c".into()];
        y.routers.get_mut("r1").unwrap().extra_lines = vec!["a".into(), "bc".into()];
        assert_ne!(structural_hash(&x), structural_hash(&y));
    }
}
