//! Delta recomputation for fault perturbations.
//!
//! Given a cached converged simulation of a base network and a perturbed
//! copy of its configurations, this module produces the perturbed
//! [`Simulation`] while recomputing only what the perturbation can have
//! touched. The supported perturbation class is *administrative shutdowns*
//! (`shutdown: false → true` on existing interfaces) — exactly what the
//! fault engine's scenarios apply — because shutdowns only ever **remove**
//! model elements, which is the monotonicity every warm-start argument
//! below leans on. Anything else falls back to a full cold simulation,
//! explicitly.
//!
//! Per-protocol strategy (soundness arguments inline; the contract is that
//! results are **byte-identical** to a cold `simulate()` of the perturbed
//! configs):
//!
//! * **OSPF** — per-prefix SPFs are independent, so only *affected*
//!   prefixes re-run ([`ospf::compute_subset`]); the rest splice in the
//!   cached routes with interface indices remapped. A prefix is affected
//!   iff a failed interface sits directly on it (advertiser seeds and the
//!   connected-route skip change) or a removed OSPF edge lies on its
//!   shortest-path DAG (`dist[u] == cost(u→v) + dist[v]` in either
//!   direction). Removing a non-DAG edge changes neither distances (it was
//!   on no shortest path) nor candidate sets (every candidate edge
//!   satisfies the DAG equation), so unaffected prefixes converge to the
//!   cached result exactly.
//! * **RIP** — Bellman–Ford re-runs for every prefix but warm-starts from
//!   the cached fixpoint ([`rip::compute_with_state`]), which is sound for
//!   removal-only perturbations (see the proof on that function).
//! * **BGP** — warm-starting a path-vector protocol is *unsound* (BGP has
//!   multiple equilibria; a warm start can land in a different one than a
//!   cold run). Instead, the cached routes are reused wholesale when the
//!   iteration is provably isomorphic — the IGP router-path matrix is
//!   unchanged modulo interface renumbering and no removed interface was
//!   BGP-relevant (session endpoint, session carrier, or origin prefix
//!   owner) — and fully recomputed otherwise.
//! * **Data plane** — the trace DFS consults exactly one FIB entry per
//!   visited router: the longest-prefix match for the *destination host's*
//!   address. The reuse criterion is therefore per (router, destination):
//!   a pair reuses its cached [`PathSet`] when its endpoints' attachments
//!   survived and, for its destination, no reachable router resolves that
//!   address differently (modulo interface renumbering). When *no* router's
//!   lookup for the destination changed, the entire DFS — blackholes,
//!   loops, and ECMP truncation included — replays identically, so the
//!   cached set is reused unconditionally. Otherwise only clean,
//!   non-truncated pairs are reusable (their recorded paths are exactly the
//!   routers the walk visits) and only when every on-path router's lookup
//!   is unchanged. Reuse shares the cached set by [`Arc`] — no copying.

use crate::{ConvergedSim, DeltaStats};
use confmask_config::NetworkConfigs;
use confmask_net_types::{HostId, Ipv4Prefix, RouterId};
use confmask_sim::dataplane::trace;
use confmask_sim::ospf::RouterPaths;
use confmask_sim::{
    bgp, merge_router_fib, ospf, rip, simulate, BgpRoutes, FibEntry, Fibs, NextHop, Peer, SimError,
    SimNetwork, Simulation,
};
use std::collections::{BTreeMap, BTreeSet};

/// How the perturbed configs differ from the cached base.
pub(crate) enum ConfigDiff {
    /// No difference at all.
    Identical,
    /// Only `shutdown: false → true` flips on existing interfaces (the
    /// delta path re-derives the removed-interface set from the rebuilt
    /// model, where address-less interfaces are already invisible).
    Shutdowns,
    /// Any other change (additions, deletions, edits, un-shutdowns).
    Unsupported,
}

/// Classifies the base → perturbed configuration diff in a single pass
/// (no up-front whole-config equality check: the walk below both finds
/// the tolerated shutdowns and proves everything else untouched).
pub(crate) fn diff_configs(base: &NetworkConfigs, new: &NetworkConfigs) -> ConfigDiff {
    if base.hosts != new.hosts || base.routers.len() != new.routers.len() {
        return ConfigDiff::Unsupported;
    }

    let mut any_shutdown = false;
    for ((bname, brc), (nname, nrc)) in base.routers.iter().zip(new.routers.iter()) {
        if bname != nname {
            return ConfigDiff::Unsupported;
        }
        // Everything but the interface list must be untouched.
        if brc.hostname != nrc.hostname
            || brc.added != nrc.added
            || brc.ospf != nrc.ospf
            || brc.rip != nrc.rip
            || brc.bgp != nrc.bgp
            || brc.prefix_lists != nrc.prefix_lists
            || brc.static_routes != nrc.static_routes
            || brc.extra_lines != nrc.extra_lines
            || brc.interfaces.len() != nrc.interfaces.len()
        {
            return ConfigDiff::Unsupported;
        }
        for (bi, ni) in brc.interfaces.iter().zip(nrc.interfaces.iter()) {
            if bi == ni {
                continue;
            }
            // The only tolerated difference is a fresh shutdown.
            let mut shutdown_normalized = bi.clone();
            shutdown_normalized.shutdown = ni.shutdown;
            if shutdown_normalized != *ni || bi.shutdown || !ni.shutdown {
                return ConfigDiff::Unsupported;
            }
            any_shutdown = true;
        }
    }
    if any_shutdown {
        ConfigDiff::Shutdowns
    } else {
        ConfigDiff::Identical
    }
}

/// Simulates the perturbed network, incrementally where possible.
/// Byte-identical to `simulate(perturbed)` by construction.
pub(crate) fn simulate_delta(
    base: &ConvergedSim,
    perturbed: &NetworkConfigs,
) -> Result<(Simulation, DeltaStats), SimError> {
    match diff_configs(&base.configs, perturbed) {
        ConfigDiff::Identical => Ok((base.sim.clone(), DeltaStats::identical())),
        ConfigDiff::Unsupported => full_fallback(perturbed),
        ConfigDiff::Shutdowns => match delta_shutdowns(base, perturbed)? {
            Some(out) => Ok(out),
            // Defensive: a reuse invariant did not hold; never guess.
            None => full_fallback(perturbed),
        },
    }
}

/// [`simulate_delta`] for a perturbation the caller has itself produced by
/// applying shutdowns to the base configs (the scenario runner): the
/// config-diff walk is skipped because its answer is known by construction.
pub(crate) fn simulate_delta_shutdowns(
    base: &ConvergedSim,
    perturbed: &NetworkConfigs,
) -> Result<(Simulation, DeltaStats), SimError> {
    match delta_shutdowns(base, perturbed)? {
        Some(out) => Ok(out),
        None => full_fallback(perturbed),
    }
}

fn full_fallback(perturbed: &NetworkConfigs) -> Result<(Simulation, DeltaStats), SimError> {
    let sim = simulate(perturbed)?;
    Ok((sim, DeltaStats::full()))
}

/// Everything the shutdown delta derives *before* touching the data
/// plane: the perturbed model and FIBs plus the per-endpoint reuse
/// predicates. [`materialize`] turns a plan into a full [`Simulation`];
/// the streaming digest path (`crate::sweep`) instead classifies each
/// baseline pair directly off the plan — both answer pair reusability
/// with the same [`ShutdownPlan::pair_reusable`], so they cannot drift.
pub(crate) struct ShutdownPlan {
    /// The perturbed network model.
    pub new_net: SimNetwork,
    /// The perturbed per-router FIBs.
    pub fibs: Fibs,
    /// Host ids in data-plane (hostname) order.
    pub hosts: Vec<HostId>,
    /// `lookup_changed[d][r]`: router `r` resolves destination host `d`'s
    /// address differently than the cached base.
    pub lookup_changed: Vec<Vec<bool>>,
    /// Destination hosts no router resolves differently.
    pub dst_untouched: Vec<bool>,
    /// Hosts whose attachment survived the perturbation.
    pub att_unchanged: Vec<bool>,
    /// Hosts that were unattached in the base network.
    pub unattached: Vec<bool>,
    ospf_prefixes_total: usize,
    ospf_prefixes_recomputed: usize,
    rip_warm_started: bool,
    bgp_reused: bool,
}

impl ShutdownPlan {
    /// Whether ordered pair `(si, di)` (host indices into
    /// [`ShutdownPlan::hosts`], `idx` its position in the base data
    /// plane's key order) can reuse its cached path set. See the
    /// soundness argument on [`materialize`].
    pub fn pair_reusable(&self, base: &ConvergedSim, si: usize, di: usize, idx: usize) -> bool {
        if !self.att_unchanged[si] || !self.att_unchanged[di] {
            false
        } else if self.unattached[si] || self.dst_untouched[di] {
            true
        } else {
            match &base.pair_meta[idx] {
                Some(on_path) => {
                    let changed = &self.lookup_changed[di];
                    on_path.iter().all(|&r| !changed[r as usize])
                }
                None => false,
            }
        }
    }

    /// The delta statistics for this plan given the data-plane tallies.
    pub fn stats(&self, pairs_total: usize, pairs_recomputed: usize) -> DeltaStats {
        DeltaStats {
            full_fallback: false,
            identical: false,
            ospf_prefixes_total: self.ospf_prefixes_total,
            ospf_prefixes_recomputed: self.ospf_prefixes_recomputed,
            rip_warm_started: self.rip_warm_started,
            bgp_reused: self.bgp_reused,
            pairs_total,
            pairs_recomputed,
        }
    }
}

/// The shutdown-only delta path. Returns `Ok(None)` when a defensive
/// invariant check fails and the caller should fall back to a cold run.
fn delta_shutdowns(
    base: &ConvergedSim,
    perturbed: &NetworkConfigs,
) -> Result<Option<(Simulation, DeltaStats)>, SimError> {
    match plan_shutdowns(base, perturbed)? {
        Some(plan) => Ok(materialize(base, plan)),
        None => Ok(None),
    }
}

/// Builds the [`ShutdownPlan`] for a shutdown-only perturbation: model,
/// FIBs (both incremental where provable), and the per-endpoint reuse
/// predicates. Returns `Ok(None)` when a defensive invariant check fails
/// and the caller should fall back to a cold run.
pub(crate) fn plan_shutdowns(
    base: &ConvergedSim,
    perturbed: &NetworkConfigs,
) -> Result<Option<ShutdownPlan>, SimError> {
    let new_net = SimNetwork::build(perturbed)?;
    let base_net = &base.sim.net;
    let n = base_net.router_count();

    // Shutdown-only diffs keep the device sets (and hence RouterId/HostId
    // assignment, which follows hostname order) identical.
    if new_net.router_count() != n
        || new_net.hosts.len() != base_net.hosts.len()
        || new_net
            .routers
            .iter()
            .zip(base_net.routers.iter())
            .any(|(a, b)| a.name != b.name)
        || new_net
            .hosts
            .iter()
            .zip(base_net.hosts.iter())
            .any(|(a, b)| a.name != b.name)
    {
        return Ok(None);
    }

    // Per-router interface renumbering: `SimNetwork::build` skips shut
    // interfaces, so surviving interfaces shift down. Map base index →
    // new index by interface name; `None` marks a removed interface.
    let mut remap: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
    let mut failed: Vec<(usize, usize)> = Vec::new(); // (router, base iface idx)
    for r in 0..n {
        let new_by_name: BTreeMap<&str, usize> = new_net.routers[r]
            .ifaces
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        let map: Vec<Option<usize>> = base_net.routers[r]
            .ifaces
            .iter()
            .map(|f| new_by_name.get(f.name.as_str()).copied())
            .collect();
        // Removal-only: every new interface must come from a base one.
        if map.iter().filter(|m| m.is_some()).count() != new_net.routers[r].ifaces.len() {
            return Ok(None);
        }
        for (bi, m) in map.iter().enumerate() {
            if m.is_none() {
                failed.push((r, bi));
            }
        }
        remap.push(map);
    }

    // ---- OSPF: recompute only affected prefixes. ----
    let mut affected: BTreeSet<Ipv4Prefix> = BTreeSet::new();
    for &(r, bi) in &failed {
        let iface = &base_net.routers[r].ifaces[bi];
        // Failed interface directly on a destination LAN: advertiser seeds
        // and the connected-route skip change for that prefix.
        if base_net
            .destinations
            .iter()
            .any(|(p, _)| *p == iface.prefix)
        {
            affected.insert(iface.prefix);
        }
        if !iface.ospf_active {
            continue;
        }
        // Removed OSPF edges (both directions vanish with either endpoint):
        // r --cost--> v and v --peer_cost--> r for every router peer.
        for peer in &iface.peers {
            let Peer::Router {
                router: v,
                iface: pi,
            } = peer
            else {
                continue;
            };
            let peer_iface = &base_net.router(*v).ifaces[*pi];
            if !peer_iface.ospf_active {
                continue;
            }
            let (u, v) = (r, v.0 as usize);
            for (prefix, dist) in &base.state.ospf_dist {
                if affected.contains(prefix) {
                    continue;
                }
                let (du, dv) = (dist[u], dist[v]);
                let fwd = dv != u64::MAX && du == u64::from(iface.cost).saturating_add(dv);
                let rev = du != u64::MAX && dv == u64::from(peer_iface.cost).saturating_add(du);
                if fwd || rev {
                    affected.insert(*prefix);
                }
            }
        }
    }

    let affected_dests: Vec<(Ipv4Prefix, Vec<HostId>)> = new_net
        .destinations
        .iter()
        .filter(|(p, _)| affected.contains(p))
        .cloned()
        .collect();
    let ospf_prefixes_total = new_net.destinations.len();
    let ospf_prefixes_recomputed = affected_dests.len();
    let (mut ospf_routes, mut ospf_dist) = ospf::compute_subset(&new_net, &affected_dests);

    // Splice the unaffected prefixes back in, renumbering interfaces. The
    // remap is monotone (removal preserves relative order), so sorted hop
    // lists stay sorted.
    for (prefix, _) in &new_net.destinations {
        if affected.contains(prefix) {
            continue;
        }
        if let Some(d) = base.state.ospf_dist.get(prefix) {
            ospf_dist.insert(*prefix, d.clone());
        }
        for r in 0..n {
            let Some(hops) = base.state.ospf_routes[r].get(prefix) else {
                continue;
            };
            let mut mapped = Vec::with_capacity(hops.len());
            for &(ii, v) in hops {
                match remap[r][ii] {
                    Some(ni) => mapped.push((ni, v)),
                    // A candidate hop through a removed interface satisfies
                    // the DAG equation, so the prefix would have been
                    // affected — reaching this means the invariant broke.
                    None => return Ok(None),
                }
            }
            ospf_routes[r].insert(*prefix, mapped);
        }
    }

    // ---- RIP: warm-start the fixpoint (sound under removal-only). ----
    let (rip_routes, _rip_dist) = rip::compute_with_state(&new_net, Some(&base.state.rip_dist));
    let rip_warm_started = !base.state.rip_dist.is_empty();

    // ---- BGP: reuse when provably isomorphic, else recompute. ----
    let any_bgp = new_net.routers.iter().any(|r| r.asn.is_some());
    let (bgp_routes, bgp_reused) = if !any_bgp {
        (vec![BTreeMap::new(); n], false)
    } else {
        let rp_new = ospf::router_paths(&new_net);
        let isomorphic = base
            .state
            .router_paths
            .as_ref()
            .is_some_and(|rp| router_paths_equal_after_remap(rp, &rp_new, &remap))
            && !failed
                .iter()
                .any(|&(r, bi)| iface_bgp_relevant(base_net, r, bi));
        let reused = if isomorphic {
            remap_bgp_routes(&base.state.bgp_routes, &remap)
        } else {
            None
        };
        match reused {
            Some(routes) => (routes, true),
            None => (bgp::compute(&new_net, &rp_new)?, false),
        }
    };

    // ---- FIB merge, incremental where provable. A router's FIB can be
    // cloned from the base when every merge input is unchanged *and* its
    // interface numbering is the identity: no removed interface (so
    // connected routes and hop indices keep their bytes), no static routes
    // (their resolution peeks at neighbors' interface tables), RIP silent
    // on both sides, BGP absent or reused (identity-remapped = identical),
    // and the recomputed OSPF rows for affected prefixes equal to the
    // cached ones. Everything else goes through the same merge as a cold
    // run. ----
    let rip_silent = base.state.rip_dist.is_empty() && rip_routes.iter().all(|t| t.is_empty());
    let bgp_stable = !any_bgp || bgp_reused;
    let mut fib_cloned = vec![false; n];
    let fibs = Fibs {
        per_router: (0..n)
            .map(|r| {
                let rid = RouterId(r as u32);
                let identity = remap[r].iter().all(|m| m.is_some());
                let reusable = identity
                    && rip_silent
                    && bgp_stable
                    && new_net.routers[r].static_routes.is_empty()
                    && affected_dests
                        .iter()
                        .all(|(p, _)| ospf_routes[r].get(p) == base.state.ospf_routes[r].get(p));
                if reusable {
                    fib_cloned[r] = true;
                    base.sim.fibs.per_router[r].clone()
                } else {
                    merge_router_fib(&new_net, rid, &ospf_routes, &rip_routes, &bgp_routes)
                }
            })
            .collect(),
    };

    // ---- Data plane: re-trace only pairs the failure can have touched. ----
    // Lockstep FIB diff per router (entries are prefix-sorted): the set of
    // prefixes whose entry changed modulo renumbering. `None` marks a
    // router whose FIB *key set* changed (entries appeared or vanished,
    // e.g. a lost connected route) — longest-prefix matches there cannot
    // be compared by key and fall back to actual lookups below.
    let changed_prefixes: Vec<Option<BTreeSet<Ipv4Prefix>>> = (0..n)
        .map(|r| {
            if fib_cloned[r] {
                return Some(BTreeSet::new());
            }
            let rid = RouterId(r as u32);
            let (bf, nf) = (base.sim.fibs.of(rid), fibs.of(rid));
            if bf.len() != nf.len() {
                return None;
            }
            let mut set = BTreeSet::new();
            for (be, ne) in bf.entries().zip(nf.entries()) {
                if be.prefix != ne.prefix {
                    return None;
                }
                if !entry_remap_equal(be, ne, &remap[r]) {
                    set.insert(be.prefix);
                }
            }
            Some(set)
        })
        .collect();

    let hosts: Vec<HostId> = new_net.hosts_iter().map(|(id, _)| id).collect();
    // lookup_changed[d][r]: router r resolves destination host d's address
    // differently than the cached base (the only FIB question `trace`
    // asks). With an unchanged key set the match lands on the same prefix
    // as at convergence (`host_match`), so the diff set answers directly.
    let lookup_changed: Vec<Vec<bool>> = hosts
        .iter()
        .enumerate()
        .map(|(di, &h)| {
            let addr = new_net.host(h).addr;
            (0..n)
                .map(|r| match &changed_prefixes[r] {
                    Some(set) if set.is_empty() => false,
                    Some(set) => match base.host_match[di][r] {
                        Some(k) => set.contains(&k),
                        None => false,
                    },
                    None => {
                        let rid = RouterId(r as u32);
                        !lookup_remap_equal(
                            base.sim.fibs.of(rid).lookup(addr),
                            fibs.of(rid).lookup(addr),
                            &remap[r],
                        )
                    }
                })
                .collect()
        })
        .collect();
    let dst_untouched: Vec<bool> = lookup_changed
        .iter()
        .map(|row| row.iter().all(|&c| !c))
        .collect();

    // The cached data plane covers exactly the ordered host pairs; anything
    // else means the base simulation predates an invariant change.
    if base.sim.dataplane.len() != hosts.len() * hosts.len().saturating_sub(1) {
        return Ok(None);
    }
    if base.pair_meta.len() != base.sim.dataplane.len() {
        return Ok(None);
    }
    // Per host: whether its attachment survived the perturbation, and
    // whether it was unattached to begin with (hoisted out of the pair
    // loop — both depend only on the endpoint, not the pair).
    let att_unchanged: Vec<bool> = hosts
        .iter()
        .map(|&h| attachment_unchanged(base_net, &new_net, &remap, h))
        .collect();
    let unattached: Vec<bool> = hosts
        .iter()
        .map(|&h| base_net.host(h).attachment.is_none())
        .collect();

    Ok(Some(ShutdownPlan {
        new_net,
        fibs,
        hosts,
        lookup_changed,
        dst_untouched,
        att_unchanged,
        unattached,
        ospf_prefixes_total,
        ospf_prefixes_recomputed,
        rip_warm_started,
        bgp_reused,
    }))
}

/// Materializes a [`ShutdownPlan`] into the full perturbed [`Simulation`].
/// Returns `None` when the cached data plane's key order disagrees with
/// the host enumeration (defensive; the caller falls back to a cold run).
///
/// Starts from the cached data plane (an O(pairs) clone of shared path
/// sets) and overwrites only the pairs that must be re-traced. Host ids
/// and data-plane keys share the same (hostname-sorted) order, so the
/// cached stream zips against the ordered-pair enumeration — the name
/// checks keep this exact.
///
/// Pair reuse soundness ([`ShutdownPlan::pair_reusable`], in check order):
/// * endpoint attachments must have survived (the trace consults them
///   before any FIB);
/// * an unattached source is an immediate blackhole regardless of any
///   FIB, so its cached trace replays exactly;
/// * a fully untouched destination (no router resolves it differently)
///   replays the DFS move for move — blackholes, loops, and ECMP
///   truncation included;
/// * otherwise only clean, non-truncated walks are determined by the
///   lookups of exactly the routers on their recorded paths
///   (`pair_meta`, precomputed at convergence), and reuse requires all
///   of those lookups unchanged.
pub(crate) fn materialize(
    base: &ConvergedSim,
    plan: ShutdownPlan,
) -> Option<(Simulation, DeltaStats)> {
    let mut dp = base.sim.dataplane.clone();
    let mut pairs_total = 0usize;
    let mut pairs_recomputed = 0usize;
    let mut cached_pairs = base.sim.dataplane.pairs();
    for (si, &src) in plan.hosts.iter().enumerate() {
        let src_name = &plan.new_net.host(src).name;
        for (di, &dst) in plan.hosts.iter().enumerate() {
            if si == di {
                continue;
            }
            let idx = pairs_total;
            pairs_total += 1;
            let ((sname, dname), _ps) = cached_pairs.next()?;
            if sname != src_name || dname != &plan.new_net.host(dst).name {
                return None;
            }
            if !plan.pair_reusable(base, si, di, idx) {
                pairs_recomputed += 1;
                let traced = trace(&plan.new_net, &plan.fibs, src, dst);
                dp.insert(sname.clone(), dname.clone(), traced);
            }
        }
    }

    let stats = plan.stats(pairs_total, pairs_recomputed);
    let sim = Simulation {
        net: plan.new_net,
        fibs: plan.fibs,
        dataplane: dp,
    };
    Some((sim, stats))
}

/// Whether the cached IGP router-path matrix equals the fresh one after
/// interface renumbering (router ids are stable, so only hop interface
/// indices need mapping).
fn router_paths_equal_after_remap(
    base: &RouterPaths,
    new: &RouterPaths,
    remap: &[Vec<Option<usize>>],
) -> bool {
    if base.dist != new.dist {
        return false;
    }
    base.next_hops
        .iter()
        .zip(new.next_hops.iter())
        .enumerate()
        .all(|(a, (brow, nrow))| {
            brow.iter().zip(nrow.iter()).all(|(bhops, nhops)| {
                bhops.len() == nhops.len()
                    && bhops
                        .iter()
                        .zip(nhops.iter())
                        .all(|(&(ii, v), &(nii, nv))| remap[a][ii] == Some(nii) && v == nv)
            })
        })
}

/// Whether removing this interface can change the BGP computation at all:
/// it terminates a session (its address is some router's configured peer
/// address), carries a session (its prefix covers a peer address on its
/// own router, i.e. it is — or shadows — a session's `local_iface`), or
/// backs a locally originated prefix.
fn iface_bgp_relevant(net: &SimNetwork, r: usize, bi: usize) -> bool {
    let iface = &net.routers[r].ifaces[bi];
    if net
        .routers
        .iter()
        .any(|router| router.sessions.iter().any(|s| s.peer_addr == iface.addr))
    {
        return true;
    }
    if net.routers[r]
        .sessions
        .iter()
        .any(|s| iface.prefix.contains_addr(s.peer_addr))
    {
        return true;
    }
    net.routers[r].bgp_networks.contains(&iface.prefix)
}

/// Renumbers interface indices inside cached BGP routes; `None` when any
/// route references a removed interface (then reuse is off the table).
fn remap_bgp_routes(base: &BgpRoutes, remap: &[Vec<Option<usize>>]) -> Option<BgpRoutes> {
    let mut out = Vec::with_capacity(base.len());
    for (r, table) in base.iter().enumerate() {
        let mut mapped = BTreeMap::new();
        for (prefix, route) in table {
            let mut next_hops = Vec::with_capacity(route.next_hops.len());
            for &(ii, v) in &route.next_hops {
                next_hops.push((remap[r][ii]?, v));
            }
            let mut route = route.clone();
            route.next_hops = next_hops;
            mapped.insert(*prefix, route);
        }
        out.push(mapped);
    }
    Some(out)
}

/// Whether two FIB entries are equal after interface renumbering.
fn entry_remap_equal(be: &FibEntry, ne: &FibEntry, remap: &[Option<usize>]) -> bool {
    be.prefix == ne.prefix
        && be.source == ne.source
        && be.next_hops.len() == ne.next_hops.len()
        && be
            .next_hops
            .iter()
            .zip(ne.next_hops.iter())
            .all(|(bh, nh)| match (bh, nh) {
                (NextHop::Deliver { iface: bi }, NextHop::Deliver { iface: ni }) => {
                    remap[*bi] == Some(*ni)
                }
                (
                    NextHop::Forward {
                        via_iface: bi,
                        router: br,
                        session_peer: bp,
                    },
                    NextHop::Forward {
                        via_iface: ni,
                        router: nr,
                        session_peer: np,
                    },
                ) => remap[*bi] == Some(*ni) && br == nr && bp == np,
                _ => false,
            })
}

/// Whether two longest-prefix-match results agree after renumbering: both
/// miss, or both hit the same entry modulo interface indices.
fn lookup_remap_equal(
    base: Option<&FibEntry>,
    new: Option<&FibEntry>,
    remap: &[Option<usize>],
) -> bool {
    match (base, new) {
        (None, None) => true,
        (Some(be), Some(ne)) => entry_remap_equal(be, ne, remap),
        _ => false,
    }
}

/// Whether a host's attachment survived the shutdowns unchanged (modulo
/// interface renumbering).
fn attachment_unchanged(
    base_net: &SimNetwork,
    new_net: &SimNetwork,
    remap: &[Vec<Option<usize>>],
    h: HostId,
) -> bool {
    match (base_net.host(h).attachment, new_net.host(h).attachment) {
        (None, None) => true,
        (Some((br, bi)), Some((nr, ni))) => br == nr && remap[br.0 as usize][bi] == Some(ni),
        _ => false,
    }
}
