//! Incremental simulation engine: a content-addressed cache of converged
//! simulations plus delta recomputation for fault perturbations.
//!
//! ConfMask's verification loop and the fault-scenario engine repeatedly
//! simulate networks that differ from an already-simulated baseline by one
//! or two administratively-shut interfaces. This crate makes those repeat
//! simulations cheap without ever changing their answers:
//!
//! * [`DeltaEngine::converged`] memoizes full simulations behind a stable
//!   structural hash of the configurations ([`hash::structural_hash`]),
//!   with an LRU bound and collision-proof equality checks.
//! * [`DeltaEngine::simulate_perturbed`] re-simulates a perturbed copy of
//!   a cached baseline, recomputing only what the perturbation touched —
//!   see [`delta`]'s module docs for the per-protocol soundness argument.
//!   Results are **byte-identical** to a cold [`confmask_sim::simulate`]:
//!   any perturbation outside the supported class falls back to a full
//!   simulation, explicitly and observably (`sim.delta.full_fallbacks`).
//! * [`DeltaEngine::run_scenario`] is a drop-in replacement for
//!   [`confmask_sim::fault::run_scenario`] that routes the post-failure
//!   simulation through the delta engine.
//!
//! The engine is `Sync`; one [`DeltaEngine::global`] instance is shared
//! per process so the serve daemon's workers and a pipeline's retry
//! attempts hit the same cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod delta;
pub mod hash;
pub mod sweep;

pub use cache::SimCache;
pub use sweep::ScenarioSweep;

use confmask_config::NetworkConfigs;
use confmask_net_types::{Ipv4Prefix, RouterId};
use confmask_sim::dataplane::DataPlane;
use confmask_sim::fault::{
    classify_pair_with, physical_components, revert_shutdowns, DegradationClass, FailureScenario,
    ScenarioOutcome,
};
use confmask_sim::{ControlState, PathSet, SimError, Simulation};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default capacity of the per-process global cache: big enough for every
/// baseline a verification job juggles (original, anonymized, masked — per
/// concurrent job), small enough to bound memory on large networks.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// A converged simulation pinned to the exact configurations (and cache
/// key) that produced it.
#[derive(Debug, Clone)]
pub struct ConvergedSim {
    /// The structural hash of `configs` (the cache key).
    pub key: u128,
    /// The configurations that were simulated.
    pub configs: NetworkConfigs,
    /// The converged simulation result.
    pub sim: Simulation,
    /// The converged per-protocol control-plane state (delta inputs).
    pub state: ControlState,
    /// Per (host, router): the FIB prefix the router's longest-prefix
    /// match resolves that host's address to (`None` = no route).
    /// Precomputed once so every delta run can tell which lookups a
    /// perturbation changed without re-running longest-prefix matches.
    pub host_match: Vec<Vec<Option<Ipv4Prefix>>>,
    /// Per data-plane pair (in [`DataPlane::pairs`] order): the deduped
    /// router ids its recorded paths traverse, or `None` for a walk whose
    /// shape the recorded paths do not fully determine (blackholed,
    /// looping, empty, or ECMP-truncated). Precomputed so delta runs test
    /// pair reusability against a bool mask instead of re-walking path
    /// name lists.
    pub(crate) pair_meta: Vec<Option<Vec<u32>>>,
    /// Process-unique id, the identity key of the engine's scenario
    /// scratch buffer (never reused, unlike a structural hash).
    pub(crate) uid: u64,
}

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// What a delta simulation reused versus recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaStats {
    /// The perturbation was unsupported (or an invariant check failed) and
    /// a full cold simulation ran instead.
    pub full_fallback: bool,
    /// The perturbed configs were identical to the base; the cached
    /// simulation was returned as-is.
    pub identical: bool,
    /// Destination prefixes in the network.
    pub ospf_prefixes_total: usize,
    /// Destination prefixes whose SPF re-ran.
    pub ospf_prefixes_recomputed: usize,
    /// Whether RIP warm-started from the cached fixpoint.
    pub rip_warm_started: bool,
    /// Whether the cached BGP routes were reused wholesale.
    pub bgp_reused: bool,
    /// Ordered host pairs in the network.
    pub pairs_total: usize,
    /// Ordered host pairs that were re-traced.
    pub pairs_recomputed: usize,
}

impl DeltaStats {
    pub(crate) fn identical() -> Self {
        DeltaStats {
            full_fallback: false,
            identical: true,
            ospf_prefixes_total: 0,
            ospf_prefixes_recomputed: 0,
            rip_warm_started: false,
            bgp_reused: false,
            pairs_total: 0,
            pairs_recomputed: 0,
        }
    }

    pub(crate) fn full() -> Self {
        DeltaStats {
            full_fallback: true,
            identical: false,
            ospf_prefixes_total: 0,
            ospf_prefixes_recomputed: 0,
            rip_warm_started: false,
            bgp_reused: false,
            pairs_total: 0,
            pairs_recomputed: 0,
        }
    }

    /// Fraction of per-prefix SPFs and per-pair traces that re-ran:
    /// 0.0 for an identical reuse, 1.0 for a full fallback, in between
    /// for a genuine delta.
    pub fn recompute_fraction(&self) -> f64 {
        if self.full_fallback {
            return 1.0;
        }
        if self.identical {
            return 0.0;
        }
        let done = self.ospf_prefixes_recomputed + self.pairs_recomputed;
        let total = (self.ospf_prefixes_total + self.pairs_total).max(1);
        done as f64 / total as f64
    }
}

/// Reusable per-worker scratch for fault sweeps: one baseline's configs,
/// kept around so consecutive scenarios against the same baseline apply
/// and revert shutdown flags in place instead of cloning the full
/// [`NetworkConfigs`] each time. Keyed by [`ConvergedSim`]'s
/// process-unique id. Purely a cache: it never influences results, so
/// parallel sweeps handing each worker its own scratch stay
/// byte-identical to a sequential run.
#[derive(Default)]
pub struct ScenarioScratch(Option<(u64, NetworkConfigs)>);

/// The incremental simulation engine: a simulation cache plus the delta
/// recomputation entry points.
pub struct DeltaEngine {
    cache: SimCache,
    /// Shared scenario scratch for [`DeltaEngine::run_scenario`] callers
    /// without their own; contended access falls back to cloning.
    scratch: Mutex<ScenarioScratch>,
}

static GLOBAL: OnceLock<DeltaEngine> = OnceLock::new();

impl DeltaEngine {
    /// Creates an engine with its own cache of the given capacity.
    pub fn new(capacity: usize) -> Self {
        DeltaEngine {
            cache: SimCache::new(capacity),
            scratch: Mutex::new(ScenarioScratch::default()),
        }
    }

    /// The per-process shared engine ([`DEFAULT_CACHE_CAPACITY`] entries).
    pub fn global() -> &'static DeltaEngine {
        GLOBAL.get_or_init(|| DeltaEngine::new(DEFAULT_CACHE_CAPACITY))
    }

    /// Number of cached converged simulations.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Simulates `configs` (or returns the cached converged simulation).
    ///
    /// The simulation runs *outside* the cache lock, so concurrent workers
    /// converging different networks do not serialize; two workers racing
    /// on the same network at worst both simulate it (last insert wins —
    /// both results are identical by determinism).
    pub fn converged(&self, configs: &NetworkConfigs) -> Result<Arc<ConvergedSim>, SimError> {
        let key = hash::structural_hash(configs);
        if let Some(hit) = self.cache.get(key, configs) {
            return Ok(hit);
        }
        let (sim, state) = confmask_sim::simulate_with_state(configs)?;
        let host_match = sim
            .net
            .hosts_iter()
            .map(|(_, h)| {
                (0..sim.net.router_count())
                    .map(|r| {
                        sim.fibs
                            .of(RouterId(r as u32))
                            .lookup(h.addr)
                            .map(|e| e.prefix)
                    })
                    .collect()
            })
            .collect();
        let name_to_id: BTreeMap<&str, u32> = sim
            .net
            .routers
            .iter()
            .enumerate()
            .map(|(r, router)| (router.name.as_str(), r as u32))
            .collect();
        let pair_meta = sim
            .dataplane
            .pairs()
            .map(|(_, ps)| {
                if ps.blackhole
                    || ps.has_loop
                    || ps.paths.is_empty()
                    || ps.paths.len() >= confmask_sim::dataplane::MAX_PATHS_PER_PAIR
                {
                    return None;
                }
                let mut on_path = Vec::new();
                for path in &ps.paths {
                    // path = [src_host, r_1, ..., r_k, dst_host]
                    for name in &path[1..path.len().saturating_sub(1)] {
                        on_path.push(*name_to_id.get(name.as_str())?);
                    }
                }
                on_path.sort_unstable();
                on_path.dedup();
                Some(on_path)
            })
            .collect();
        let converged = Arc::new(ConvergedSim {
            key,
            configs: configs.clone(),
            sim,
            state,
            host_match,
            pair_meta,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        });
        self.cache.insert(Arc::clone(&converged));
        Ok(converged)
    }

    /// Simulates a perturbed copy of a cached baseline, incrementally where
    /// the perturbation allows it. The returned [`Simulation`] is
    /// byte-identical to `simulate(perturbed)`; [`DeltaStats`] reports what
    /// was reused.
    pub fn simulate_perturbed(
        &self,
        base: &ConvergedSim,
        perturbed: &NetworkConfigs,
    ) -> Result<(Simulation, DeltaStats), SimError> {
        self.simulate_perturbed_inner(base, perturbed, false)
    }

    /// [`DeltaEngine::simulate_perturbed`], optionally skipping the
    /// config-diff walk when the caller itself produced `perturbed` by
    /// applying shutdowns to `base.configs` (the scenario runner), which
    /// proves the diff class by construction.
    fn simulate_perturbed_inner(
        &self,
        base: &ConvergedSim,
        perturbed: &NetworkConfigs,
        known_shutdowns: bool,
    ) -> Result<(Simulation, DeltaStats), SimError> {
        let sp = confmask_obs::span("sim.delta.sim");
        confmask_obs::counter_add("sim.delta.sims", 1);
        let (sim, stats) = if known_shutdowns {
            delta::simulate_delta_shutdowns(base, perturbed)?
        } else {
            delta::simulate_delta(base, perturbed)?
        };
        sp.finish();
        record_stats(&stats);
        Ok((sim, stats))
    }

    /// Drop-in replacement for [`confmask_sim::fault::run_scenario`] that
    /// simulates the failed network through the delta engine. Produces the
    /// identical [`ScenarioOutcome`] (same classification over the same
    /// baseline pairs), since the post-failure simulation is byte-identical.
    pub fn run_scenario(
        &self,
        base: &ConvergedSim,
        baseline: &DataPlane,
        scenario: &FailureScenario,
    ) -> Result<ScenarioOutcome, SimError> {
        // Fast path: flip shutdown flags on the engine's scratch copy of
        // the baseline configs and revert them afterwards, instead of
        // cloning the whole NetworkConfigs per scenario. Contention (or a
        // poisoned lock) falls back to the plain clone.
        if let Ok(mut slot) = self.scratch.try_lock() {
            return self.run_scenario_scratch(base, baseline, scenario, &mut slot);
        }
        let _sp = confmask_obs::span("sim.fault.scenario");
        confmask_obs::counter_add("sim.fault.scenarios", 1);
        confmask_obs::debug!("sim.delta", "injecting scenario {scenario}");
        let failed_configs = scenario.apply(&base.configs)?;
        self.scenario_outcome(base, baseline, scenario, &failed_configs)
    }

    /// [`DeltaEngine::run_scenario`] with a caller-owned scratch buffer, so
    /// each worker of a parallel sweep reuses its own configs copy instead
    /// of contending on the engine's shared one. The outcome is identical
    /// to [`DeltaEngine::run_scenario`] for any scratch state.
    pub fn run_scenario_scratch(
        &self,
        base: &ConvergedSim,
        baseline: &DataPlane,
        scenario: &FailureScenario,
        scratch: &mut ScenarioScratch,
    ) -> Result<ScenarioOutcome, SimError> {
        let _sp = confmask_obs::span("sim.fault.scenario");
        confmask_obs::counter_add("sim.fault.scenarios", 1);
        confmask_obs::debug!("sim.delta", "injecting scenario {scenario}");
        if scratch.0.as_ref().is_none_or(|(uid, _)| *uid != base.uid) {
            scratch.0 = Some((base.uid, base.configs.clone()));
        }
        let configs = &mut scratch.0.as_mut().expect("scratch was just filled").1;
        let flipped = scenario.apply_in_place(configs)?;
        let out = self.scenario_outcome(base, baseline, scenario, configs);
        revert_shutdowns(configs, &flipped);
        out
    }

    /// The streaming sweep over a cached baseline: scenarios fan out
    /// across the shared executor, each folding into a
    /// [`confmask_sim::ScenarioDigest`] — see [`ScenarioSweep`]. This is
    /// the replacement for the removed collect-then-reduce
    /// `run_scenarios`, which retained a full [`ScenarioOutcome`] per
    /// scenario for the whole batch.
    pub fn sweep<'a>(
        &'a self,
        base: &'a ConvergedSim,
        baseline: &DataPlane,
    ) -> ScenarioSweep<'a> {
        ScenarioSweep::new(self, base, baseline)
    }

    /// Simulates the already-failed configs through the delta engine and
    /// classifies every baseline pair against the result.
    fn scenario_outcome(
        &self,
        base: &ConvergedSim,
        baseline: &DataPlane,
        scenario: &FailureScenario,
        failed_configs: &NetworkConfigs,
    ) -> Result<ScenarioOutcome, SimError> {
        let (sim, _stats) = self.simulate_perturbed_inner(base, failed_configs, true)?;
        // Physical connectivity only arbitrates dropped traffic, so the
        // component flood fill runs lazily — scenarios where no baseline
        // pair drops skip it entirely.
        let comp: OnceCell<BTreeMap<String, usize>> = OnceCell::new();
        let empty = PathSet {
            blackhole: true,
            ..PathSet::default()
        };
        // Merge-join against the perturbed data plane: both iterate in
        // (src, dst) order and the baseline's pairs are a subset, so the
        // per-pair map lookups of the cold path collapse into one pass.
        // Comparing shared handles lets every pair whose path set the
        // delta run reused from this very baseline classify as Unchanged
        // without a deep path comparison.
        let mut after_pairs = sim.dataplane.shared_pairs().peekable();
        let mut rows = Vec::with_capacity(baseline.len());
        for ((src, dst), before) in baseline.shared_pairs() {
            let after = loop {
                match after_pairs.peek() {
                    Some((k, _)) if (&k.0, &k.1) < (src, dst) => {
                        after_pairs.next();
                    }
                    Some((k, ps)) if (&k.0, &k.1) == (src, dst) => break Some(*ps),
                    _ => break None,
                }
            };
            let class = match after {
                Some(after) if Arc::ptr_eq(after, before) => DegradationClass::Unchanged,
                _ => {
                    let after = after.map_or(&empty, |a| a.as_ref());
                    classify_pair_with(before, after, || {
                        let comp = comp.get_or_init(|| physical_components(failed_configs));
                        match (comp.get(src.as_str()), comp.get(dst.as_str())) {
                            (Some(a), Some(b)) => a == b,
                            _ => false,
                        }
                    })
                }
            };
            rows.push(((src.clone(), dst.clone()), class));
        }
        Ok(ScenarioOutcome {
            scenario: scenario.clone(),
            // `rows` is already (src, dst)-sorted: bulk-build the map
            // instead of 3k rebalancing inserts.
            classes: BTreeMap::from_iter(rows),
        })
    }
}

/// Records one delta simulation's [`DeltaStats`] into the `sim.delta.*`
/// metrics — shared by [`DeltaEngine::simulate_perturbed`] and the
/// streaming digest path, so both report reuse identically.
pub(crate) fn record_stats(stats: &DeltaStats) {
    if stats.full_fallback {
        confmask_obs::counter_add("sim.delta.full_fallbacks", 1);
    }
    if stats.identical {
        confmask_obs::counter_add("sim.delta.identical_reuses", 1);
    }
    if stats.rip_warm_started {
        confmask_obs::counter_add("sim.delta.rip_warm_starts", 1);
    }
    confmask_obs::counter_add(
        if stats.bgp_reused {
            "sim.delta.bgp_reuses"
        } else {
            "sim.delta.bgp_recomputes"
        },
        u64::from(!stats.identical && !stats.full_fallback),
    );
    confmask_obs::counter_add(
        "sim.delta.ospf_prefixes_recomputed",
        stats.ospf_prefixes_recomputed as u64,
    );
    confmask_obs::counter_add(
        "sim.delta.ospf_prefixes_reused",
        (stats.ospf_prefixes_total - stats.ospf_prefixes_recomputed) as u64,
    );
    confmask_obs::counter_add("sim.delta.pairs_recomputed", stats.pairs_recomputed as u64);
    confmask_obs::counter_add(
        "sim.delta.pairs_reused",
        (stats.pairs_total - stats.pairs_recomputed) as u64,
    );
    confmask_obs::observe(
        "sim.delta.recompute_fraction_pct",
        (stats.recompute_fraction() * 100.0).round() as u64,
    );
}

/// Registers every `sim.*`, `sim.cache.*`, and `sim.delta.*` metric at
/// zero so the metric set is stable from process start (same
/// register-at-zero rule the rest of the pipeline follows): scrapes and
/// reports see the keys before the first simulation, and a cache that is
/// never hit still exports `sim.cache.hits 0` rather than omitting the
/// series.
pub fn register_metrics() {
    confmask_sim::register_metrics();
    for name in [
        "sim.cache.hits",
        "sim.cache.misses",
        "sim.cache.evictions",
        "sim.delta.sims",
        "sim.delta.full_fallbacks",
        "sim.delta.identical_reuses",
        "sim.delta.rip_warm_starts",
        "sim.delta.bgp_reuses",
        "sim.delta.bgp_recomputes",
        "sim.delta.ospf_prefixes_recomputed",
        "sim.delta.ospf_prefixes_reused",
        "sim.delta.pairs_recomputed",
        "sim.delta.pairs_reused",
    ] {
        confmask_obs::counter_add(name, 0);
    }
    confmask_obs::gauge_set("sim.cache.entries", 0.0);
    confmask_obs::histogram_register("sim.delta.recompute_fraction_pct");
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig};
    use confmask_sim::fault::{enumerate_single_link_failures, run_scenario, Fault};
    use confmask_sim::simulate;

    fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
        HostConfig {
            hostname: name.into(),
            iface_name: "eth0".into(),
            address: (addr.parse().unwrap(), 24),
            gateway: gw.parse().unwrap(),
            extra: vec![],
            added: false,
        }
    }

    /// Triangle r1–r2–r3 (all OSPF), hosts on r1 and r2.
    fn triangle() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.1.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.2.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.2.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r3 = parse_router(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n!\n",
        )
        .unwrap();
        NetworkConfigs::new(
            [r1, r2, r3],
            [
                host("h1", "10.1.1.100", "10.1.1.1"),
                host("h2", "10.1.2.100", "10.1.2.1"),
            ],
        )
    }

    fn assert_sims_equal(a: &Simulation, b: &Simulation) {
        assert_eq!(a.fibs.per_router.len(), b.fibs.per_router.len());
        for (fa, fb) in a.fibs.per_router.iter().zip(b.fibs.per_router.iter()) {
            assert_eq!(
                fa.entries().collect::<Vec<_>>(),
                fb.entries().collect::<Vec<_>>()
            );
        }
        assert_eq!(a.dataplane, b.dataplane);
    }

    #[test]
    fn converged_caches_by_content() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let a = engine.converged(&cfgs).unwrap();
        let b = engine.converged(&cfgs.clone()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must be a cache hit");
        assert_eq!(engine.cached(), 1);
    }

    #[test]
    fn identical_perturbation_reuses_wholesale() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let (sim, stats) = engine.simulate_perturbed(&base, &cfgs).unwrap();
        assert!(stats.identical);
        assert_eq!(stats.recompute_fraction(), 0.0);
        assert_sims_equal(&sim, &base.sim);
    }

    #[test]
    fn every_single_link_failure_matches_cold_simulation() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        for scenario in enumerate_single_link_failures(&cfgs) {
            let failed = scenario.apply(&cfgs).unwrap();
            let cold = simulate(&failed).unwrap();
            let (deltaed, stats) = engine.simulate_perturbed(&base, &failed).unwrap();
            assert!(
                !stats.full_fallback,
                "{scenario}: shutdowns must not fall back"
            );
            assert_sims_equal(&deltaed, &cold);
        }
    }

    #[test]
    fn run_scenario_matches_the_cold_engine() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let baseline = base.sim.dataplane.clone();
        for scenario in enumerate_single_link_failures(&cfgs) {
            let cold = run_scenario(&cfgs, &baseline, &scenario).unwrap();
            let warm = engine.run_scenario(&base, &baseline, &scenario).unwrap();
            assert_eq!(cold, warm, "{scenario}");
        }
    }

    #[test]
    fn router_down_only_recomputes_touched_state() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        let scenario = FailureScenario::single(Fault::RouterDown {
            router: "r3".into(),
        });
        let failed = scenario.apply(&cfgs).unwrap();
        let cold = simulate(&failed).unwrap();
        let (deltaed, stats) = engine.simulate_perturbed(&base, &failed).unwrap();
        assert!(!stats.full_fallback);
        assert_sims_equal(&deltaed, &cold);
        // r3 carries no baseline traffic between h1 and h2 and hosts no
        // LAN: the h1↔h2 pairs reuse their cached traces.
        assert!(stats.pairs_recomputed < stats.pairs_total);
    }

    #[test]
    fn unsupported_perturbations_fall_back_to_full_simulation() {
        let engine = DeltaEngine::new(4);
        let cfgs = triangle();
        let base = engine.converged(&cfgs).unwrap();
        // A cost edit is not a shutdown: must fall back, and still match.
        let mut edited = cfgs.clone();
        edited.routers.get_mut("r1").unwrap().interfaces[0].ospf_cost = Some(3);
        let cold = simulate(&edited).unwrap();
        let (deltaed, stats) = engine.simulate_perturbed(&base, &edited).unwrap();
        assert!(stats.full_fallback);
        assert_eq!(stats.recompute_fraction(), 1.0);
        assert_sims_equal(&deltaed, &cold);
        // Un-shutdown (bring-up) is an addition: also a fallback.
        let down = FailureScenario::single(Fault::LinkDown {
            a: "r1".into(),
            b: "r2".into(),
            added: false,
        })
        .apply(&cfgs)
        .unwrap();
        let down_base = engine.converged(&down).unwrap();
        let (_, stats) = engine.simulate_perturbed(&down_base, &cfgs).unwrap();
        assert!(stats.full_fallback);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = DeltaEngine::new(2);
        let a = triangle();
        let mut b = triangle();
        b.routers.get_mut("r1").unwrap().interfaces[0].ospf_cost = Some(2);
        let mut c = triangle();
        c.routers.get_mut("r1").unwrap().interfaces[0].ospf_cost = Some(4);
        engine.converged(&a).unwrap();
        engine.converged(&b).unwrap();
        engine.converged(&a).unwrap(); // refresh a
        engine.converged(&c).unwrap(); // evicts b
        assert_eq!(engine.cached(), 2);
        let before = engine.cached();
        engine.converged(&a).unwrap(); // still cached: no growth
        assert_eq!(engine.cached(), before);
    }
}
