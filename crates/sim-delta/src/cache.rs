//! Bounded, content-addressed cache of converged simulations.
//!
//! Keys are [`structural_hash`](crate::hash::structural_hash) values;
//! every hit additionally compares the stored [`NetworkConfigs`] for
//! equality, so a hash collision can never serve the wrong simulation —
//! it merely degrades to a miss. Eviction is least-recently-used over a
//! fixed capacity (converged simulations of large networks are big; the
//! pipeline only ever needs the handful of baselines it is currently
//! sweeping faults over).
//!
//! Larger caches are **sharded** (lock-striped) so that concurrent fault
//! sweep workers and serve jobs do not serialize on one LRU mutex: the
//! structural hash picks the shard, each shard runs its own LRU over its
//! slice of the capacity. Small caches (capacity < 8) keep a single shard
//! — exact global LRU semantics — because striping a 2-entry cache would
//! change which entry an eviction removes. The (potentially deep) configs
//! equality check of a hit runs *outside* the shard lock; only the map
//! probe and the recency bump are under it.

use crate::ConvergedSim;
use confmask_config::NetworkConfigs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shard count for caches large enough to stripe.
const SHARDS: usize = 8;

/// A bounded LRU cache from structural hash to converged simulation.
pub struct SimCache {
    shards: Vec<Mutex<Shard>>,
}

struct Shard {
    map: HashMap<u128, Entry>,
    tick: u64,
    capacity: usize,
}

struct Entry {
    value: Arc<ConvergedSim>,
    last_used: u64,
}

impl SimCache {
    /// Creates a cache holding at most `capacity` simulations
    /// (a zero capacity is clamped to one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n = if capacity < SHARDS { 1 } else { SHARDS };
        let shards = (0..n)
            .map(|i| {
                // Distribute the capacity across shards, remainder to the
                // first ones, so the total bound is exactly `capacity`.
                let cap = capacity / n + usize::from(i < capacity % n);
                Mutex::new(Shard {
                    map: HashMap::new(),
                    tick: 0,
                    capacity: cap,
                })
            })
            .collect();
        SimCache { shards }
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        let mix = (key as u64) ^ ((key >> 64) as u64);
        &self.shards[(mix as usize) % self.shards.len()]
    }

    /// Looks up a converged simulation, verifying the stored configs are
    /// actually equal to `configs` (collision safety). The equality check
    /// runs outside the shard lock; the candidate's recency is bumped on
    /// the probe (a colliding candidate gets a spurious bump — harmless,
    /// collisions only ever degrade to misses).
    pub fn get(&self, key: u128, configs: &NetworkConfigs) -> Option<Arc<ConvergedSim>> {
        let candidate = {
            let mut shard = self.shard(key).lock().expect("sim cache poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.get_mut(&key).map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.value)
            })
        };
        match candidate {
            Some(hit) if hit.configs == *configs => {
                confmask_obs::counter_add("sim.cache.hits", 1);
                Some(hit)
            }
            _ => {
                confmask_obs::counter_add("sim.cache.misses", 1);
                None
            }
        }
    }

    /// Inserts a converged simulation, evicting the least-recently-used
    /// entry of its shard when that shard is at capacity.
    pub fn insert(&self, value: Arc<ConvergedSim>) {
        let key = value.key;
        {
            let mut shard = self.shard(key).lock().expect("sim cache poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            if !shard.map.contains_key(&key) && shard.map.len() >= shard.capacity {
                if let Some(oldest) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                {
                    shard.map.remove(&oldest);
                    confmask_obs::counter_add("sim.cache.evictions", 1);
                }
            }
            shard.map.insert(
                key,
                Entry {
                    value,
                    last_used: tick,
                },
            );
        }
        confmask_obs::gauge_set("sim.cache.entries", self.len() as f64);
    }

    /// Number of cached simulations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("sim cache poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
