//! Bounded, content-addressed cache of converged simulations.
//!
//! Keys are [`structural_hash`](crate::hash::structural_hash) values;
//! every hit additionally compares the stored [`NetworkConfigs`] for
//! equality, so a hash collision can never serve the wrong simulation —
//! it merely degrades to a miss. Eviction is least-recently-used over a
//! fixed capacity (converged simulations of large networks are big; the
//! pipeline only ever needs the handful of baselines it is currently
//! sweeping faults over).

use crate::ConvergedSim;
use confmask_config::NetworkConfigs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A bounded LRU cache from structural hash to converged simulation.
pub struct SimCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<u128, Entry>,
    tick: u64,
}

struct Entry {
    value: Arc<ConvergedSim>,
    last_used: u64,
}

impl SimCache {
    /// Creates a cache holding at most `capacity` simulations
    /// (a zero capacity is clamped to one).
    pub fn new(capacity: usize) -> Self {
        SimCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a converged simulation, verifying the stored configs are
    /// actually equal to `configs` (collision safety).
    pub fn get(&self, key: u128, configs: &NetworkConfigs) -> Option<Arc<ConvergedSim>> {
        let mut inner = self.inner.lock().expect("sim cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) if entry.value.configs == *configs => {
                entry.last_used = tick;
                confmask_obs::counter_add("sim.cache.hits", 1);
                Some(Arc::clone(&entry.value))
            }
            _ => {
                confmask_obs::counter_add("sim.cache.misses", 1);
                None
            }
        }
    }

    /// Inserts a converged simulation, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&self, value: Arc<ConvergedSim>) {
        let mut inner = self.inner.lock().expect("sim cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let key = value.key;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
                confmask_obs::counter_add("sim.cache.evictions", 1);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        confmask_obs::gauge_set("sim.cache.entries", inner.map.len() as f64);
    }

    /// Number of cached simulations.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sim cache poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
