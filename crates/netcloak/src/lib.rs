//! A NetCloak-style baseline: anonymization by *dynamic topology
//! expansion* (arXiv 2504.14959).
//!
//! Where ConfMask hides a topology by adding fake **links** between real
//! routers (and then spends most of its runtime repairing the data plane
//! with route filters, §5.2), NetCloak hides it by *growing* the network:
//! new **cloak routers** — complete, protocol-consistent configuration
//! files generated to blend in with the human-written ones — are inserted
//! until the real routers' degree sequence is k-anonymous among the
//! expanded population. The key scalability claim is that expansion needs
//! **no iterative data-plane repair**: cloak links carry a link-state cost
//! strictly greater than half the original network's cost diameter, so any
//! path through a cloak router is strictly more expensive than every
//! original path and forwarding between real hosts is preserved *by
//! construction* (verified defensively against the simulator anyway).
//!
//! The expansion is sized by the privacy parameter `k`:
//!
//! 1. Liu–Terzi phase-1 over the real router degree sequence gives each
//!    real router a degree deficit (how many links it needs to join a
//!    k-anonymous degree group).
//! 2. Deficits are satisfied by links to cloak routers (never real–real
//!    links — the real subgraph is untouched, one of NetCloak's deviation
//!    points from ConfMask).
//! 3. At least `max(2, k)` cloak routers are created so the cloak
//!    population itself is a plausible crowd; a cloak–cloak ring plus an
//!    equalization pass keeps their degrees near-uniform, and each cloak
//!    router carries one liveness host so its links are never idle.
//!
//! Deviations from the paper (whose implementation is not public) are
//! documented in DESIGN.md §15: we reuse the workspace's config-patching
//! machinery for cloak-file generation, and we require a link-state IGP
//! (RIP's hop-count metric cannot express "expensive" cloak links, so
//! RIP networks are rejected).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use confmask_config::patch::{LineLedger, Patcher, PatchError};
use confmask_config::NetworkConfigs;
use confmask_net_types::PrefixAllocator;
use confmask_sim::{DataPlane, SimError};
use confmask_topology::extract::extract_topology;
use confmask_topology::kdegree::anonymize_degree_sequence;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Errors from topology expansion.
#[derive(Debug)]
pub enum NetCloakError {
    /// The input network failed to simulate (or the expanded one did —
    /// which would be a bug, not an input problem).
    Sim(SimError),
    /// Config patching failed while generating a cloak router.
    Patch(PatchError),
    /// Address space exhausted while allocating cloak links/LANs.
    Alloc(String),
    /// The input is outside NetCloak's supported envelope.
    Unsupported(String),
    /// Defensive verification caught a real host pair whose forwarding
    /// changed — expansion must never do that.
    NotPreserved(String),
}

impl std::fmt::Display for NetCloakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetCloakError::Sim(e) => write!(f, "netcloak simulation failed: {e}"),
            NetCloakError::Patch(e) => write!(f, "netcloak patch failed: {e}"),
            NetCloakError::Alloc(e) => write!(f, "netcloak allocation failed: {e}"),
            NetCloakError::Unsupported(e) => write!(f, "netcloak unsupported input: {e}"),
            NetCloakError::NotPreserved(e) => {
                write!(f, "netcloak expansion changed a real path: {e}")
            }
        }
    }
}

impl std::error::Error for NetCloakError {}

impl From<SimError> for NetCloakError {
    fn from(e: SimError) -> Self {
        NetCloakError::Sim(e)
    }
}

impl From<PatchError> for NetCloakError {
    fn from(e: PatchError) -> Self {
        NetCloakError::Patch(e)
    }
}

/// Result of a NetCloak expansion.
#[derive(Debug, Clone)]
pub struct NetCloakResult {
    /// The expanded configurations — real files untouched, cloak files
    /// added (all carrying the `added` provenance flag).
    pub configs: NetworkConfigs,
    /// Added-lines accounting for the cloak files.
    pub ledger: LineLedger,
    /// Names of the cloak routers created.
    pub cloak_routers: Vec<String>,
    /// Cloak links added, as name pairs (real–cloak and cloak–cloak).
    pub cloak_links: Vec<(String, String)>,
    /// Liveness hosts (one per cloak router).
    pub cloak_hosts: Vec<String>,
    /// The real hosts of the input network.
    pub real_hosts: BTreeSet<String>,
    /// Data plane of the original network.
    pub baseline_dataplane: DataPlane,
    /// Data plane of the expanded network (covers cloak hosts too).
    pub dataplane: DataPlane,
}

impl NetCloakResult {
    /// Whether every real host pair kept its exact path set (always true
    /// for a returned result — expansion verifies before returning).
    pub fn preserved(&self) -> bool {
        self.dataplane
            .equivalent_on(&self.baseline_dataplane, &self.real_hosts)
    }
}

/// Registers every `netcloak.*` metric at zero, so reports enumerate the
/// full key set whether or not an expansion ran.
pub fn register_metrics() {
    for name in [
        "netcloak.expansions",
        "netcloak.cloak_routers",
        "netcloak.cloak_links",
        "netcloak.cloak_hosts",
        "netcloak.deficit_links",
    ] {
        confmask_obs::counter_add(name, 0);
    }
}

/// A cloak link cost strictly greater than half the original cost
/// diameter: two cloak hops then strictly exceed every original path cost,
/// so no real-pair shortest path can ever route through a cloak router —
/// not even as an ECMP tie (ConfMask's `⌈Δ/2⌉` allows ties and repairs
/// them with filters; NetCloak has no repair stage, so it pays one extra
/// unit instead).
fn strict_stub_cost(sim: &confmask_sim::Simulation) -> u32 {
    let paths = confmask_sim::ospf::router_paths(&sim.net);
    let diameter = paths
        .dist
        .iter()
        .flatten()
        .copied()
        .filter(|&d| d != u64::MAX)
        .max()
        .unwrap_or(0);
    u32::try_from(diameter.div_ceil(2))
        .unwrap_or(u32::MAX - 1)
        .saturating_add(1)
}

/// Cloak names following the network's own naming convention: the most
/// common alphabetic prefix among real router names, numbered after the
/// real population.
fn blending_names(existing: &BTreeSet<String>, count: usize) -> Vec<String> {
    let stem = |name: &str| -> String {
        name.chars()
            .take_while(|c| c.is_alphabetic())
            .collect::<String>()
    };
    let mut freq: BTreeMap<String, usize> = BTreeMap::new();
    for name in existing {
        let s = stem(name);
        if !s.is_empty() {
            *freq.entry(s).or_insert(0) += 1;
        }
    }
    let prefix = freq
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(p, _)| p)
        .unwrap_or_else(|| "rtr".to_string());

    let mut names = Vec::with_capacity(count);
    let mut n = existing.len();
    while names.len() < count {
        let candidate = format!("{prefix}{n}");
        if !existing.contains(&candidate) && !names.contains(&candidate) {
            names.push(candidate);
        }
        n += 1;
    }
    names
}

/// The expansion plan: which real router attaches to which cloak router,
/// and which cloak pairs interconnect. Pure graph computation, no configs.
///
/// Cloak indices are global (`0..cloak_count`), but every cloak belongs to
/// exactly one AS: all its attachments and cloak–cloak links stay inside
/// that AS. A cloak bridging two ASes would merge their IGP domains and
/// open new routes between routers that previously only spoke BGP — the
/// one way expansion could silently change real forwarding.
struct ExpansionPlan {
    cloak_count: usize,
    /// Real→cloak attachment links, as (real name, cloak index).
    attach: Vec<(String, usize)>,
    /// Cloak–cloak links, as index pairs.
    cloak_links: Vec<(usize, usize)>,
    /// How many of the attachment links were degree-deficit driven.
    deficit_links: usize,
    /// Template router per cloak (a real router of the cloak's own AS).
    templates: Vec<String>,
}

/// Computes the expansion plan for one AS group, appending to the global
/// plan. `min_cloaks` forces a larger population (used to meet the global
/// `max(2, k)` crowd size).
fn plan_group(
    members: &[(String, usize)],
    k: usize,
    min_cloaks: usize,
    out: &mut ExpansionPlan,
    rng: &mut StdRng,
) {
    // Degree sequence sorted descending with name tie-break, so the plan
    // is deterministic.
    let mut degs: Vec<(String, usize)> = members.to_vec();
    degs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let sequence: Vec<usize> = degs.iter().map(|d| d.1).collect();
    let targets = anonymize_degree_sequence(&sequence, k);

    // One attachment unit per missing degree, repeated per router.
    let mut units: Vec<String> = Vec::new();
    for ((name, deg), target) in degs.iter().zip(&targets) {
        for _ in *deg..*target {
            units.push(name.clone());
        }
    }
    out.deficit_links += units.len();

    // Sizing: enough cloaks that no cloak must link the same real router
    // twice, with the link budget spread so cloak degrees resemble the
    // real mean degree.
    let max_per_router = units
        .iter()
        .fold(BTreeMap::<&String, usize>::new(), |mut m, u| {
            *m.entry(u).or_insert(0) += 1;
            m
        })
        .into_values()
        .max()
        .unwrap_or(0);
    let mean_deg =
        (sequence.iter().sum::<usize>() as f64 / sequence.len().max(1) as f64).round() as usize;
    let by_blend = units.len().div_ceil(mean_deg.max(2));
    let cloak_count = max_per_router.max(by_blend).max(min_cloaks).max(1);

    // Zero (or sparse) deficit: the sequence is already k-anonymous, but
    // the cloaks still need a foothold in this AS. Attach one cloak link
    // to *every* member of the largest degree group — the whole group
    // shifts up by one degree together, so degree uniformity survives.
    if units.len() < cloak_count {
        let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (name, deg) in &degs {
            groups.entry(*deg).or_default().push(name.clone());
        }
        let largest = groups
            .into_values()
            .max_by_key(|g| g.len())
            .unwrap_or_default();
        for name in largest {
            units.push(name);
        }
    }

    // Distribute units round-robin over the cloaks, skipping cloaks that
    // already link that real router (sizing guarantees a free slot —
    // except when the forced minimum outnumbers the units; those cloaks
    // stay ring-only).
    let base = out.cloak_count;
    units.shuffle(rng);
    let mut attach_count = vec![0usize; cloak_count];
    let mut linked: Vec<BTreeSet<String>> = vec![BTreeSet::new(); cloak_count];
    let mut next = 0usize;
    for unit in units {
        for probe in 0..cloak_count {
            let c = (next + probe) % cloak_count;
            if linked[c].insert(unit.clone()) {
                out.attach.push((unit.clone(), base + c));
                attach_count[c] += 1;
                next = (c + 1) % cloak_count;
                break;
            }
        }
    }

    // Cloak–cloak ring: connects the AS's cloak population (a cloak with
    // no real attachment still reaches the network through its ring
    // peers) and raises every cloak degree by the same amount.
    let mut cloak_links: Vec<(usize, usize)> = Vec::new();
    if cloak_count == 2 {
        cloak_links.push((0, 1));
    } else if cloak_count >= 3 {
        for c in 0..cloak_count {
            cloak_links.push((c, (c + 1) % cloak_count));
        }
    }

    // Equalization: round-robin leaves cloak degrees within one of each
    // other; pair up the low ones so the cloak degree histogram collapses
    // (best-effort — an odd remainder keeps one cloak a degree short).
    let mut degree: Vec<usize> = attach_count;
    for &(a, b) in &cloak_links {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut has_link: BTreeSet<(usize, usize)> = cloak_links.iter().copied().collect();
    if let Some(&top) = degree.iter().max() {
        let mut low: Vec<usize> = (0..cloak_count).filter(|&c| degree[c] < top).collect();
        while low.len() >= 2 {
            let b = low.pop().expect("len >= 2");
            let a = low.pop().expect("len >= 1");
            let key = (a.min(b), a.max(b));
            if has_link.insert(key) {
                cloak_links.push(key);
                degree[a] += 1;
                degree[b] += 1;
            }
        }
    }
    out.cloak_links
        .extend(cloak_links.into_iter().map(|(a, b)| (base + a, base + b)));

    // Templates: each cloak's file is shaped like a real router of its own
    // AS — the router it first attaches to, or any member for ring-only
    // cloaks.
    let member_names: Vec<&String> = degs.iter().map(|(n, _)| n).collect();
    for cloak_linked in linked.iter().take(cloak_count) {
        let template = cloak_linked
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| {
                (*member_names
                    .choose(rng)
                    .expect("AS groups are non-empty"))
                .clone()
            });
        out.templates.push(template);
    }
    out.cloak_count += cloak_count;
}

/// Computes the expansion plan for privacy parameter `k`: per-AS Liu–Terzi
/// deficits realized by per-AS cloak populations, with the global cloak
/// count topped up to at least `max(2, k)`.
fn plan(configs: &NetworkConfigs, k: usize, rng: &mut StdRng) -> ExpansionPlan {
    let topo = extract_topology(configs);

    // Group real routers by AS (BGP asn; IGP-only routers form one group).
    type AsGroups = BTreeMap<Option<confmask_net_types::Asn>, Vec<(String, usize)>>;
    let mut groups: AsGroups = BTreeMap::new();
    for &r in &topo.routers() {
        let name = topo.name(r).to_string();
        let asn = configs.routers[&name].bgp.as_ref().map(|b| b.asn);
        groups
            .entry(asn)
            .or_default()
            .push((name, topo.router_degree(r)));
    }

    let mut out = ExpansionPlan {
        cloak_count: 0,
        attach: Vec::new(),
        cloak_links: Vec::new(),
        deficit_links: 0,
        templates: Vec::new(),
    };
    // Largest AS last, so the global top-up lands in the most plausible
    // place (ordering is deterministic: size then asn).
    let mut ordered: Vec<_> = groups.into_iter().collect();
    ordered.sort_by(|a, b| a.1.len().cmp(&b.1.len()).then_with(|| a.0.cmp(&b.0)));
    let crowd = k.max(2);
    for (i, (_asn, members)) in ordered.iter().enumerate() {
        let is_last = i + 1 == ordered.len();
        let min_cloaks = if is_last {
            crowd.saturating_sub(out.cloak_count)
        } else {
            1
        };
        plan_group(members, k, min_cloaks, &mut out, rng);
    }
    out
}

/// Expands `configs` with cloak routers for privacy parameter `k`.
///
/// Deterministic given `(configs, k, seed)`; forwarding between the real
/// hosts is preserved by construction and verified against the simulator
/// before the result is returned.
pub fn expand(
    configs: &NetworkConfigs,
    k: usize,
    seed: u64,
) -> Result<NetCloakResult, NetCloakError> {
    let _span = confmask_obs::span("netcloak.expand");
    if configs.routers.values().any(|rc| rc.rip.is_some()) {
        return Err(NetCloakError::Unsupported(
            "RIP networks: hop-count metrics cannot price cloak links above the \
             cost diameter, so preservation-by-construction does not hold"
                .to_string(),
        ));
    }

    let sim = confmask_sim::simulate(configs)?;
    let real_hosts: BTreeSet<String> = configs.hosts.keys().cloned().collect();
    let stub_cost = strict_stub_cost(&sim);

    let mut rng = StdRng::seed_from_u64(seed);
    let plan = plan(configs, k, &mut rng);

    let existing: BTreeSet<String> = configs.routers.keys().cloned().collect();
    let names = blending_names(&existing, plan.cloak_count);

    let mut patcher = Patcher::new(configs.clone());
    let mut alloc = PrefixAllocator::new(configs.used_prefixes());
    let alloc_err = |e: String| NetCloakError::Alloc(format!("address space exhausted: {e}"));

    // Create the cloak files, each shaped like a real router of its own
    // AS (the planner picked the template).
    let mut links: Vec<(String, String)> = Vec::new();
    for (name, template) in names.iter().zip(&plan.templates) {
        patcher.add_fake_router(name, template)?;
    }

    // Real–cloak attachment links.
    for (real, c) in &plan.attach {
        let cloak = &names[*c];
        let (prefix, lo, hi) = alloc
            .allocate_p2p()
            .map_err(|e| alloc_err(e.to_string()))?;
        let runs_ospf = patcher.network().routers[cloak].ospf.is_some();
        let cost = runs_ospf.then_some(stub_cost);
        let iface = patcher.fresh_fake_router_iface_name(cloak);
        patcher.add_interface_named(cloak, &iface, lo, 31, cost, Some(format!("to-{real}")))?;
        patcher.add_interface(real, hi, 31, cost, Some(format!("to-{cloak}")))?;
        patcher.enable_network(cloak, prefix, false)?;
        patcher.enable_network(real, prefix, false)?;
        links.push((real.clone(), cloak.clone()));
    }

    // Cloak–cloak links (ring + equalization).
    for &(a, b) in &plan.cloak_links {
        let (ca, cb) = (&names[a], &names[b]);
        let (prefix, lo, hi) = alloc
            .allocate_p2p()
            .map_err(|e| alloc_err(e.to_string()))?;
        let runs_ospf = patcher.network().routers[ca].ospf.is_some();
        let cost = runs_ospf.then_some(stub_cost);
        let ia = patcher.fresh_fake_router_iface_name(ca);
        patcher.add_interface_named(ca, &ia, lo, 31, cost, Some(format!("to-{cb}")))?;
        let ib = patcher.fresh_fake_router_iface_name(cb);
        patcher.add_interface_named(cb, &ib, hi, 31, cost, Some(format!("to-{ca}")))?;
        patcher.enable_network(ca, prefix, false)?;
        patcher.enable_network(cb, prefix, false)?;
        links.push((ca.clone(), cb.clone()));
    }

    // One liveness host per cloak router: idle links would fall to the
    // dead-link detector.
    let mut cloak_hosts = Vec::with_capacity(names.len());
    for name in &names {
        let lan = alloc.allocate(24).map_err(|e| alloc_err(e.to_string()))?;
        let advertise_in_bgp = patcher.network().routers[name].bgp.is_some();
        let host = format!("{name}-h0");
        patcher.add_fake_host(name, &host, lan, advertise_in_bgp)?;
        cloak_hosts.push(host);
    }

    let (expanded, ledger) = patcher.into_parts();
    let final_sim = confmask_sim::simulate(&expanded)?;
    if !final_sim
        .dataplane
        .equivalent_on(&sim.dataplane, &real_hosts)
    {
        let bad = real_hosts
            .iter()
            .flat_map(|s| real_hosts.iter().map(move |d| (s, d)))
            .find(|(s, d)| {
                s != d && final_sim.dataplane.between(s, d) != sim.dataplane.between(s, d)
            })
            .map(|(s, d)| {
                format!(
                    "{s} -> {d}: {:?} became {:?}",
                    sim.dataplane.between(s, d).map(|p| &p.paths),
                    final_sim.dataplane.between(s, d).map(|p| &p.paths)
                )
            })
            .unwrap_or_else(|| "unknown pair".to_string());
        return Err(NetCloakError::NotPreserved(bad));
    }

    confmask_obs::counter_add("netcloak.expansions", 1);
    confmask_obs::counter_add("netcloak.cloak_routers", names.len() as u64);
    confmask_obs::counter_add("netcloak.cloak_links", links.len() as u64);
    confmask_obs::counter_add("netcloak.cloak_hosts", cloak_hosts.len() as u64);
    confmask_obs::counter_add("netcloak.deficit_links", plan.deficit_links as u64);
    confmask_obs::debug!(
        "netcloak",
        "expanded: {} cloak routers, {} links ({} deficit-driven), stub cost {stub_cost}",
        names.len(),
        links.len(),
        plan.deficit_links
    );

    Ok(NetCloakResult {
        configs: expanded,
        ledger,
        cloak_routers: names,
        cloak_links: links,
        cloak_hosts,
        real_hosts,
        baseline_dataplane: sim.dataplane,
        dataplane: final_sim.dataplane,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_topology::metrics::min_same_degree;

    #[test]
    fn expansion_preserves_real_paths_exactly() {
        let net = confmask_netgen::smallnets::example_network();
        let r = expand(&net, 3, 0).unwrap();
        assert!(r.preserved());
        assert!(r.cloak_routers.len() >= 3);
        assert_eq!(r.cloak_hosts.len(), r.cloak_routers.len());
        // Real files untouched: every original router emits identically.
        for (name, rc) in &net.routers {
            let after = &r.configs.routers[name];
            // Attachment may add interfaces to real routers, but never
            // removes or rewrites existing lines.
            assert_eq!(after.hostname, rc.hostname);
            assert!(after.interfaces.len() >= rc.interfaces.len());
        }
    }

    #[test]
    fn cloak_files_carry_provenance_and_blend() {
        let net = confmask_netgen::smallnets::example_network();
        let r = expand(&net, 3, 1).unwrap();
        for name in &r.cloak_routers {
            let rc = &r.configs.routers[name];
            assert!(rc.added, "{name} must be provenance-flagged");
            assert!(name.starts_with('r'), "blending name, got {name}");
            assert!(!rc.interfaces.is_empty(), "{name} has links");
        }
        for h in &r.cloak_hosts {
            assert!(r.configs.hosts[h].added);
        }
    }

    #[test]
    fn expansion_improves_degree_anonymity() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::enterprise());
        let before = min_same_degree(&extract_topology(&net));
        let r = expand(&net, 4, 0).unwrap();
        let after = min_same_degree(&extract_topology(&r.configs));
        assert!(
            after >= before,
            "degree anonymity must not decrease: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
        let a = expand(&net, 4, 9).unwrap();
        let b = expand(&net, 4, 9).unwrap();
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.cloak_links, b.cloak_links);
    }

    #[test]
    fn already_anonymous_networks_still_gain_cloaks() {
        // FatTree-04 is degree-uniform within layers; expansion must still
        // produce a cloak population and keep paths intact.
        let net = confmask_netgen::synthesize(&confmask_netgen::fattree::fattree_spec(4));
        let r = expand(&net, 2, 0).unwrap();
        assert!(r.cloak_routers.len() >= 2);
        assert!(r.preserved());
    }

    #[test]
    fn expanded_configs_reparse_and_validate() {
        let net = confmask_netgen::smallnets::example_network();
        let r = expand(&net, 3, 0).unwrap();
        for rc in r.configs.routers.values() {
            let text = rc.emit();
            let back = confmask_config::parse_router(&text).unwrap();
            assert_eq!(back.hostname, rc.hostname);
        }
        assert!(confmask_config::validate(&r.configs).is_empty());
    }

    #[test]
    fn rip_networks_are_rejected() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::branch_office_rip());
        let err = expand(&net, 3, 0).unwrap_err();
        assert!(matches!(err, NetCloakError::Unsupported(_)), "{err}");
    }
}
