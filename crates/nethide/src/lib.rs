//! A simplified NetHide \[30\] baseline.
//!
//! NetHide obfuscates a network's topology by computing a *virtual
//! topology* that maximizes anonymity subject to a utility budget, then
//! serves forwarding behaviour (e.g. traceroute responses) consistent with
//! the virtual topology rather than the physical one. Its key limitation —
//! the one the ConfMask paper measures in Figures 8 and 9 — is that the
//! virtual forwarding trees are *recomputed* in the obfuscated topology, so
//! most host-to-host paths are no longer exactly the original ones (<30%
//! exactly kept, ~15% average), and mined specifications (waypoints, load
//! balance) are lost.
//!
//! This reproduction replaces NetHide's ILP search with the same
//! k-degree-anonymity link addition ConfMask uses (the anonymity side), and
//! models its forwarding as deterministic single shortest paths in the
//! obfuscated topology (the utility side). That reproduces exactly the
//! qualitative behaviour the paper compares against, without the
//! proprietary solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use confmask_sim::{DataPlane, PathSet};
use confmask_topology::kdegree::plan_k_degree;
use confmask_topology::{LinkInfo, NodeKind, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeSet};

/// Result of NetHide obfuscation.
#[derive(Debug, Clone)]
pub struct NetHideResult {
    /// The obfuscated (virtual) topology.
    pub topology: Topology,
    /// Forwarding behaviour consistent with the virtual topology: one
    /// shortest path per host pair.
    pub dataplane: DataPlane,
    /// Fake links added, by node name.
    pub added_links: Vec<(String, String)>,
}

/// Errors from obfuscation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetHideError {
    /// The router graph could not be made k-anonymous.
    Anonymization(confmask_topology::kdegree::KDegreeError),
}

impl std::fmt::Display for NetHideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetHideError::Anonymization(e) => write!(f, "nethide anonymization failed: {e}"),
        }
    }
}

impl std::error::Error for NetHideError {}

/// Obfuscates `topo` to k-degree anonymity with NetHide's default security
/// budget (an extra ~10% virtual links beyond bare anonymity — the real
/// system maximizes a security metric under a utility budget and ends up
/// adding substantially more virtual links than the k-anonymity minimum).
pub fn obfuscate(topo: &Topology, k: usize, seed: u64) -> Result<NetHideResult, NetHideError> {
    obfuscate_with(topo, k, 0.10, seed)
}

/// Obfuscation with an explicit extra-link budget: `extra_frac` of the
/// router-link count is added as additional random virtual links after the
/// anonymity pass.
pub fn obfuscate_with(
    topo: &Topology,
    k: usize,
    extra_frac: f64,
    seed: u64,
) -> Result<NetHideResult, NetHideError> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Anonymize the router-only graph by adding links.
    let (rgraph, back) = topo.router_subgraph();
    let plan = plan_k_degree(&rgraph, k, &mut rng).map_err(NetHideError::Anonymization)?;

    let mut virt = topo.clone();
    let mut added = Vec::new();
    for &(a, b) in &plan.new_edges {
        let (oa, ob) = (back[a], back[b]);
        // NetHide's virtual links look like ordinary links (default weight).
        virt.add_edge(oa, ob, LinkInfo::default());
        added.push((topo.name(oa).to_string(), topo.name(ob).to_string()));
    }

    // Security budget: extra random virtual links between non-adjacent
    // router pairs.
    let routers: Vec<usize> = virt.routers();
    let budget = ((rgraph.edge_count() as f64) * extra_frac).ceil() as usize;
    let mut attempts = 0usize;
    let mut extra = 0usize;
    use rand::Rng as _;
    while extra < budget && attempts < budget * 100 && routers.len() >= 2 {
        attempts += 1;
        let a = routers[rng.gen_range(0..routers.len())];
        let b = routers[rng.gen_range(0..routers.len())];
        if a != b && !virt.has_edge(a, b) {
            virt.add_edge(a, b, LinkInfo::default());
            added.push((topo.name(a).to_string(), topo.name(b).to_string()));
            extra += 1;
        }
    }

    // Virtual forwarding: one deterministic shortest path per host pair in
    // the virtual topology (hop metric — NetHide reasons at topology level).
    let dataplane = shortest_path_dataplane(&virt);

    Ok(NetHideResult {
        topology: virt,
        dataplane,
        added_links: added,
    })
}

/// Single-shortest-path data plane over a topology (hosts non-transit),
/// with deterministic lowest-index tie-breaking.
pub fn shortest_path_dataplane(topo: &Topology) -> DataPlane {
    let hosts = topo.hosts();
    let mut dp = DataPlane::default();
    for &src in &hosts {
        let (dist, parent) = sssp(topo, src);
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            let mut ps = PathSet::default();
            if dist[dst] == u64::MAX {
                ps.blackhole = true;
            } else {
                let mut path = Vec::new();
                let mut cur = dst;
                loop {
                    path.push(topo.name(cur).to_string());
                    if cur == src {
                        break;
                    }
                    cur = parent[cur];
                }
                path.reverse();
                ps.paths.push(path);
            }
            dp.insert(
                topo.name(src).to_string(),
                topo.name(dst).to_string(),
                ps,
            );
        }
    }
    dp
}

/// Dijkstra over hop counts with hosts excluded from transit; parents break
/// ties toward the lowest node index, making the tree deterministic.
fn sssp(topo: &Topology, src: usize) -> (Vec<u64>, Vec<usize>) {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u != src && topo.kind(u) == NodeKind::Host {
            continue;
        }
        for v in topo.neighbors(u) {
            let nd = d + 1;
            if nd < dist[v] || (nd == dist[v] && u < parent[v]) {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (dist, parent)
}

/// The fraction of host pairs whose NetHide path set equals the original
/// (the `P_U` NetHide scores in Figure 8).
pub fn exact_path_preservation(original: &DataPlane, nethide: &DataPlane) -> f64 {
    let mut total = 0usize;
    let mut kept = 0usize;
    for (pair, orig_ps) in original.pairs() {
        total += 1;
        if let Some(nh_ps) = nethide.between(&pair.0, &pair.1) {
            if BTreeSet::from_iter(&orig_ps.paths) == BTreeSet::from_iter(&nh_ps.paths) {
                kept += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        kept as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_topology::extract::extract_topology;
    use confmask_topology::metrics::min_same_degree;

    #[test]
    fn obfuscation_achieves_k_anonymity() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::enterprise());
        let topo = extract_topology(&net);
        // Zero extra budget isolates the anonymity pass.
        let r = obfuscate_with(&topo, 4, 0.0, 1).unwrap();
        assert!(min_same_degree(&r.topology) >= 4);
        // Original links all survive.
        for (a, b, _) in topo.edges() {
            let x = r.topology.node(topo.name(a)).unwrap();
            let y = r.topology.node(topo.name(b)).unwrap();
            assert!(r.topology.has_edge(x, y));
        }
    }

    #[test]
    fn nethide_breaks_most_fat_tree_paths() {
        // The headline Figure 8 behaviour: NetHide's single shortest paths
        // cannot reproduce the original ECMP path sets.
        let net = confmask_netgen::synthesize(&confmask_netgen::fattree::fattree_spec(4));
        let sim = confmask_sim::simulate(&net).unwrap();
        let topo = extract_topology(&net);
        let r = obfuscate(&topo, 6, 1).unwrap();
        let pu = exact_path_preservation(&sim.dataplane, &r.dataplane);
        assert!(pu < 0.3, "NetHide keeps < 30% of paths exactly, got {pu:.3}");
    }

    #[test]
    fn virtual_dataplane_is_complete_and_clean() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
        let topo = extract_topology(&net);
        let r = obfuscate(&topo, 4, 3).unwrap();
        let h = topo.hosts().len();
        assert_eq!(r.dataplane.len(), h * (h - 1));
        for (pair, ps) in r.dataplane.pairs() {
            assert!(ps.clean(), "{pair:?}");
            assert_eq!(ps.paths.len(), 1, "single virtual path per pair");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
        let topo = extract_topology(&net);
        let a = obfuscate(&topo, 4, 9).unwrap();
        let b = obfuscate(&topo, 4, 9).unwrap();
        assert_eq!(a.added_links, b.added_links);
        assert_eq!(a.dataplane, b.dataplane);
    }

    #[test]
    fn preservation_is_one_for_identity() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
        let topo = extract_topology(&net);
        let dp = shortest_path_dataplane(&topo);
        assert!((exact_path_preservation(&dp, &dp) - 1.0).abs() < 1e-12);
    }
}
