//! Property-based tests for prefix arithmetic and allocation.

use confmask_net_types::{Ipv4Prefix, PrefixAllocator};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| {
        Ipv4Prefix::new(Ipv4Addr::from(bits), len).expect("len <= 32")
    })
}

proptest! {
    #[test]
    fn parse_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Ipv4Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn canonical_network_is_contained(p in arb_prefix()) {
        prop_assert!(p.contains_addr(p.network()));
        prop_assert!(p.contains_addr(p.first_host()));
        prop_assert!(p.contains_addr(p.second_host()));
    }

    #[test]
    fn containment_is_transitive(a in arb_prefix(), b in arb_prefix(), c in arb_prefix()) {
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c));
        }
    }

    #[test]
    fn overlap_is_symmetric(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn split_partitions_the_prefix(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.contains(&lo) && p.contains(&hi));
            prop_assert!(!lo.overlaps(&hi));
            prop_assert_eq!(u64::from(lo.size()) + u64::from(hi.size()),
                            if p.is_empty() { 1u64 << 32 } else { u64::from(p.size()) });
        }
    }

    #[test]
    fn mask_roundtrip(p in arb_prefix()) {
        prop_assert_eq!(Ipv4Prefix::len_from_mask(p.subnet_mask()).unwrap(), p.len());
    }

    #[test]
    fn allocator_disjoint_from_arbitrary_reservations(
        reserved in prop::collection::vec(arb_prefix().prop_filter("not /0..8 monsters", |p| p.len() >= 8), 0..8),
        lens in prop::collection::vec(16u8..=31, 1..8),
    ) {
        let mut alloc = PrefixAllocator::new(reserved.clone());
        let mut got: Vec<Ipv4Prefix> = Vec::new();
        for len in lens {
            if let Ok(p) = alloc.allocate(len) {
                for r in &reserved {
                    prop_assert!(!r.overlaps(&p), "{} overlaps reserved {}", p, r);
                }
                for g in &got {
                    prop_assert!(!g.overlaps(&p), "{} overlaps earlier {}", p, g);
                }
                got.push(p);
            }
        }
    }
}
