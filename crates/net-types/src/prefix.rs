//! IPv4 CIDR prefix type and arithmetic.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::error::{Error, Result};

/// An IPv4 CIDR prefix, e.g. `10.0.0.0/31`.
///
/// The network address is always stored in canonical form (host bits
/// cleared), so two prefixes that denote the same network compare equal.
///
/// ```
/// use confmask_net_types::Ipv4Prefix;
/// let p: Ipv4Prefix = "10.1.2.3/24".parse().unwrap();
/// assert_eq!(p.to_string(), "10.1.2.0/24");
/// assert!(p.contains_addr("10.1.2.77".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Ipv4Prefix {
    network: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix from an address and prefix length, canonicalizing the
    /// network address. Fails if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(Error::InvalidPrefix(format!("{addr}/{len}: length > 32")));
        }
        let bits = u32::from(addr);
        Ok(Self {
            network: bits & Self::mask_bits(len),
            len,
        })
    }

    /// The all-encompassing `0.0.0.0/0` prefix.
    pub const DEFAULT_ROUTE: Self = Self { network: 0, len: 0 };

    fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The canonical network address (host bits cleared).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the degenerate `/0` prefix (clippy pairs `len` with
    /// `is_empty`; for a prefix "empty" means "matches everything").
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The subnet mask as a dotted-quad address, e.g. `/24` →
    /// `255.255.255.0`. This is the notation classic IOS `ip address`
    /// statements use.
    pub fn subnet_mask(&self) -> Ipv4Addr {
        Ipv4Addr::from(Self::mask_bits(self.len))
    }

    /// The *wildcard* (inverted) mask, used in IOS `network ... area`
    /// statements, e.g. `/24` → `0.0.0.255`.
    pub fn wildcard_mask(&self) -> Ipv4Addr {
        Ipv4Addr::from(!Self::mask_bits(self.len))
    }

    /// Parses a dotted-quad subnet mask back into a prefix length.
    /// Fails for non-contiguous masks.
    pub fn len_from_mask(mask: Ipv4Addr) -> Result<u8> {
        let bits = u32::from(mask);
        let len = bits.count_ones() as u8;
        if Self::mask_bits(len) != bits {
            return Err(Error::InvalidPrefix(format!(
                "{mask}: non-contiguous subnet mask"
            )));
        }
        Ok(len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.len) == self.network
    }

    /// Whether `other` is a (non-strict) sub-prefix of `self`.
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.network & Self::mask_bits(self.len)) == self.network
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Number of addresses covered (saturates at `u32::MAX` for `/0`).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - u32::from(self.len))
        }
    }

    /// The `i`-th address inside the prefix (0 = network address).
    /// Returns `None` when `i` is out of range.
    pub fn addr(&self, i: u32) -> Option<Ipv4Addr> {
        if self.len > 0 && i >= self.size() {
            return None;
        }
        self.network.checked_add(i).map(Ipv4Addr::from)
    }

    /// First usable host address. For `/31` point-to-point links (RFC 3021)
    /// and `/32` loopbacks every address is usable; for anything shorter the
    /// network address is skipped.
    pub fn first_host(&self) -> Ipv4Addr {
        if self.len >= 31 {
            self.network()
        } else {
            Ipv4Addr::from(self.network + 1)
        }
    }

    /// Second usable host address (the far end of a point-to-point link).
    pub fn second_host(&self) -> Ipv4Addr {
        if self.len >= 32 {
            self.network()
        } else if self.len == 31 {
            Ipv4Addr::from(self.network + 1)
        } else {
            Ipv4Addr::from(self.network + 2)
        }
    }

    /// Splits the prefix into its two halves, one bit longer each.
    /// Returns `None` for `/32`.
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let low = Ipv4Prefix {
            network: self.network,
            len,
        };
        let high = Ipv4Prefix {
            network: self.network | (1u32 << (32 - u32::from(len))),
            len,
        };
        Some((low, high))
    }

    /// The `i`-th subnet of length `sub_len` within this prefix.
    pub fn subnet(&self, sub_len: u8, i: u32) -> Option<Ipv4Prefix> {
        if sub_len < self.len || sub_len > 32 {
            return None;
        }
        let count_bits = sub_len - self.len;
        if count_bits < 32 && u64::from(i) >= (1u64 << count_bits) {
            return None;
        }
        let net = self.network | (i << (32 - u32::from(sub_len)));
        Some(Ipv4Prefix {
            network: net,
            len: sub_len,
        })
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Prefix {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| Error::InvalidPrefix(format!("{s}: missing '/'")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| Error::InvalidPrefix(format!("{s}: bad address")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| Error::InvalidPrefix(format!("{s}: bad length")))?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_network_address() {
        assert_eq!(p("10.1.2.3/24"), p("10.1.2.0/24"));
        assert_eq!(p("10.1.2.3/24").network(), Ipv4Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn masks() {
        assert_eq!(p("10.0.0.0/24").subnet_mask(), Ipv4Addr::new(255, 255, 255, 0));
        assert_eq!(p("10.0.0.0/31").subnet_mask(), Ipv4Addr::new(255, 255, 255, 254));
        assert_eq!(p("10.0.0.0/24").wildcard_mask(), Ipv4Addr::new(0, 0, 0, 255));
        assert_eq!(p("0.0.0.0/0").subnet_mask(), Ipv4Addr::new(0, 0, 0, 0));
    }

    #[test]
    fn len_from_mask_roundtrip() {
        for len in 0..=32u8 {
            let pref = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), len).unwrap();
            assert_eq!(Ipv4Prefix::len_from_mask(pref.subnet_mask()).unwrap(), len);
        }
        assert!(Ipv4Prefix::len_from_mask(Ipv4Addr::new(255, 0, 255, 0)).is_err());
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").contains(&p("10.1.0.0/16")));
        assert!(!p("10.1.0.0/16").contains(&p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").contains(&p("10.0.0.0/8")));
        assert!(p("0.0.0.0/0").contains(&p("192.168.0.0/24")));
        assert!(p("10.0.0.0/8").overlaps(&p("10.250.0.0/16")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
    }

    #[test]
    fn contains_addr_boundaries() {
        let pref = p("192.168.4.0/30");
        assert!(pref.contains_addr(Ipv4Addr::new(192, 168, 4, 0)));
        assert!(pref.contains_addr(Ipv4Addr::new(192, 168, 4, 3)));
        assert!(!pref.contains_addr(Ipv4Addr::new(192, 168, 4, 4)));
    }

    #[test]
    fn hosts_on_p2p_and_lan() {
        let link = p("10.0.0.4/31");
        assert_eq!(link.first_host(), Ipv4Addr::new(10, 0, 0, 4));
        assert_eq!(link.second_host(), Ipv4Addr::new(10, 0, 0, 5));
        let lan = p("10.1.1.0/24");
        assert_eq!(lan.first_host(), Ipv4Addr::new(10, 1, 1, 1));
        assert_eq!(lan.second_host(), Ipv4Addr::new(10, 1, 1, 2));
        let lo = p("10.9.9.9/32");
        assert_eq!(lo.first_host(), Ipv4Addr::new(10, 9, 9, 9));
        assert_eq!(lo.second_host(), Ipv4Addr::new(10, 9, 9, 9));
    }

    #[test]
    fn split_and_subnet() {
        let (a, b) = p("10.0.0.0/24").split().unwrap();
        assert_eq!(a, p("10.0.0.0/25"));
        assert_eq!(b, p("10.0.0.128/25"));
        assert!(p("1.2.3.4/32").split().is_none());

        assert_eq!(p("10.0.0.0/16").subnet(24, 5).unwrap(), p("10.0.5.0/24"));
        assert_eq!(p("10.0.0.0/16").subnet(24, 255).unwrap(), p("10.0.255.0/24"));
        assert!(p("10.0.0.0/16").subnet(24, 256).is_none());
        assert!(p("10.0.0.0/16").subnet(8, 0).is_none());
    }

    #[test]
    fn sizes_and_indexing() {
        assert_eq!(p("10.0.0.0/30").size(), 4);
        assert_eq!(p("10.0.0.0/32").size(), 1);
        assert_eq!(p("0.0.0.0/0").size(), u32::MAX);
        assert_eq!(p("10.0.0.0/30").addr(3), Some(Ipv4Addr::new(10, 0, 0, 3)));
        assert_eq!(p("10.0.0.0/30").addr(4), None);
    }

    #[test]
    fn display_roundtrip() {
        for s in ["10.0.0.0/8", "192.168.1.0/24", "10.0.0.2/31", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
