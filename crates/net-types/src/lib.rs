//! Foundational network types shared by every ConfMask crate.
//!
//! This crate provides the small, dependency-free vocabulary the rest of the
//! workspace is written in:
//!
//! * [`Ipv4Prefix`] — an IPv4 CIDR prefix with the arithmetic the
//!   configuration layer and the simulator need (containment, masks,
//!   host/subnet enumeration),
//! * [`PrefixAllocator`] — allocation of fresh prefixes that are guaranteed
//!   disjoint from every prefix already present in a network (ConfMask
//!   requires fake links and fake hosts to live in address space the original
//!   network never uses, §5.3 of the paper),
//! * identifiers for routers, hosts and autonomous systems
//!   ([`RouterId`], [`HostId`], [`NodeId`], [`Asn`]),
//! * the crate-spanning [`Error`] type.
//!
//! Everything here is deterministic and `Copy`/cheaply-clonable; no global
//! state, no ambient randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
mod id;
mod prefix;

pub use alloc::PrefixAllocator;
pub use error::{Error, Result};
pub use id::{Asn, DeviceName, HostId, NodeId, RouterId};
pub use prefix::Ipv4Prefix;

pub use std::net::Ipv4Addr;
