//! Allocation of fresh prefixes disjoint from a network's existing space.
//!
//! ConfMask requires every fake link and fake host to be numbered out of
//! address space that the original network never uses (§5.3): "For each fake
//! host, we choose a new IP that is not included by any network that appeared
//! in the original network configurations." The [`PrefixAllocator`] is seeded
//! with every prefix found in the original configurations and then hands out
//! prefixes guaranteed not to overlap any of them (nor each other).

use crate::error::{Error, Result};
use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

/// Allocates fresh IPv4 prefixes disjoint from a set of reserved prefixes.
///
/// Allocation walks candidate pools (RFC 1918 space plus, as a last resort,
/// the rest of unicast space) in deterministic order, so given the same
/// reservations the allocator always produces the same sequence — important
/// for reproducible anonymization runs.
///
/// ```
/// use confmask_net_types::{Ipv4Prefix, PrefixAllocator};
/// let used: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
/// let mut alloc = PrefixAllocator::new([used]);
/// let fresh = alloc.allocate(24).unwrap();
/// assert!(!used.overlaps(&fresh));
/// ```
#[derive(Debug, Clone)]
pub struct PrefixAllocator {
    reserved: Vec<Ipv4Prefix>,
    pools: Vec<Ipv4Prefix>,
    /// Per-pool cursor: next candidate subnet index for each (pool, len).
    cursors: std::collections::HashMap<(usize, u8), u32>,
}

impl PrefixAllocator {
    /// Creates an allocator with the given reserved (already-used) prefixes.
    pub fn new(reserved: impl IntoIterator<Item = Ipv4Prefix>) -> Self {
        let pools = vec![
            "172.16.0.0/12".parse().expect("static pool"),
            "192.168.0.0/16".parse().expect("static pool"),
            "10.0.0.0/8".parse().expect("static pool"),
            // Documentation + benchmarking space as overflow pools.
            "198.18.0.0/15".parse().expect("static pool"),
            "100.64.0.0/10".parse().expect("static pool"),
        ];
        Self {
            reserved: reserved.into_iter().collect(),
            pools,
            cursors: std::collections::HashMap::new(),
        }
    }

    /// Marks an additional prefix as used (e.g. one the caller assigned out
    /// of band).
    pub fn reserve(&mut self, prefix: Ipv4Prefix) {
        self.reserved.push(prefix);
    }

    /// Every prefix currently reserved, including past allocations.
    pub fn reserved(&self) -> &[Ipv4Prefix] {
        &self.reserved
    }

    fn is_free(&self, candidate: &Ipv4Prefix) -> bool {
        self.reserved.iter().all(|r| !r.overlaps(candidate))
    }

    /// Allocates a fresh `/len` prefix disjoint from all reserved prefixes
    /// and all previous allocations.
    pub fn allocate(&mut self, len: u8) -> Result<Ipv4Prefix> {
        if len > 32 {
            return Err(Error::InvalidPrefix(format!("requested length {len} > 32")));
        }
        for (pool_idx, pool) in self.pools.clone().into_iter().enumerate() {
            if len < pool.len() {
                continue;
            }
            let count_bits = u32::from(len - pool.len());
            let max = if count_bits >= 32 {
                u32::MAX
            } else {
                (1u64 << count_bits) as u32
            };
            let mut cursor = self.cursors.get(&(pool_idx, len)).copied().unwrap_or(0);
            while cursor < max {
                let i = cursor;
                cursor += 1;
                let candidate = pool.subnet(len, i).expect("cursor within pool bounds");
                if self.is_free(&candidate) {
                    self.cursors.insert((pool_idx, len), cursor);
                    self.reserved.push(candidate);
                    return Ok(candidate);
                }
            }
            self.cursors.insert((pool_idx, len), cursor);
        }
        Err(Error::AddressSpaceExhausted { requested_len: len })
    }

    /// Allocates a fresh `/31` point-to-point link prefix and returns the
    /// prefix together with its two endpoint addresses.
    pub fn allocate_p2p(&mut self) -> Result<(Ipv4Prefix, Ipv4Addr, Ipv4Addr)> {
        let p = self.allocate(31)?;
        Ok((p, p.first_host(), p.second_host()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn allocations_are_disjoint_from_reserved() {
        let mut a = PrefixAllocator::new([p("172.16.0.0/12"), p("192.168.0.0/16")]);
        for _ in 0..64 {
            let got = a.allocate(24).unwrap();
            assert!(!p("172.16.0.0/12").overlaps(&got), "{got} overlaps pool 1");
            assert!(!p("192.168.0.0/16").overlaps(&got), "{got} overlaps pool 2");
        }
    }

    #[test]
    fn allocations_are_mutually_disjoint() {
        let mut a = PrefixAllocator::new([]);
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(a.allocate(30).unwrap());
        }
        for i in 0..got.len() {
            for j in 0..i {
                assert!(!got[i].overlaps(&got[j]), "{} overlaps {}", got[i], got[j]);
            }
        }
    }

    #[test]
    fn deterministic_given_same_reservations() {
        let mk = || {
            let mut a = PrefixAllocator::new([p("10.0.0.0/8")]);
            (0..10).map(|_| a.allocate(24).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn skips_partially_used_pools() {
        // Reserve the first half of 172.16/12; allocation must skip into the
        // free half.
        let mut a = PrefixAllocator::new([p("172.16.0.0/13")]);
        let got = a.allocate(24).unwrap();
        assert!(!p("172.16.0.0/13").overlaps(&got));
        assert!(p("172.16.0.0/12").overlaps(&got), "should still use the pool: {got}");
    }

    #[test]
    fn p2p_allocation_yields_two_hosts() {
        let mut a = PrefixAllocator::new([]);
        let (pref, lo, hi) = a.allocate_p2p().unwrap();
        assert_eq!(pref.len(), 31);
        assert_ne!(lo, hi);
        assert!(pref.contains_addr(lo) && pref.contains_addr(hi));
    }

    #[test]
    fn rejects_len_over_32() {
        let mut a = PrefixAllocator::new([]);
        assert!(a.allocate(33).is_err());
    }

    #[test]
    fn interleaved_lengths_stay_disjoint() {
        let mut a = PrefixAllocator::new([]);
        let x = a.allocate(16).unwrap();
        let y = a.allocate(24).unwrap();
        let z = a.allocate(31).unwrap();
        assert!(!x.overlaps(&y) && !x.overlaps(&z) && !y.overlaps(&z));
    }
}
