//! Identifiers for network devices and autonomous systems.

use std::fmt;

/// Dense index of a router within a network (assigned at parse time).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct RouterId(pub u32);

/// Dense index of a host within a network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct HostId(pub u32);

/// Either a router or a host — the node set `V = R ∪ H` of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum NodeId {
    /// A router node.
    Router(RouterId),
    /// A host node.
    Host(HostId),
}

impl NodeId {
    /// The router id, if this node is a router.
    pub fn as_router(self) -> Option<RouterId> {
        match self {
            NodeId::Router(r) => Some(r),
            NodeId::Host(_) => None,
        }
    }

    /// The host id, if this node is a host.
    pub fn as_host(self) -> Option<HostId> {
        match self {
            NodeId::Host(h) => Some(h),
            NodeId::Router(_) => None,
        }
    }

    /// Whether this node is a router.
    pub fn is_router(self) -> bool {
        matches!(self, NodeId::Router(_))
    }
}

impl From<RouterId> for NodeId {
    fn from(r: RouterId) -> Self {
        NodeId::Router(r)
    }
}

impl From<HostId> for NodeId {
    fn from(h: HostId) -> Self {
        NodeId::Host(h)
    }
}

/// An autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Asn(pub u32);

/// A device hostname as it appears in a configuration file.
pub type DeviceName = String;

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Router(r) => write!(f, "{r}"),
            NodeId::Host(h) => write!(f, "{h}"),
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        let r: NodeId = RouterId(3).into();
        let h: NodeId = HostId(7).into();
        assert_eq!(r.as_router(), Some(RouterId(3)));
        assert_eq!(r.as_host(), None);
        assert_eq!(h.as_host(), Some(HostId(7)));
        assert!(r.is_router());
        assert!(!h.is_router());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RouterId(2).to_string(), "r2");
        assert_eq!(HostId(5).to_string(), "h5");
        assert_eq!(NodeId::Router(RouterId(1)).to_string(), "r1");
        assert_eq!(Asn(65001).to_string(), "AS65001");
    }
}
