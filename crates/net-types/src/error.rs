//! Error type shared across the workspace's foundational layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the foundational network types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A CIDR prefix string or (address, length) pair was malformed.
    InvalidPrefix(String),
    /// The prefix allocator ran out of disjoint address space.
    AddressSpaceExhausted {
        /// Prefix length that was requested.
        requested_len: u8,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidPrefix(msg) => write!(f, "invalid prefix: {msg}"),
            Error::AddressSpaceExhausted { requested_len } => write!(
                f,
                "address space exhausted allocating a /{requested_len} prefix"
            ),
        }
    }
}

impl std::error::Error for Error {}
