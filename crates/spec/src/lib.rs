//! Network specification mining — the Config2Spec \[7\] substitute.
//!
//! Config2Spec mines a network's *specification*: a set of policies, each
//! capturing one behaviour (reachability of two endpoints, a waypoint, a
//! load-balancing degree). The paper uses it (Figure 9) to quantify how
//! much of the original network's behaviour an anonymization preserves and
//! how much fictitious behaviour it introduces.
//!
//! This crate mines five policy families from a simulated data plane
//! (Config2Spec's data-plane mode) — reachability, waypoint, load balance,
//! isolation, and path length — and computes the kept / missing /
//! introduced breakdown of Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use confmask_sim::{DataPlane, PathSet};
use std::collections::BTreeSet;

/// One mined policy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// `dst` is reachable from `src` along at least one clean path.
    Reachability {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
    },
    /// Every `src → dst` path traverses router `via`.
    Waypoint {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// The waypoint router.
        via: String,
    },
    /// Traffic `src → dst` is split over `paths ≥ 2` equal paths.
    LoadBalance {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// Number of forwarding paths.
        paths: usize,
    },
    /// `dst` is *not* reachable from `src` (isolation — black hole or
    /// missing route; Config2Spec mines these as negative policies).
    Isolation {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
    },
    /// Every `src → dst` path has exactly `hops` router hops.
    PathLength {
        /// Source host.
        src: String,
        /// Destination host.
        dst: String,
        /// Router hops on every path.
        hops: usize,
    },
}

impl Policy {
    /// The hosts this policy mentions.
    pub fn hosts(&self) -> (&str, &str) {
        match self {
            Policy::Reachability { src, dst }
            | Policy::Waypoint { src, dst, .. }
            | Policy::LoadBalance { src, dst, .. }
            | Policy::Isolation { src, dst }
            | Policy::PathLength { src, dst, .. } => (src, dst),
        }
    }
}

/// A network specification: the set of all mined policies.
pub type Specification = BTreeSet<Policy>;

/// Pair count below which mining stays sequential: the per-pair work is a
/// handful of set operations, so tiny data planes are not worth a fan-out.
const PARALLEL_MINE_THRESHOLD: usize = 32;

/// Mines the specification of a data plane.
///
/// Each host pair mines independently; large data planes fan the pairs out
/// across the shared executor ([`confmask_exec`]). The result is a set, and
/// per-pair policies are merged in pair order, so the mined specification
/// is identical at any thread count.
pub fn mine(dp: &DataPlane) -> Specification {
    let pairs: Vec<(&(String, String), &PathSet)> = dp.pairs().collect();
    let per_pair: Vec<Vec<Policy>> = if pairs.len() >= PARALLEL_MINE_THRESHOLD {
        confmask_exec::par_map(&pairs, |((src, dst), ps)| mine_pair(src, dst, ps))
    } else {
        pairs
            .iter()
            .map(|((src, dst), ps)| mine_pair(src, dst, ps))
            .collect()
    };
    per_pair.into_iter().flatten().collect()
}

/// Mines every policy one host pair contributes.
fn mine_pair(src: &str, dst: &str, ps: &PathSet) -> Vec<Policy> {
    let mut out = Vec::new();
    if !ps.clean() {
        out.push(Policy::Isolation {
            src: src.to_owned(),
            dst: dst.to_owned(),
        });
        return out;
    }
    out.push(Policy::Reachability {
        src: src.to_owned(),
        dst: dst.to_owned(),
    });
    // Uniform path length (Theorem B.2's preserved property).
    let lengths: BTreeSet<usize> = ps.paths.iter().map(|p| p.len() - 2).collect();
    if lengths.len() == 1 {
        out.push(Policy::PathLength {
            src: src.to_owned(),
            dst: dst.to_owned(),
            hops: *lengths.iter().next().expect("non-empty"),
        });
    }
    if ps.paths.len() >= 2 {
        out.push(Policy::LoadBalance {
            src: src.to_owned(),
            dst: dst.to_owned(),
            paths: ps.paths.len(),
        });
    }
    // Waypoints: routers on *every* path (excluding endpoints).
    let mut common: Option<BTreeSet<&String>> = None;
    for path in &ps.paths {
        let routers: BTreeSet<&String> = path[1..path.len() - 1].iter().collect();
        common = Some(match common {
            None => routers,
            Some(prev) => prev.intersection(&routers).copied().collect(),
        });
    }
    for via in common.unwrap_or_default() {
        out.push(Policy::Waypoint {
            src: src.to_owned(),
            dst: dst.to_owned(),
            via: via.clone(),
        });
    }
    out
}

/// The Figure 9 comparison between an original and an anonymized
/// specification.
#[derive(Debug, Clone, Default)]
pub struct SpecDiff {
    /// Policies present in both (the "kept spec" bar).
    pub kept: usize,
    /// Original policies lost by anonymization.
    pub missing: usize,
    /// Policies of the anonymized network absent from the original.
    pub introduced: usize,
    /// Introduced policies that mention at least one fake host (benign —
    /// "96.9% of the introduced specifications by ConfMask are for the new
    /// fake hosts and links").
    pub introduced_fake: usize,
    /// Total original policies.
    pub original_total: usize,
}

impl SpecDiff {
    /// Fraction of original policies kept (Figure 9's headline number).
    pub fn kept_ratio(&self) -> f64 {
        if self.original_total == 0 {
            return 1.0;
        }
        self.kept as f64 / self.original_total as f64
    }

    /// Introduced policies relative to the original total (the bars above
    /// 1 in Figure 9).
    pub fn introduced_ratio(&self) -> f64 {
        if self.original_total == 0 {
            return 0.0;
        }
        self.introduced as f64 / self.original_total as f64
    }

    /// Fraction of introduced policies attributable to fake hosts.
    pub fn introduced_fake_fraction(&self) -> f64 {
        if self.introduced == 0 {
            return 0.0;
        }
        self.introduced_fake as f64 / self.introduced as f64
    }
}

/// Diffs two specifications; `real_hosts` identifies the original hosts so
/// introduced policies can be attributed to fakes.
pub fn diff(
    original: &Specification,
    anonymized: &Specification,
    real_hosts: &BTreeSet<String>,
) -> SpecDiff {
    let kept = original.intersection(anonymized).count();
    let introduced_set: Vec<&Policy> = anonymized.difference(original).collect();
    let introduced_fake = introduced_set
        .iter()
        .filter(|p| {
            let (s, d) = p.hosts();
            !real_hosts.contains(s) || !real_hosts.contains(d)
        })
        .count();
    SpecDiff {
        kept,
        missing: original.len() - kept,
        introduced: introduced_set.len(),
        introduced_fake,
        original_total: original.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_sim::PathSet;

    fn dp(entries: &[(&str, &str, Vec<Vec<&str>>)]) -> DataPlane {
        let mut dp = DataPlane::default();
        for (s, d, paths) in entries {
            dp.insert(
                s.to_string(),
                d.to_string(),
                PathSet {
                    paths: paths
                        .iter()
                        .map(|p| p.iter().map(|n| n.to_string()).collect())
                        .collect(),
                    blackhole: false,
                    has_loop: false,
                },
            );
        }
        dp
    }

    #[test]
    fn mines_reachability_waypoint_loadbalance() {
        let d = dp(&[(
            "h1",
            "h2",
            vec![vec!["h1", "r1", "r2", "r4", "h2"], vec!["h1", "r1", "r3", "r4", "h2"]],
        )]);
        let spec = mine(&d);
        assert!(spec.contains(&Policy::Reachability {
            src: "h1".into(),
            dst: "h2".into()
        }));
        assert!(spec.contains(&Policy::LoadBalance {
            src: "h1".into(),
            dst: "h2".into(),
            paths: 2
        }));
        // r1 and r4 are on every path; r2/r3 are not.
        assert!(spec.contains(&Policy::Waypoint {
            src: "h1".into(),
            dst: "h2".into(),
            via: "r1".into()
        }));
        assert!(spec.contains(&Policy::Waypoint {
            src: "h1".into(),
            dst: "h2".into(),
            via: "r4".into()
        }));
        assert!(!spec.contains(&Policy::Waypoint {
            src: "h1".into(),
            dst: "h2".into(),
            via: "r2".into()
        }));
    }

    #[test]
    fn blackholed_pairs_mine_isolation() {
        let mut d = DataPlane::default();
        d.insert(
            "h1".into(),
            "h2".into(),
            PathSet {
                paths: vec![],
                blackhole: true,
                has_loop: false,
            },
        );
        let spec = mine(&d);
        assert_eq!(spec.len(), 1);
        assert!(spec.contains(&Policy::Isolation {
            src: "h1".into(),
            dst: "h2".into()
        }));
    }

    #[test]
    fn path_length_policy_requires_uniform_lengths() {
        let d = dp(&[
            ("h1", "h2", vec![vec!["h1", "r1", "r2", "h2"]]),
            (
                "h1",
                "h3",
                vec![
                    vec!["h1", "r1", "r3", "h3"],
                    vec!["h1", "r1", "r2", "r3", "h3"],
                ],
            ),
        ]);
        let spec = mine(&d);
        assert!(spec.contains(&Policy::PathLength {
            src: "h1".into(),
            dst: "h2".into(),
            hops: 2
        }));
        assert!(!spec.iter().any(|p| matches!(
            p,
            Policy::PathLength { src, dst, .. } if src == "h1" && dst == "h3"
        )));
    }

    #[test]
    fn diff_classifies_kept_missing_introduced() {
        let orig = dp(&[("h1", "h2", vec![vec!["h1", "r1", "r2", "h2"]])]);
        let anon = dp(&[
            ("h1", "h2", vec![vec!["h1", "r1", "r3", "h2"]]), // changed path: waypoint r2 lost
            ("hx", "h2", vec![vec!["hx", "r9", "r3", "h2"]]), // fake host traffic
        ]);
        let so = mine(&orig);
        let sa = mine(&anon);
        let real: BTreeSet<String> = ["h1".to_string(), "h2".to_string()].into();
        let d = diff(&so, &sa, &real);
        // kept: Reachability(h1,h2), PathLength(h1,h2,2), Waypoint(h1,h2,r1);
        // missing: Waypoint(h1,h2,r2).
        assert_eq!(d.kept, 3);
        assert_eq!(d.missing, 1);
        assert!(d.introduced >= 3); // r3 waypoint + fake-host policies
        assert!(d.introduced_fake >= 2);
        assert!(d.kept_ratio() > 0.0 && d.kept_ratio() < 1.0);
    }

    #[test]
    fn identical_specs_diff_cleanly() {
        let d0 = dp(&[("h1", "h2", vec![vec!["h1", "r1", "h2"]])]);
        let s = mine(&d0);
        let real: BTreeSet<String> = ["h1".to_string(), "h2".to_string()].into();
        let d = diff(&s, &s, &real);
        assert_eq!(d.missing, 0);
        assert_eq!(d.introduced, 0);
        assert!((d.kept_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confmask_keeps_all_original_specs() {
        // End-to-end: mine original vs ConfMask-anonymized FatTree-04.
        let net = confmask_netgen::synthesize(&confmask_netgen::fattree::fattree_spec(4));
        let result = confmask::anonymize(&net, &confmask::Params::new(4, 2)).unwrap();
        let so = mine(&result.baseline.sim.dataplane);
        let sa = mine(&result.final_sim.dataplane);
        let d = diff(&so, &sa, &result.baseline.real_hosts);
        assert_eq!(d.missing, 0, "functional equivalence ⇒ no spec lost");
        assert!((d.kept_ratio() - 1.0).abs() < 1e-12);
        assert!(
            d.introduced_fake_fraction() > 0.9,
            "introduced specs belong to fake hosts: {:.3}",
            d.introduced_fake_fraction()
        );
    }
}
