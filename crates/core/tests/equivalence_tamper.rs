//! Tamper-detection coverage for the functional-equivalence checker: every
//! class of forbidden modification must be caught by the append-only audit.

use confmask::equivalence::check_equivalence;
use confmask::simulate;
use confmask_netgen::smallnets::example_network;

fn base() -> (confmask::NetworkConfigs, confmask::DataPlane) {
    let net = example_network();
    let dp = simulate(&net).unwrap().dataplane;
    (net, dp)
}

fn check(tampered: &confmask::NetworkConfigs) -> confmask::equivalence::EquivalenceReport {
    let (orig, orig_dp) = base();
    let dp = simulate(tampered).unwrap().dataplane;
    check_equivalence(&orig, &orig_dp, tampered, &dp)
}

#[test]
fn deleting_a_network_statement_is_caught() {
    let (mut net, _) = base();
    net.routers
        .get_mut("r1")
        .unwrap()
        .ospf
        .as_mut()
        .unwrap()
        .networks
        .pop();
    let report = check(&net);
    assert!(!report.originals_untouched);
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("network statements")));
}

#[test]
fn editing_boilerplate_is_caught() {
    let (mut net, _) = base();
    net.routers.get_mut("r2").unwrap().extra_lines[0] = "version 12.4".into();
    let report = check(&net);
    assert!(!report.originals_untouched);
    assert!(report.violations.iter().any(|v| v.contains("uninterpreted")));
}

#[test]
fn deleting_a_router_is_caught() {
    let (mut net, _) = base();
    net.routers.remove("r3");
    let report = check(&net);
    assert!(!report.originals_untouched);
    assert!(!report.topology_preserved);
}

#[test]
fn modifying_a_host_is_caught() {
    let (mut net, _) = base();
    net.hosts.get_mut("h2").unwrap().address.0 = "10.101.0.77".parse().unwrap();
    let report = check(&net);
    assert!(!report.originals_untouched);
}

#[test]
fn reordering_original_interfaces_is_caught() {
    let (mut net, _) = base();
    let r1 = net.routers.get_mut("r1").unwrap();
    r1.interfaces.swap(0, 1);
    let report = check(&net);
    assert!(!report.originals_untouched, "order is part of the audit");
}

#[test]
fn pure_additions_pass_the_audit() {
    let (net, _) = base();
    let mut patcher = confmask_config::patch::Patcher::new(net.clone());
    patcher
        .add_interface("r1", "172.16.0.0".parse().unwrap(), 31, Some(7), None)
        .unwrap();
    patcher
        .ensure_deny_entry("r1", "Rej-x", "172.20.0.0/24".parse().unwrap())
        .unwrap();
    let (added, _) = patcher.into_parts();
    let report = check(&added);
    // The data plane is unchanged (interface has no peer, filter unbound),
    // originals are untouched, topology gains but loses nothing.
    assert!(report.holds(), "{:?}", report.violations);
}
