//! Strategy-conformance suite: invariants every registered [`Anonymizer`]
//! implementation must uphold, run over small non-RIP evaluation networks.
//!
//! Four contracts, per strategy:
//!
//! 1. **Reachability** — every real host pair reachable before
//!    anonymization stays reachable after (the one guarantee all
//!    strategies claim), and any *stronger* guarantee a strategy
//!    advertises (exact path preservation) actually holds.
//! 2. **Vendor round-trip** — the emitted configurations re-parse through
//!    every vendor codec, so any strategy's output can be shared in any
//!    supported dialect.
//! 3. **Seed determinism** — the same input and seed produce bit-identical
//!    output.
//! 4. **Thread independence** — the output does not depend on the executor
//!    width (1 worker vs 8), the same knob `CONFMASK_THREADS` sets.

use confmask::{anonymizer_for, AnonymizedNetwork, Params, Strategy};
use confmask_config::codec::{parse_host_as, parse_router_as, Vendor};
use confmask_config::NetworkConfigs;

/// The conformance networks: small, deterministic, and non-RIP (RIP has no
/// route-filter vocabulary, so strategies legitimately reject it).
fn conformance_networks() -> Vec<(&'static str, NetworkConfigs)> {
    vec![
        (
            "university (BGP+OSPF)",
            confmask_netgen::smallnets::example_network(),
        ),
        (
            "case-study FatTree-04 (OSPF)",
            confmask_netgen::smallnets::case_study_network(),
        ),
    ]
}

fn run(strategy: Strategy, net: &NetworkConfigs) -> AnonymizedNetwork {
    anonymizer_for(strategy)
        .anonymize(net, &Params::new(6, 2))
        .unwrap_or_else(|e| panic!("{strategy} must succeed on conformance nets: {e}"))
}

/// A stable fingerprint of everything a strategy shares: the emitted
/// configuration text plus the synthetic-element counts. Two runs conform
/// iff their fingerprints are byte-identical.
fn fingerprint(result: &AnonymizedNetwork) -> String {
    let mut out = format!(
        "strategy={} fake_r={} fake_l={} fake_h={}\n",
        result.strategy, result.fake_routers, result.fake_links, result.fake_hosts
    );
    for (name, cfg) in &result.configs.routers {
        out.push_str(&format!("== router {name} ==\n{}", cfg.emit()));
    }
    for (name, cfg) in &result.configs.hosts {
        out.push_str(&format!("== host {name} ==\n{}", cfg.emit()));
    }
    out
}

/// Restores the executor default on drop, so a panicking assertion cannot
/// leak a 1-worker override into the other tests of this binary.
struct ThreadGuard;
impl Drop for ThreadGuard {
    fn drop(&mut self) {
        confmask_exec::configure_threads(0);
    }
}

#[test]
fn every_strategy_preserves_real_host_reachability() {
    for (label, net) in conformance_networks() {
        for strategy in Strategy::ALL {
            let result = run(strategy, &net);
            assert_eq!(result.strategy, strategy);
            assert!(
                result.reachability_preserved(),
                "{strategy} breaks reachability on {label}"
            );
            let g = anonymizer_for(strategy).guarantees();
            assert_eq!(
                result.guarantees, g,
                "{strategy} result must carry its anonymizer's guarantees"
            );
            if g.exact_path_preservation {
                assert!(
                    result.paths_preserved(),
                    "{strategy} advertises exact path preservation but \
                     changed a path on {label}"
                );
            }
            if g.reachability_preservation {
                // Redundant with the blanket check above, but keeps the
                // guarantee flag honest if the blanket check ever weakens.
                assert!(result.reachability_preserved());
            }
        }
    }
}

#[test]
fn every_strategy_reparses_through_every_vendor_codec() {
    for (label, net) in conformance_networks() {
        for strategy in Strategy::ALL {
            let result = run(strategy, &net);
            for (name, cfg) in &result.configs.routers {
                for vendor in Vendor::ALL {
                    let text = cfg.emit_as(vendor);
                    parse_router_as(vendor, &text).unwrap_or_else(|e| {
                        panic!("{strategy}/{label}: router {name} does not re-parse as {vendor}: {e}")
                    });
                }
            }
            for (name, cfg) in &result.configs.hosts {
                for vendor in Vendor::ALL {
                    let text = cfg.emit_as(vendor);
                    parse_host_as(vendor, &text).unwrap_or_else(|e| {
                        panic!("{strategy}/{label}: host {name} does not re-parse as {vendor}: {e}")
                    });
                }
            }
        }
    }
}

#[test]
fn every_strategy_is_seed_deterministic_and_thread_count_independent() {
    let _guard = ThreadGuard;
    for (label, net) in conformance_networks() {
        for strategy in Strategy::ALL {
            confmask_exec::configure_threads(1);
            let first = fingerprint(&run(strategy, &net));
            let second = fingerprint(&run(strategy, &net));
            assert_eq!(
                first, second,
                "{strategy} is not deterministic under a fixed seed on {label}"
            );
            confmask_exec::configure_threads(8);
            let wide = fingerprint(&run(strategy, &net));
            assert_eq!(
                first, wide,
                "{strategy} output depends on the executor width on {label}"
            );
        }
    }
}

#[test]
fn distinct_seeds_change_randomized_strategies() {
    // Not a conformance requirement per se, but the complement of seed
    // determinism: the seed must actually thread through to the synthetic
    // elements, otherwise "deterministic" would be vacuous.
    let net = confmask_netgen::smallnets::example_network();
    for strategy in [Strategy::ConfMask, Strategy::NetCloak] {
        let a = fingerprint(
            &anonymizer_for(strategy)
                .anonymize(&net, &Params::new(6, 2).with_seed(1))
                .unwrap(),
        );
        let b = fingerprint(
            &anonymizer_for(strategy)
                .anonymize(&net, &Params::new(6, 2).with_seed(2))
                .unwrap(),
        );
        assert_ne!(a, b, "{strategy} ignores the seed");
    }
}
