//! Property tests for the PII address mapper: strict prefix preservation,
//! injectivity, and determinism over arbitrary inputs and keys.

use confmask::pii::AddrMapper;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The first differing bit position of any two addresses is exactly
    /// preserved — the defining property of Crypto-PAn-style mappings.
    #[test]
    fn strict_prefix_preservation(a in any::<u32>(), b in any::<u32>(), key in any::<u64>()) {
        let m = AddrMapper::new(key);
        let (ma, mb) = (
            u32::from(m.map_addr(Ipv4Addr::from(a))),
            u32::from(m.map_addr(Ipv4Addr::from(b))),
        );
        prop_assert_eq!((a ^ b).leading_zeros(), (ma ^ mb).leading_zeros());
    }

    /// Injectivity follows from prefix preservation, but check directly.
    #[test]
    fn injective(a in any::<u32>(), b in any::<u32>(), key in any::<u64>()) {
        prop_assume!(a != b);
        let m = AddrMapper::new(key);
        prop_assert_ne!(
            m.map_addr(Ipv4Addr::from(a)),
            m.map_addr(Ipv4Addr::from(b))
        );
    }

    /// Deterministic per key.
    #[test]
    fn deterministic(a in any::<u32>(), key in any::<u64>()) {
        let m1 = AddrMapper::new(key);
        let m2 = AddrMapper::new(key);
        prop_assert_eq!(m1.map_addr(Ipv4Addr::from(a)), m2.map_addr(Ipv4Addr::from(a)));
    }

    /// Prefix mapping commutes with address mapping: an address inside a
    /// prefix maps into the mapped prefix.
    #[test]
    fn prefix_mapping_commutes(bits in any::<u32>(), len in 0u8..=32, key in any::<u64>()) {
        let m = AddrMapper::new(key);
        let p = confmask_net_types::Ipv4Prefix::new(Ipv4Addr::from(bits), len).unwrap();
        let mp = m.map_prefix(p);
        prop_assert_eq!(mp.len(), p.len());
        // Sample a few member addresses.
        for i in [0u32, 1, p.size().saturating_sub(1)] {
            if let Some(addr) = p.addr(i) {
                prop_assert!(
                    mp.contains_addr(m.map_addr(addr)),
                    "{} in {} must map into {}", addr, p, mp
                );
            }
        }
    }
}
