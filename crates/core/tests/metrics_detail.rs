//! Detailed metric coverage: N_r grouping corner cases and path
//! preservation against partially broken data planes.

use confmask::metrics::{config_utility, path_preservation, route_anonymity};
use confmask_sim::{DataPlane, PathSet};
use std::collections::BTreeSet;

fn path(nodes: &[&str]) -> Vec<String> {
    nodes.iter().map(|s| s.to_string()).collect()
}

#[test]
fn route_anonymity_single_router_pairs() {
    // Paths whose ingress == egress router (two LANs on one router) form
    // their own (r, r) group.
    let mut dp = DataPlane::default();
    dp.insert(
        "h1".into(),
        "h2".into(),
        PathSet {
            paths: vec![path(&["h1", "r1", "h2"])],
            blackhole: false,
            has_loop: false,
        },
    );
    let nr = route_anonymity(&dp);
    assert_eq!(nr.per_pair.len(), 1);
    assert_eq!(nr.per_pair[&("r1".to_string(), "r1".to_string())], 1);
}

#[test]
fn route_anonymity_directional_groups() {
    // (r1, r2) and (r2, r1) are distinct ingress/egress groups.
    let mut dp = DataPlane::default();
    dp.insert(
        "a".into(),
        "b".into(),
        PathSet {
            paths: vec![path(&["a", "r1", "r2", "b"])],
            blackhole: false,
            has_loop: false,
        },
    );
    dp.insert(
        "b".into(),
        "a".into(),
        PathSet {
            paths: vec![path(&["b", "r2", "r1", "a"])],
            blackhole: false,
            has_loop: false,
        },
    );
    let nr = route_anonymity(&dp);
    assert_eq!(nr.per_pair.len(), 2);
}

#[test]
fn path_preservation_counts_blackholes_as_lost() {
    let mut orig = DataPlane::default();
    orig.insert(
        "h1".into(),
        "h2".into(),
        PathSet {
            paths: vec![path(&["h1", "r1", "h2"])],
            blackhole: false,
            has_loop: false,
        },
    );
    let mut broken = DataPlane::default();
    broken.insert(
        "h1".into(),
        "h2".into(),
        PathSet {
            paths: vec![],
            blackhole: true,
            has_loop: false,
        },
    );
    let hosts: BTreeSet<String> = ["h1".to_string(), "h2".to_string()].into();
    assert_eq!(path_preservation(&orig, &broken, &hosts), 0.0);
    // A missing pair also counts as lost.
    let empty = DataPlane::default();
    assert_eq!(path_preservation(&orig, &empty, &hosts), 0.0);
}

#[test]
fn config_utility_saturates() {
    assert_eq!(config_utility(100, 0), 1.0);
    assert!(config_utility(100, 100) <= 0.0 + 1e-12);
}

#[test]
fn route_anonymity_counts_cross_host_duplicates_once() {
    // Two different host pairs with the SAME router sequence contribute a
    // single distinct path to the group.
    let seq = ["r1", "r2", "r3"];
    let mut dp = DataPlane::default();
    for (s, d) in [("a", "x"), ("b", "y")] {
        let mut p = vec![s.to_string()];
        p.extend(seq.iter().map(|r| r.to_string()));
        p.push(d.to_string());
        dp.insert(
            s.into(),
            d.into(),
            PathSet {
                paths: vec![p],
                blackhole: false,
                has_loop: false,
            },
        );
    }
    let nr = route_anonymity(&dp);
    assert_eq!(nr.per_pair[&("r1".to_string(), "r3".to_string())], 1);
}
