//! Strategy-pluggable anonymization (DESIGN.md §15).
//!
//! ConfMask is evaluated head-to-head against NetHide in the paper, and
//! against NetCloak in follow-up work — three algorithms with genuinely
//! different privacy/utility/runtime trade-offs. This module puts all
//! three behind one [`Anonymizer`] trait so the CLI, the serve daemon,
//! and the benchmark harness can select a strategy by name and compare
//! apples to apples:
//!
//! | strategy   | exact paths | reachability | plausible topology | config-level sharing |
//! |------------|-------------|--------------|--------------------|----------------------|
//! | `confmask` | ✓           | ✓            | ✓                  | ✓                    |
//! | `nethide`  | ✗           | ✓            | ✗                  | ✗ (topology-level)   |
//! | `netcloak` | ✓           | ✓            | ✓                  | ✓                    |
//!
//! Each implementation reports its own [`Guarantees`] — callers that need
//! a specific invariant (say, exact path preservation for a debugging
//! workflow) can filter strategies by capability instead of hard-coding
//! names.

use crate::error::Error;
use crate::params::Params;
use crate::pipeline::{anonymize, Anonymized};
use confmask_config::patch::{LineLedger, Patcher};
use confmask_config::NetworkConfigs;
use confmask_net_types::PrefixAllocator;
use confmask_sim::DataPlane;
use confmask_topology::extract::extract_topology;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// The anonymization strategies the workspace implements.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Strategy {
    /// The source paper's pipeline: fake links + route filters + fake
    /// hosts, exact path preservation (Definition 3.3).
    ConfMask,
    /// NetHide \[30\]: virtual topology served at the topology level;
    /// forwarding recomputed, so most exact paths are lost.
    NetHide,
    /// NetCloak (arXiv 2504.14959): dynamic topology expansion with
    /// generated cloak-router configs; preservation by construction.
    NetCloak,
}

impl Strategy {
    /// Every strategy, in presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::ConfMask, Strategy::NetHide, Strategy::NetCloak];

    /// Stable wire/CLI name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ConfMask => "confmask",
            Strategy::NetHide => "nethide",
            Strategy::NetCloak => "netcloak",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "confmask" => Ok(Strategy::ConfMask),
            "nethide" => Ok(Strategy::NetHide),
            "netcloak" => Ok(Strategy::NetCloak),
            other => Err(format!(
                "unknown strategy '{other}' (expected confmask, nethide, or netcloak)"
            )),
        }
    }
}

/// What a strategy promises about its output — the capability metadata the
/// trait exposes so callers can select by guarantee instead of by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Guarantees {
    /// Every real host pair keeps its exact (multi)path set.
    pub exact_path_preservation: bool,
    /// Every real host pair that could reach each other still can.
    pub reachability_preservation: bool,
    /// Added elements carry complete, protocol-consistent configurations
    /// (an attacker reading the files cannot tell fake from real by
    /// structural inspection).
    pub plausible_topology: bool,
    /// The output is a shareable set of configuration files (vs a
    /// topology-level view served by a middlebox).
    pub config_level_sharing: bool,
}

/// The strategy-independent result: what every [`Anonymizer`] returns.
#[derive(Debug, Clone)]
pub struct AnonymizedNetwork {
    /// Which strategy produced this result.
    pub strategy: Strategy,
    /// The anonymized configurations (for NetHide, the materialized
    /// virtual topology — see [`NetHideStrategy`]).
    pub configs: NetworkConfigs,
    /// Added-lines accounting.
    pub ledger: LineLedger,
    /// Data plane of the original network.
    pub baseline_dataplane: DataPlane,
    /// Data plane the strategy reports for the anonymized network (for
    /// NetHide this is the *virtual* forwarding view, per the paper).
    pub dataplane: DataPlane,
    /// The real hosts of the input network.
    pub real_hosts: BTreeSet<String>,
    /// Fake routers added.
    pub fake_routers: usize,
    /// Fake links added.
    pub fake_links: usize,
    /// Fake hosts added.
    pub fake_hosts: usize,
    /// The producing strategy's guarantees.
    pub guarantees: Guarantees,
    /// Wall-clock time of the anonymization.
    pub wall: Duration,
    /// The full ConfMask pipeline result, when `strategy == ConfMask` —
    /// callers needing stage statistics or the degradation report reach
    /// through this instead of re-running.
    pub confmask: Option<Box<Anonymized>>,
}

impl AnonymizedNetwork {
    /// Whether every real host pair kept its exact path set.
    pub fn paths_preserved(&self) -> bool {
        self.dataplane
            .equivalent_on(&self.baseline_dataplane, &self.real_hosts)
    }

    /// Whether every real host pair reachable in the original network is
    /// still reachable — the invariant *all* strategies promise.
    pub fn reachability_preserved(&self) -> bool {
        self.real_hosts.iter().all(|s| {
            self.real_hosts.iter().all(|d| {
                s == d
                    || self.baseline_dataplane.between(s, d).is_none()
                    || self.dataplane.between(s, d).is_some()
            })
        })
    }

    /// Fraction of real host pairs whose exact path set is kept
    /// (the Figure 8 metric, computable for any strategy).
    pub fn kept_path_ratio(&self) -> f64 {
        let mut total = 0usize;
        let mut kept = 0usize;
        for s in &self.real_hosts {
            for d in &self.real_hosts {
                if s == d {
                    continue;
                }
                let before = self.baseline_dataplane.between(s, d);
                if before.is_none() {
                    continue;
                }
                total += 1;
                if self.dataplane.between(s, d).map(|p| &p.paths) == before.map(|p| &p.paths) {
                    kept += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            kept as f64 / total as f64
        }
    }
}

/// A pluggable anonymization strategy.
pub trait Anonymizer {
    /// The strategy's identity.
    fn strategy(&self) -> Strategy;

    /// What this strategy promises about its output.
    fn guarantees(&self) -> Guarantees;

    /// Anonymizes `network` under `params`.
    fn anonymize(&self, network: &NetworkConfigs, params: &Params)
        -> Result<AnonymizedNetwork, Error>;
}

/// Returns the [`Anonymizer`] implementing `strategy`.
pub fn anonymizer_for(strategy: Strategy) -> &'static dyn Anonymizer {
    match strategy {
        Strategy::ConfMask => &ConfMaskStrategy,
        Strategy::NetHide => &NetHideStrategy,
        Strategy::NetCloak => &NetCloakStrategy,
    }
}

/// Registers every `anon.strategy.*` metric (and the `netcloak.*` set) at
/// zero, so reports enumerate the full key set whether or not a strategy
/// ran.
pub fn register_strategy_metrics() {
    for s in Strategy::ALL {
        confmask_obs::counter_add(runs_metric(s), 0);
        confmask_obs::counter_add(failures_metric(s), 0);
        confmask_obs::histogram_register(wall_metric(s));
    }
    confmask_netcloak::register_metrics();
}

fn runs_metric(s: Strategy) -> &'static str {
    match s {
        Strategy::ConfMask => "anon.strategy.confmask.runs",
        Strategy::NetHide => "anon.strategy.nethide.runs",
        Strategy::NetCloak => "anon.strategy.netcloak.runs",
    }
}

fn failures_metric(s: Strategy) -> &'static str {
    match s {
        Strategy::ConfMask => "anon.strategy.confmask.failures",
        Strategy::NetHide => "anon.strategy.nethide.failures",
        Strategy::NetCloak => "anon.strategy.netcloak.failures",
    }
}

fn wall_metric(s: Strategy) -> &'static str {
    match s {
        Strategy::ConfMask => "anon.strategy.confmask.wall_ms",
        Strategy::NetHide => "anon.strategy.nethide.wall_ms",
        Strategy::NetCloak => "anon.strategy.netcloak.wall_ms",
    }
}

fn record_run(s: Strategy, wall: Duration) {
    confmask_obs::counter_add(runs_metric(s), 1);
    confmask_obs::observe(wall_metric(s), wall.as_millis() as u64);
}

/// The source paper's pipeline behind the trait.
pub struct ConfMaskStrategy;

impl Anonymizer for ConfMaskStrategy {
    fn strategy(&self) -> Strategy {
        Strategy::ConfMask
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees {
            exact_path_preservation: true,
            reachability_preservation: true,
            plausible_topology: true,
            config_level_sharing: true,
        }
    }

    fn anonymize(
        &self,
        network: &NetworkConfigs,
        params: &Params,
    ) -> Result<AnonymizedNetwork, Error> {
        let start = Instant::now();
        let r = anonymize(network, params).inspect_err(|_| {
            confmask_obs::counter_add(failures_metric(Strategy::ConfMask), 1);
        })?;
        let wall = start.elapsed();
        record_run(Strategy::ConfMask, wall);
        Ok(AnonymizedNetwork {
            strategy: Strategy::ConfMask,
            configs: r.configs.clone(),
            ledger: r.ledger,
            baseline_dataplane: r.baseline.sim.dataplane.clone(),
            dataplane: r.final_sim.dataplane.clone(),
            real_hosts: r.baseline.real_hosts.clone(),
            fake_routers: r.scale.fake_routers.len(),
            fake_links: r.fake_links.len(),
            fake_hosts: r.configs.hosts.len().saturating_sub(network.hosts.len()),
            guarantees: self.guarantees(),
            wall,
            confmask: Some(Box::new(r)),
        })
    }
}

/// The NetHide baseline behind the trait.
///
/// NetHide is a topology-level system — it serves a virtual forwarding
/// view rather than sharing files. To make its output comparable (and
/// re-parseable through the vendor codecs, which the conformance suite
/// requires of every strategy), this adapter *materializes* the virtual
/// links into configuration interfaces with default link-state costs —
/// exactly the "default cost" strawman of §3.2, which is why NetHide does
/// not preserve exact paths. The reported `dataplane` is NetHide's own
/// virtual single-shortest-path view, matching the Figures 8–9
/// comparison.
pub struct NetHideStrategy;

impl Anonymizer for NetHideStrategy {
    fn strategy(&self) -> Strategy {
        Strategy::NetHide
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees {
            exact_path_preservation: false,
            reachability_preservation: true,
            plausible_topology: false,
            config_level_sharing: false,
        }
    }

    fn anonymize(
        &self,
        network: &NetworkConfigs,
        params: &Params,
    ) -> Result<AnonymizedNetwork, Error> {
        let start = Instant::now();
        let run = || -> Result<AnonymizedNetwork, Error> {
            let sim = confmask_sim::simulate(network)?;
            let topo = extract_topology(network);
            let nh = confmask_nethide::obfuscate(&topo, params.k_r, params.seed).map_err(
                |confmask_nethide::NetHideError::Anonymization(e)| Error::Topology(e),
            )?;

            let mut patcher = Patcher::new(network.clone());
            let mut alloc = PrefixAllocator::new(network.used_prefixes());
            for (a, b) in &nh.added_links {
                let (prefix, lo, hi) = alloc
                    .allocate_p2p()
                    .map_err(|e| Error::InvalidInput(format!("nethide link allocation: {e}")))?;
                patcher.add_interface(a, lo, 31, None, Some(format!("to-{b}")))?;
                patcher.add_interface(b, hi, 31, None, Some(format!("to-{a}")))?;
                patcher.enable_network(a, prefix, false)?;
                patcher.enable_network(b, prefix, false)?;
            }
            let (configs, ledger) = patcher.into_parts();

            Ok(AnonymizedNetwork {
                strategy: Strategy::NetHide,
                configs,
                ledger,
                baseline_dataplane: sim.dataplane,
                dataplane: nh.dataplane,
                real_hosts: network.hosts.keys().cloned().collect(),
                fake_routers: 0,
                fake_links: nh.added_links.len(),
                fake_hosts: 0,
                guarantees: self.guarantees(),
                wall: start.elapsed(),
                confmask: None,
            })
        };
        let out = run().inspect_err(|_| {
            confmask_obs::counter_add(failures_metric(Strategy::NetHide), 1);
        })?;
        record_run(Strategy::NetHide, out.wall);
        Ok(out)
    }
}

/// The NetCloak expansion behind the trait.
pub struct NetCloakStrategy;

impl Anonymizer for NetCloakStrategy {
    fn strategy(&self) -> Strategy {
        Strategy::NetCloak
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees {
            exact_path_preservation: true,
            reachability_preservation: true,
            plausible_topology: true,
            config_level_sharing: true,
        }
    }

    fn anonymize(
        &self,
        network: &NetworkConfigs,
        params: &Params,
    ) -> Result<AnonymizedNetwork, Error> {
        let start = Instant::now();
        let r = confmask_netcloak::expand(network, params.k_r, params.seed)
            .map_err(|e| match e {
                confmask_netcloak::NetCloakError::Sim(e) => Error::Sim(e),
                confmask_netcloak::NetCloakError::Patch(e) => Error::Patch(e),
                confmask_netcloak::NetCloakError::Alloc(m)
                | confmask_netcloak::NetCloakError::Unsupported(m) => Error::InvalidInput(m),
                confmask_netcloak::NetCloakError::NotPreserved(m) => Error::EquivalenceViolated(m),
            })
            .inspect_err(|_| {
                confmask_obs::counter_add(failures_metric(Strategy::NetCloak), 1);
            })?;
        let wall = start.elapsed();
        record_run(Strategy::NetCloak, wall);
        Ok(AnonymizedNetwork {
            strategy: Strategy::NetCloak,
            configs: r.configs,
            ledger: r.ledger,
            baseline_dataplane: r.baseline_dataplane,
            dataplane: r.dataplane,
            real_hosts: r.real_hosts,
            fake_routers: r.cloak_routers.len(),
            fake_links: r.cloak_links.len(),
            fake_hosts: r.cloak_hosts.len(),
            guarantees: self.guarantees(),
            wall,
            confmask: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
        }
        assert!("netHide".parse::<Strategy>().is_err());
        assert!("".parse::<Strategy>().is_err());
    }

    #[test]
    fn registry_returns_matching_strategy() {
        for s in Strategy::ALL {
            assert_eq!(anonymizer_for(s).strategy(), s);
        }
    }

    #[test]
    fn guarantee_matrix_is_as_documented() {
        let g = anonymizer_for(Strategy::ConfMask).guarantees();
        assert!(g.exact_path_preservation && g.config_level_sharing);
        let g = anonymizer_for(Strategy::NetHide).guarantees();
        assert!(!g.exact_path_preservation && g.reachability_preservation);
        let g = anonymizer_for(Strategy::NetCloak).guarantees();
        assert!(g.exact_path_preservation && g.plausible_topology);
    }

    #[test]
    fn nethide_adapter_materializes_reparseable_configs() {
        let net = confmask_netgen::smallnets::example_network();
        let out = anonymizer_for(Strategy::NetHide)
            .anonymize(&net, &Params::new(3, 2))
            .unwrap();
        assert!(out.fake_links > 0);
        assert!(out.reachability_preserved());
        // The materialized configs are ordinary files that re-parse.
        for rc in out.configs.routers.values() {
            let text = rc.emit();
            let back = confmask_config::parse_router(&text).unwrap();
            assert_eq!(back.hostname, rc.hostname);
        }
    }

    #[test]
    fn netcloak_adapter_preserves_exact_paths() {
        let net = confmask_netgen::smallnets::example_network();
        let out = anonymizer_for(Strategy::NetCloak)
            .anonymize(&net, &Params::new(3, 2))
            .unwrap();
        assert!(out.paths_preserved());
        assert!(out.fake_routers >= 2);
        assert!((out.kept_path_ratio() - 1.0).abs() < 1e-12);
    }
}
