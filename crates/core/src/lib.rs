//! # ConfMask — privacy-preserving configuration sharing via anonymization
//!
//! A from-scratch Rust reproduction of *ConfMask: Enabling
//! Privacy-Preserving Configuration Sharing via Anonymization* (SIGCOMM
//! 2024). ConfMask takes a network's configuration files and produces an
//! anonymized version that:
//!
//! * hides the **topology** (k-degree anonymity on router degrees,
//!   Definition 3.1) by adding fake links,
//! * hides the **routing paths** (k-route anonymity, Definition 3.2) by
//!   adding fake hosts and randomized route filters,
//! * while preserving **functional equivalence** (Definition 3.3): every
//!   host-to-host forwarding path of the original network is preserved
//!   *exactly*, so reachability, waypointing, path lengths, multipath
//!   consistency, black holes and routing loops are all preserved
//!   (Theorem B.7).
//!
//! ## Quick start
//!
//! ```
//! use confmask::{anonymize, Params};
//!
//! let network = confmask_netgen::smallnets::example_network();
//! let result = anonymize(&network, &Params::default()).unwrap();
//!
//! // Functional equivalence holds: all original paths kept exactly.
//! assert!(result.functionally_equivalent());
//! // The anonymized configurations are ordinary config files.
//! let some_router = result.configs.routers.values().next().unwrap();
//! println!("{}", some_router.emit());
//! ```
//!
//! ## Pipeline (Figure 3 of the paper)
//!
//! 1. **Preprocess** ([`preprocess`]): simulate the original network,
//!    recording its topology and data plane as the baseline.
//! 2. **Topology anonymization** ([`topo_anon`], §4.2): Liu–Terzi k-degree
//!    anonymization per AS plus AS-level supergraph anonymization; fake
//!    links are realized as new interfaces with link-state costs set to the
//!    original `min_cost` between their endpoints (the link-state SFE
//!    condition of §5.1).
//! 3. **Route equivalence** ([`route_equiv`], Algorithm 1, §5.2): iterated
//!    local FIB-table scans add route filters on fake links until the data
//!    plane matches the original exactly.
//! 4. **Route anonymization** ([`route_anon`], Algorithm 2, §5.3): `k_H − 1`
//!    fake hosts per real host plus randomized filters diversify the routes
//!    between every ingress/egress router pair without breaking
//!    reachability.
//!
//! The [`strawman`] module implements the two baseline approaches of §4.3
//! that the evaluation compares against, and [`metrics`] computes every
//! number the paper reports (N_r, k_d, CC, U_C, P_U).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod equivalence;
mod error;
mod job;
pub mod metrics;
mod params;
pub mod pii;
mod pipeline;
pub mod preprocess;
pub mod resilience;
pub mod route_anon;
pub mod route_equiv;
pub mod scale;
pub mod strategy;
pub mod strawman;
pub mod topo_anon;

pub use error::Error;
pub use confmask_config::Vendor;
pub use job::{
    content_key, content_key_as, content_key_with, run_job, run_job_as, run_job_with,
    ArtifactFile, JobOutcome, JobSpec, JobSummary,
};
pub use params::{CostStrategy, EquivalenceMode, Params};
pub use pipeline::{
    anonymize, Anonymized, AttemptRecord, DegradationReport, StageSample, STAGE_SPAN_PREFIX,
};
pub use resilience::{verify_failure_equivalence, FailureEquivalenceReport};
pub use strategy::{
    anonymizer_for, register_strategy_metrics, AnonymizedNetwork, Anonymizer, Guarantees, Strategy,
};

// Re-exports so downstream users need only this crate.
pub use confmask_config::{patch::LineLedger, NetworkConfigs};
pub use confmask_sim::{simulate, DataPlane, Simulation};
