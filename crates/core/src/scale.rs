//! Network-scale obfuscation (§9): hiding the number of routers.
//!
//! The paper's core pipeline never changes `|R|` (not treating it as a key
//! attribute, §2.2), but notes that "our theoretical proof of functional
//! equivalence does not require the set of routers to remain unchanged …
//! ConfMask is extendable with graph anonymization algorithms that modify
//! the number of nodes" [12, 41], and names the open problem: "how to
//! auto-generate new configuration files for the additional routers while
//! keeping them indistinguishable from the human-configured routers". This
//! module is that extension:
//!
//! * fake routers are cloned from a template router's *shape* (protocol
//!   blocks, management boilerplate with the hostname substituted) and
//!   named following the network's own naming convention;
//! * each fake router attaches to a randomly chosen real router; the link
//!   cost is `⌈Δ/2⌉` where `Δ` is the original network's cost diameter, so
//!   **any** path through fake routers costs at least `Δ` and can never
//!   undercut an original path (the SFE condition 2 of §5.1 holds by
//!   construction: `cost ≥ min_cost`, with equality handled by Algorithm 1's
//!   filters);
//! * each fake router gets one fake host so its links carry traffic — a
//!   fake router whose links are idle would fall to the dead-link detector
//!   ([`crate::attacks::dead_link_detection`]).
//!
//! The fake routers then participate in topology anonymization like any
//! other node (Definition 3.1 is evaluated over the whole router set).

use crate::preprocess::Baseline;
use crate::Error;
use confmask_config::patch::Patcher;
use confmask_net_types::PrefixAllocator;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Outcome of the scale-obfuscation stage.
#[derive(Debug, Clone, Default)]
pub struct ScaleOutcome {
    /// Names of the fake routers created.
    pub fake_routers: Vec<String>,
    /// Names of the liveness fake hosts attached to them.
    pub fake_hosts: Vec<String>,
}

/// Half the original cost diameter, rounded up — the fake-router link cost
/// that guarantees no shortcut (see module docs).
pub(crate) fn safe_stub_cost(base: &Baseline) -> u32 {
    let paths = confmask_sim::ospf::router_paths(&base.sim.net);
    let diameter = paths
        .dist
        .iter()
        .flatten()
        .copied()
        .filter(|&d| d != u64::MAX)
        .max()
        .unwrap_or(0);
    u32::try_from(diameter.div_ceil(2)).unwrap_or(u32::MAX).max(1)
}

/// Derives a blending name: the most common alphabetic prefix among router
/// names, with the next free number.
fn blending_names(existing: &BTreeSet<String>, count: usize) -> Vec<String> {
    let stem = |name: &str| -> String {
        name.chars()
            .take_while(|c| c.is_alphabetic())
            .collect::<String>()
    };
    let mut freq: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for name in existing {
        let s = stem(name);
        if !s.is_empty() {
            *freq.entry(s).or_insert(0) += 1;
        }
    }
    let prefix = freq
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(p, _)| p)
        .unwrap_or_else(|| "rtr".to_string());

    let mut names = Vec::with_capacity(count);
    let mut n = existing.len();
    while names.len() < count {
        let candidate = format!("{prefix}{n}");
        if !existing.contains(&candidate) && !names.contains(&candidate) {
            names.push(candidate);
        }
        n += 1;
    }
    names
}

/// Adds `count` fake routers (with one liveness host each) to the network.
///
/// Runs *before* topology anonymization, so the fake routers participate in
/// the k-degree plan like ordinary nodes.
pub fn obfuscate_scale<R: Rng>(
    patcher: &mut Patcher,
    alloc: &mut PrefixAllocator,
    base: &Baseline,
    count: usize,
    rng: &mut R,
) -> Result<ScaleOutcome, Error> {
    let mut out = ScaleOutcome::default();
    if count == 0 {
        return Ok(out);
    }

    let real_routers: Vec<String> = patcher.network().routers.keys().cloned().collect();
    let existing: BTreeSet<String> = real_routers.iter().cloned().collect();
    let names = blending_names(&existing, count);
    let stub_cost = safe_stub_cost(base);

    for name in names {
        let attach = real_routers
            .choose(rng)
            .expect("networks have routers")
            .clone();
        patcher.add_fake_router(&name, &attach)?;

        // The stub link: a fresh /31, the fake side named like a first
        // interface, the real side like any other addition.
        let (prefix, lo, hi) = alloc
            .allocate_p2p()
            .map_err(|e| Error::InvalidInput(format!("address space exhausted: {e}")))?;
        let runs_ospf = patcher.network().routers[&name].ospf.is_some();
        let cost = runs_ospf.then_some(stub_cost);
        let fake_iface = patcher.fresh_fake_router_iface_name(&name);
        patcher.add_interface_named(
            &name,
            &fake_iface,
            lo,
            31,
            cost,
            Some(format!("to-{attach}")),
        )?;
        patcher.add_interface(&attach, hi, 31, cost, Some(format!("to-{name}")))?;
        patcher.enable_network(&name, prefix, false)?;
        patcher.enable_network(&attach, prefix, false)?;

        // Liveness host: the fake router's links must carry traffic.
        let lan = alloc
            .allocate(24)
            .map_err(|e| Error::InvalidInput(format!("address space exhausted: {e}")))?;
        let advertise_in_bgp = patcher.network().routers[&name].bgp.is_some();
        let host_name = format!("{name}-h0");
        patcher.add_fake_host(&name, &host_name, lan, advertise_in_bgp)?;
        out.fake_hosts.push(host_name);
        out.fake_routers.push(name);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use confmask_netgen::smallnets::example_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(count: usize) -> (Patcher, ScaleOutcome) {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(5);
        let out = obfuscate_scale(&mut patcher, &mut alloc, &base, count, &mut rng).unwrap();
        (patcher, out)
    }

    #[test]
    fn adds_routers_with_blending_names() {
        let (patcher, out) = run(3);
        assert_eq!(out.fake_routers.len(), 3);
        assert_eq!(patcher.network().routers.len(), 7);
        for name in &out.fake_routers {
            // Follows the dominant "r<N>" convention of the example net.
            assert!(name.starts_with('r'), "{name}");
            let rc = &patcher.network().routers[name];
            assert!(rc.added, "{name} carries the provenance flag");
            // First interface looks ordinary.
            assert!(rc.interfaces[0].name.starts_with("Ethernet0/"));
            // It inherited the management boilerplate with its own hostname.
            assert!(rc
                .extra_lines
                .iter()
                .any(|l| l.contains(&format!("{name}.example.net"))));
        }
    }

    #[test]
    fn fake_routers_get_liveness_hosts() {
        let (patcher, out) = run(2);
        assert_eq!(out.fake_hosts.len(), 2);
        for h in &out.fake_hosts {
            assert!(patcher.network().hosts[h].added);
        }
    }

    #[test]
    fn stub_cost_covers_the_diameter() {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        // Example network diameter: r1→r4 costs 1+1+10 = 12 → stub cost 6;
        // two stub hops cost 12 ≥ any original min_cost.
        assert_eq!(safe_stub_cost(&base), 6);
    }

    #[test]
    fn zero_count_is_a_no_op() {
        let (patcher, out) = run(0);
        assert!(out.fake_routers.is_empty());
        assert_eq!(patcher.network().routers.len(), 4);
        assert_eq!(patcher.ledger().router_lines, 0);
    }

    #[test]
    fn ledger_counts_router_files() {
        let (patcher, _) = run(2);
        assert!(patcher.ledger().router_lines > 0);
        assert!(patcher.ledger().host_lines > 0);
    }
}
