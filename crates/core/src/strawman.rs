//! The two strawman route-equivalence baselines of §4.3, used by the
//! evaluation (Figures 10 and 16).
//!
//! * **Strawman 1** — "simply dropping all incoming host prefixes on every
//!   fake interface": one shot, no iteration. Fast, correct, but every fake
//!   attachment point carries the *same* deny-list of every host prefix — a
//!   unified pattern an adversary can use to identify the fake interfaces
//!   (and it injects far more filter lines, Figure 10 R).
//! * **Strawman 2** — traceroute-driven: per iteration, compare
//!   `traceroute(h_a, h_b)` against the original for every host pair, find
//!   the first wrong hop *closest to the destination*, and filter the
//!   destination prefix there. Fixes one hop per pair per iteration
//!   (Figure 4c), so it needs many more simulations than Algorithm 1 —
//!   the paper measures it 8–100× slower end to end.

use crate::preprocess::Baseline;
use crate::route_equiv::{deny_next_hop, EquivOutcome};
use crate::topo_anon::FakeLink;
use crate::Error;
use confmask_config::patch::Patcher;
use confmask_sim::{simulate, NextHop};
use std::collections::BTreeSet;

/// Strawman 1: deny every original host prefix at every fake attachment
/// point, in one pass.
pub fn strawman1(
    patcher: &mut Patcher,
    base: &Baseline,
    _fake_links: &[FakeLink],
) -> Result<EquivOutcome, Error> {
    let mut out = EquivOutcome::default();
    let host_prefixes: Vec<_> = base
        .sim
        .net
        .destinations
        .iter()
        .map(|(p, _)| *p)
        .collect();

    // Collect fake attachment points from the patched configs: added
    // interfaces on router-router links, and added BGP neighbors.
    let routers: Vec<String> = patcher.network().routers.keys().cloned().collect();
    for rname in routers {
        let rc = patcher.network().routers[&rname].clone();
        // Added point-to-point interfaces (fake links are /31s; fake host
        // LANs do not exist yet at this stage, but be conservative and
        // only take /31s).
        let fake_ifaces: Vec<String> = rc
            .interfaces
            .iter()
            .filter(|i| i.added && i.address.map(|(_, l)| l) == Some(31))
            .map(|i| i.name.clone())
            .collect();
        for iface in fake_ifaces {
            let list = format!("RejAll-{iface}");
            for p in &host_prefixes {
                if patcher.ensure_deny_entry(&rname, &list, *p)? {
                    out.filters_added += 1;
                }
            }
            patcher.bind_igp_filter(&rname, &list, &iface)?;
        }
        let fake_neighbors: Vec<_> = rc
            .bgp
            .iter()
            .flat_map(|b| b.neighbors.iter())
            .filter(|n| n.added)
            .map(|n| n.addr)
            .collect();
        for addr in fake_neighbors {
            let list = format!("RejAll-{addr}");
            for p in &host_prefixes {
                if patcher.ensure_deny_entry(&rname, &list, *p)? {
                    out.filters_added += 1;
                }
            }
            patcher.bind_bgp_filter(&rname, &list, addr)?;
        }
    }

    out.iterations = 1;
    out.sim_calls = 1; // the verification sim in the pipeline
    Ok(out)
}

/// Strawman 2: traceroute-and-patch until the data plane matches.
pub fn strawman2(
    patcher: &mut Patcher,
    base: &Baseline,
    fake_links: &[FakeLink],
) -> Result<EquivOutcome, Error> {
    let mut out = EquivOutcome::default();
    // S2 converges much more slowly than Algorithm 1; give it a generous
    // but finite budget.
    let bound = 10 * (fake_links.len() + 5);

    for iter in 0..bound {
        out.iterations = iter + 1;
        // S2 needs full traceroutes, i.e. the data plane, every iteration.
        let sim = simulate(patcher.network())?;
        out.sim_calls += 1;

        let mut changes = 0;
        for ((src, dst), new_ps) in sim.dataplane.pairs() {
            if !base.real_hosts.contains(src) || !base.real_hosts.contains(dst) {
                continue;
            }
            let orig_ps = base
                .sim
                .dataplane
                .between(src, dst)
                .expect("pair exists in the original");
            if new_ps == orig_ps {
                continue;
            }
            // First new path that is not an original path.
            let Some(bad) = new_ps.paths.iter().find(|p| !orig_ps.paths.contains(p)) else {
                continue; // paths lost rather than added: upstream fix pending
            };
            let dst_prefix = sim
                .net
                .host(sim.net.host_id(dst).expect("host exists"))
                .prefix;
            // Walk backward from the first wrong hop toward the source
            // until we find a hop whose next hop is not an original next
            // hop of that router — filtering there cannot break any
            // pair's correct routing. (The paper's description assumes the
            // first wrong hop is that hop; when the divergence merely
            // *transits* an original link, the real culprit is upstream.)
            let start = first_wrong_hop_index(bad, &orig_ps.paths);
            for i in (1..=start).rev() {
                let (r_i, r_next) = (&bad[i], &bad[i + 1]);
                if sim.net.router_id(r_next).is_none() {
                    continue; // r_next is the destination host
                }
                let orig_rid = base.sim.net.router_id(r_i).expect("router exists");
                let orig_next: BTreeSet<String> = base
                    .sim
                    .fibs
                    .of(orig_rid)
                    .entry(&dst_prefix)
                    .map(|e| {
                        e.next_hops
                            .iter()
                            .filter_map(|nh| nh.router())
                            .map(|r| base.sim.net.router(r).name.clone())
                            .collect()
                    })
                    .unwrap_or_default();
                if orig_next.contains(r_next) {
                    continue;
                }
                // Find the FIB next hop of r_i toward r_next and deny it.
                let rid = sim.net.router_id(r_i).expect("router exists");
                if let Some(entry) = sim.fibs.of(rid).entry(&dst_prefix) {
                    let hop = entry.next_hops.iter().find(|nh| {
                        nh.router()
                            .map(|r| &sim.net.router(r).name == r_next)
                            .unwrap_or(false)
                    });
                    if let Some(nh @ NextHop::Forward { .. }) = hop {
                        if deny_next_hop(patcher, &sim.net, r_i, nh, dst_prefix)? {
                            changes += 1;
                            out.filters_added += 1;
                            break;
                        }
                    }
                }
            }
        }
        if changes == 0 {
            return Ok(out);
        }
    }
    Err(Error::EquivalenceDiverged { iterations: bound })
}

/// Index `i` of the first wrong hop `r_i = path[i]` closest to the
/// destination: walking backward, the first node of `path` that diverges
/// from every original path's suffix.
fn first_wrong_hop_index(path: &[String], originals: &[Vec<String>]) -> usize {
    // Longest suffix of `path` that is a suffix of some original path.
    let len = path.len();
    let mut k = 1; // the destination host always matches
    'grow: while k < len {
        let suffix = &path[len - (k + 1)..];
        for orig in originals {
            if orig.len() >= suffix.len() && orig[orig.len() - suffix.len()..] == *suffix {
                k += 1;
                continue 'grow;
            }
        }
        break;
    }
    len.saturating_sub(k + 1)
}

/// Convenience wrapper returning `(r_i, r_{i+1})` names (used in tests and
/// mirroring the paper's Figure 4 narration).
#[cfg(test)]
fn first_wrong_hop(path: &[String], originals: &[Vec<String>]) -> Option<(String, String)> {
    let i = first_wrong_hop_index(path, originals);
    if i == 0 || i + 1 >= path.len() {
        return None;
    }
    Some((path[i].clone(), path[i + 1].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use crate::topo_anon::anonymize_topology;
    use confmask_net_types::PrefixAllocator;
    use confmask_netgen::smallnets::example_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Patcher, crate::preprocess::Baseline, Vec<FakeLink>) {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(seed);
        let links = anonymize_topology(&mut patcher, &mut alloc, &base, 4, &mut rng).unwrap();
        (patcher, base, links)
    }

    #[test]
    fn strawman1_restores_data_plane_in_one_shot() {
        let (mut patcher, base, links) = setup(2);
        let out = strawman1(&mut patcher, &base, &links).unwrap();
        assert_eq!(out.iterations, 1);
        let sim = simulate(patcher.network()).unwrap();
        assert!(sim
            .dataplane
            .equivalent_on(&base.sim.dataplane, &base.real_hosts));
    }

    #[test]
    fn strawman1_injects_unified_pattern() {
        let (mut patcher, base, links) = setup(2);
        strawman1(&mut patcher, &base, &links).unwrap();
        // Every fake interface carries a deny entry for EVERY host prefix —
        // the de-anonymizable pattern §4.3 describes.
        let n_hosts = base.real_hosts.len();
        for rc in patcher.network().routers.values() {
            for pl in rc.prefix_lists.iter().filter(|p| p.name.starts_with("RejAll-")) {
                assert_eq!(pl.entries.len(), n_hosts, "{}: {}", rc.hostname, pl.name);
            }
        }
    }

    #[test]
    fn strawman2_restores_data_plane() {
        let (mut patcher, base, links) = setup(2);
        let out = strawman2(&mut patcher, &base, &links).unwrap();
        let sim = simulate(patcher.network()).unwrap();
        assert!(sim
            .dataplane
            .equivalent_on(&base.sim.dataplane, &base.real_hosts));
        assert!(out.sim_calls >= 1);
    }

    #[test]
    fn strawman2_adds_fewer_filter_lines_than_strawman1() {
        let (mut p1, base, links) = setup(2);
        let (mut p2, _, _) = setup(2);
        let o1 = strawman1(&mut p1, &base, &links).unwrap();
        let o2 = strawman2(&mut p2, &base, &links).unwrap();
        assert!(
            o2.filters_added <= o1.filters_added,
            "S2 is conservative ({} vs {})",
            o2.filters_added,
            o1.filters_added
        );
    }

    #[test]
    fn first_wrong_hop_matches_paper_example() {
        // Fig 4b: new (h1, r1, r5, h5) vs original (h1, r1, r2, r3, r4, r5, h5):
        // r1 is the first different hop closest to h5 → filter on (r1, r5).
        let new_path: Vec<String> = ["h1", "r1", "r5", "h5"].iter().map(|s| s.to_string()).collect();
        let orig: Vec<Vec<String>> = vec![["h1", "r1", "r2", "r3", "r4", "r5", "h5"]
            .iter()
            .map(|s| s.to_string())
            .collect()];
        let (r_i, r_next) = first_wrong_hop(&new_path, &orig).unwrap();
        assert_eq!((r_i.as_str(), r_next.as_str()), ("r1", "r5"));
    }

    #[test]
    fn first_wrong_hop_none_for_matching_path() {
        let p: Vec<String> = ["h1", "r1", "h2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(first_wrong_hop(&p, std::slice::from_ref(&p)), None);
    }
}
