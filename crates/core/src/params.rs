//! Anonymization parameters.

/// Which route-equivalence algorithm to run (ConfMask vs the §4.3
/// strawman baselines, compared in Figures 10 and 16).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum EquivalenceMode {
    /// Algorithm 1: per-iteration scan of *all* routing-table entries,
    /// filtering wrong next-hops on fake links.
    ConfMask,
    /// Strawman 1: deny every original host prefix on every fake
    /// interface/session, in one shot. Fast but leaves a unified,
    /// de-anonymizable pattern.
    Strawman1,
    /// Strawman 2: traceroute-driven — fix only the first wrong hop of each
    /// divergent host pair per iteration. Correct but slow.
    Strawman2,
}

/// How OSPF costs are assigned to fake links — the §3.2 design-choice
/// ablation. The paper's strawman discussion shows why only the
/// min-cost strategy works: default costs *migrate* traffic (breaking
/// route equivalence), large costs leave fake links conspicuously dead,
/// and matching the original minimum cost creates equal-cost candidates
/// that filters can prune while fake-host traffic still exercises them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum CostStrategy {
    /// Figure 2b: enable OSPF with the default interface cost.
    DefaultCost,
    /// Figure 2c: a prohibitively large cost (65535).
    LargeCost,
    /// Figure 2d + filters (ConfMask): match the original minimum path
    /// cost between the endpoints.
    MinCost,
}

/// Tunable parameters of the pipeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Params {
    /// Topology anonymity parameter `k_R` (Definition 3.1). Default 6,
    /// the paper's default setting.
    pub k_r: usize,
    /// Route anonymity parameter `k_H`: number of hosts (original + fakes)
    /// per real host. Default 2 (one fake per real host).
    pub k_h: usize,
    /// Noise coefficient `p` of Algorithm 2. Default 0.1 (the paper's
    /// evaluation setting).
    pub noise_p: f64,
    /// RNG seed: the entire pipeline is deterministic given the seed.
    pub seed: u64,
    /// Route-equivalence algorithm.
    pub mode: EquivalenceMode,
    /// Fake-link cost assignment (ablation knob; keep the default).
    pub cost_strategy: CostStrategy,
    /// Number of fake routers to add (network-scale obfuscation, §9).
    /// Default 0 — the paper's core pipeline never alters `|R|`.
    pub fake_routers: usize,
    /// Self-healing: additional pipeline attempts after a retryable
    /// failure (reseeded RNG, escalating route-equivalence budget).
    /// Default 2, i.e. up to three attempts in total. 0 disables retries.
    pub max_retries: usize,
    /// Self-healing: optional wall-clock deadline per pipeline stage. A
    /// stage overrunning it aborts the run fatally
    /// ([`crate::Error::StageDeadlineExceeded`]). Default `None`.
    pub stage_deadline: Option<std::time::Duration>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            k_r: 6,
            k_h: 2,
            noise_p: 0.1,
            seed: 0,
            mode: EquivalenceMode::ConfMask,
            cost_strategy: CostStrategy::MinCost,
            fake_routers: 0,
            max_retries: 2,
            stage_deadline: None,
        }
    }
}

impl Params {
    /// Convenience constructor for the common sweep axes.
    pub fn new(k_r: usize, k_h: usize) -> Self {
        Self {
            k_r,
            k_h,
            ..Self::default()
        }
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given equivalence mode.
    pub fn with_mode(mut self, mode: EquivalenceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns a copy with the given retry budget (0 disables retries).
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Returns a copy with the given per-stage wall-clock deadline.
    pub fn with_stage_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.stage_deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let p = Params::default();
        assert_eq!(p.k_r, 6);
        assert_eq!(p.k_h, 2);
        assert!((p.noise_p - 0.1).abs() < 1e-12);
        assert_eq!(p.mode, EquivalenceMode::ConfMask);
    }

    #[test]
    fn builders() {
        let p = Params::new(10, 4).with_seed(7).with_mode(EquivalenceMode::Strawman1);
        assert_eq!((p.k_r, p.k_h, p.seed), (10, 4, 7));
        assert_eq!(p.mode, EquivalenceMode::Strawman1);
    }
}
