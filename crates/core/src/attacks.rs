//! De-anonymization attacks — the adversary's toolkit (§2.2 threat model,
//! §4.3's de-anonymization discussion, §5.4's privacy analysis).
//!
//! These are the attacks ConfMask is designed to defeat, implemented so the
//! defense can be *measured* rather than asserted:
//!
//! * [`degree_reidentification`] — the adversary knows a victim router's
//!   degree in the original network (e.g. from partial knowledge of the
//!   deployment) and tries to locate it in the shared topology. k-degree
//!   anonymity bounds the success probability by `1/k`.
//! * [`detect_unified_filter_pattern`] — the §4.3 attack on Strawman 1:
//!   "an adversary can potentially identify the fake interfaces that always
//!   bind to a minimal subset of dropped prefixes shared by all routers."
//! * [`dead_link_detection`] — the §3.2 attack on the "large cost"
//!   strawman: fake links that carry no traffic at all are identifiable by
//!   simulating the shared network (Batfish is available to the adversary
//!   per the threat model).

use confmask_config::NetworkConfigs;
use confmask_sim::Simulation;
use confmask_topology::Topology;
use std::collections::{BTreeMap, BTreeSet};

/// Result of a degree re-identification attempt.
#[derive(Debug, Clone, Default)]
pub struct ReidentificationReport {
    /// For each original router: size of its anonymity set (routers in the
    /// shared topology whose degree matches the victim's *anonymized*
    /// degree — the best the adversary can narrow down to).
    pub anonymity_sets: BTreeMap<String, usize>,
}

impl ReidentificationReport {
    /// Expected success probability of picking the victim uniformly from
    /// its anonymity set, averaged over victims.
    pub fn expected_success(&self) -> f64 {
        if self.anonymity_sets.is_empty() {
            return 0.0;
        }
        self.anonymity_sets
            .values()
            .map(|&s| if s == 0 { 0.0 } else { 1.0 / s as f64 })
            .sum::<f64>()
            / self.anonymity_sets.len() as f64
    }

    /// The worst-case (smallest) anonymity set.
    pub fn min_set(&self) -> usize {
        self.anonymity_sets.values().copied().min().unwrap_or(0)
    }
}

/// Degree re-identification: for every router of the original topology,
/// how many routers of the shared topology share its (shared-topology)
/// router-degree? k-degree anonymity guarantees every set has size ≥ k, so
/// the attack's expected success is ≤ 1/k.
pub fn degree_reidentification(original: &Topology, shared: &Topology) -> ReidentificationReport {
    // Degree histogram of the shared graph.
    let mut classes: BTreeMap<usize, usize> = BTreeMap::new();
    for r in shared.routers() {
        *classes.entry(shared.router_degree(r)).or_insert(0) += 1;
    }
    let mut report = ReidentificationReport::default();
    for r in original.routers() {
        let name = original.name(r);
        // The victim is in the shared graph under the same name (ConfMask
        // does not rename; PII renaming is an add-on). Its anonymity set is
        // its shared-degree class.
        let set = shared
            .node(name)
            .map(|v| classes.get(&shared.router_degree(v)).copied().unwrap_or(0))
            .unwrap_or(0);
        report.anonymity_sets.insert(name.to_string(), set);
    }
    report
}

/// The Strawman 1 detector (§4.3): "an adversary can potentially identify
/// the fake interfaces that always bind to a minimal subset of dropped
/// prefixes **shared by all routers**". The detector groups bound deny-lists
/// by their exact deny-set and flags a large set (≥ 5 entries and at least
/// half the size of the largest deny-set present) replicated on several
/// routers — the unified pattern Strawman 1 necessarily leaves. ConfMask's
/// per-destination lists are small and vary per attachment point, so
/// nothing reaches the size floor.
///
/// Returns `(router, filter-list name)` pairs carrying the pattern.
pub fn detect_unified_filter_pattern(net: &NetworkConfigs) -> Vec<(String, String)> {
    // Collect every bound deny-set per router.
    let mut by_set: BTreeMap<Vec<confmask_net_types::Ipv4Prefix>, Vec<(String, String)>> =
        BTreeMap::new();
    let mut filtering_routers: BTreeSet<&String> = BTreeSet::new();
    for (rname, rc) in &net.routers {
        for pl in &rc.prefix_lists {
            let mut denied: Vec<_> = pl
                .entries
                .iter()
                .filter(|e| e.action == confmask_config::FilterAction::Deny)
                .map(|e| e.prefix)
                .collect();
            if denied.is_empty() {
                continue;
            }
            denied.sort();
            denied.dedup();
            filtering_routers.insert(rname);
            by_set
                .entry(denied)
                .or_default()
                .push((rname.clone(), pl.name.clone()));
        }
    }
    if filtering_routers.len() < 2 {
        return Vec::new(); // no cross-router pattern possible
    }
    // The pattern: the *dominating* deny-set — one at least 5 entries long
    // and at least half the size of the largest deny-set in the network —
    // replicated verbatim on several routers. ConfMask's per-destination
    // lists stay small and varied (empirically ≤ ~4 entries, rarely
    // repeated), while Strawman 1 stamps the full host-prefix list on every
    // fake attachment point.
    let max_set = by_set.keys().map(|s| s.len()).max().unwrap_or(0);
    let size_floor = 5.max(max_set.div_ceil(2));
    let mut suspicious = Vec::new();
    for (set, holders) in by_set {
        if set.len() < size_floor {
            continue;
        }
        let routers: BTreeSet<&String> = holders.iter().map(|(r, _)| r).collect();
        if routers.len() >= 2 {
            suspicious.extend(holders);
        }
    }
    suspicious
}

/// Traffic census over a simulated shared network: which router-router
/// links carry at least one host-to-host forwarding path?
#[derive(Debug, Clone, Default)]
pub struct LinkTraffic {
    /// Links carrying traffic, as sorted name pairs.
    pub used: BTreeSet<(String, String)>,
    /// Links carrying no traffic at all.
    pub dead: BTreeSet<(String, String)>,
}

/// The dead-link detector (§3.2's "set a large cost" attack): simulate the
/// shared network and flag links no path ever crosses. In a ConfMask output
/// the fake links carry fake-host traffic, so they do not stand out; in the
/// "large cost" strawman every fake link is dead.
pub fn dead_link_detection(sim: &Simulation) -> LinkTraffic {
    let mut all_links: BTreeSet<(String, String)> = BTreeSet::new();
    for (rid, r) in sim.net.routers_iter() {
        for iface in &r.ifaces {
            for peer in &iface.peers {
                if let confmask_sim::Peer::Router { router, .. } = peer {
                    let a = sim.net.router(rid).name.clone();
                    let b = sim.net.router(*router).name.clone();
                    all_links.insert((a.clone().min(b.clone()), a.max(b)));
                }
            }
        }
    }

    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for (_pair, ps) in sim.dataplane.pairs() {
        for path in &ps.paths {
            for w in path.windows(2) {
                // Only router-router hops (endpoints are hosts).
                let (a, b) = (&w[0], &w[1]);
                if sim.net.router_id(a).is_some() && sim.net.router_id(b).is_some() {
                    used.insert((a.clone().min(b.clone()), a.clone().max(b.clone())));
                }
            }
        }
    }

    let dead = all_links.difference(&used).cloned().collect();
    LinkTraffic { used, dead }
}

/// Fraction of *fake* links that carry traffic in a shared network
/// (1.0 = fully camouflaged; 0.0 = every fake link is detectable as dead).
pub fn fake_link_camouflage(
    sim: &Simulation,
    fake_links: &[crate::topo_anon::FakeLink],
) -> f64 {
    if fake_links.is_empty() {
        return 1.0;
    }
    let traffic = dead_link_detection(sim);
    let covered = fake_links
        .iter()
        .filter(|l| {
            let key = (l.a.clone().min(l.b.clone()), l.a.clone().max(l.b.clone()));
            traffic.used.contains(&key)
        })
        .count();
    covered as f64 / fake_links.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{anonymize, EquivalenceMode, Params};
    use confmask_netgen::smallnets::example_network;
    use confmask_topology::extract::extract_topology;

    #[test]
    fn reidentification_bounded_by_k() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
        let k = 6;
        let result = anonymize(&net, &Params::new(k, 2)).unwrap();
        let orig = extract_topology(&net);
        let shared = extract_topology(&result.configs);

        let before = degree_reidentification(&orig, &orig);
        let after = degree_reidentification(&orig, &shared);
        assert!(after.min_set() >= k, "anonymity set ≥ k, got {}", after.min_set());
        assert!(
            after.expected_success() <= 1.0 / k as f64 + 1e-9,
            "success {:.3} > 1/k",
            after.expected_success()
        );
        assert!(
            after.expected_success() < before.expected_success(),
            "anonymization must reduce the attack: {:.3} -> {:.3}",
            before.expected_success(),
            after.expected_success()
        );
    }

    #[test]
    fn strawman1_detected_confmask_not() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
        let s1 = anonymize(
            &net,
            &Params::new(3, 2).with_mode(EquivalenceMode::Strawman1),
        )
        .unwrap();
        assert!(
            !detect_unified_filter_pattern(&s1.configs).is_empty(),
            "the adversary finds S1's pattern"
        );
        let cm = anonymize(&net, &Params::new(3, 2)).unwrap();
        assert!(
            detect_unified_filter_pattern(&cm.configs).is_empty(),
            "ConfMask leaves no unified pattern"
        );
    }

    #[test]
    fn dead_link_census_is_complete() {
        let net = example_network();
        let sim = confmask_sim::simulate(&net).unwrap();
        let traffic = dead_link_detection(&sim);
        // The example network is a line r1–r3–r2–r4: every link carries
        // traffic.
        assert_eq!(traffic.used.len(), 3);
        assert!(traffic.dead.is_empty());
    }

    #[test]
    fn confmask_fake_links_are_mostly_camouflaged() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(4, 4)).unwrap();
        assert!(!result.fake_links.is_empty());
        let cam = fake_link_camouflage(&result.final_sim, &result.fake_links);
        assert!(
            cam > 0.0,
            "at least some fake links must carry fake-host traffic"
        );
    }
}
