//! Service-grade job entry point: anonymize a network **in memory** and
//! return the emitted artifacts plus a compact summary, instead of writing
//! a configuration directory to disk.
//!
//! This is what a long-running server (`confmask serve`) runs per job: the
//! worker keeps nothing but the returned [`JobOutcome`], which carries
//! everything a remote client needs — the shareable config files, the
//! headline metrics, and the self-healing audit trail.

use crate::pipeline::{anonymize, Anonymized, DegradationReport};
use crate::strategy::{anonymizer_for, AnonymizedNetwork, Strategy};
use crate::{Error, Params};
use confmask_config::{NetworkConfigs, Vendor};

/// One emitted configuration file of an anonymized network, addressed by
/// its relative path inside a configuration directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactFile {
    /// Relative path (`routers/r1.cfg`, `hosts/h1.cfg`). Hostnames are
    /// sanitized to filesystem-safe names, like the CLI's own output.
    pub path: String,
    /// The emitted configuration text.
    pub text: String,
}

/// Headline numbers of a finished job — what a service reports to a
/// remote client without shipping the full [`Anonymized`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Routers in the anonymized network (including fakes).
    pub routers: usize,
    /// Hosts in the anonymized network (including fakes).
    pub hosts: usize,
    /// Fake links added by topology anonymization.
    pub fake_links: usize,
    /// Fake hosts added by route anonymization.
    pub fake_hosts: usize,
    /// Fake routers added by scale obfuscation.
    pub fake_routers: usize,
    /// Configuration utility `U_C` (§7.1).
    pub config_utility: f64,
    /// Average route anonymity `N_r` of the anonymized network.
    pub route_anonymity_avg: f64,
    /// Whether functional equivalence holds (it must, for `Ok` outcomes).
    pub functionally_equivalent: bool,
}

/// Everything a job produces: the artifacts to hand back to the client,
/// the summary, and the self-healing audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Emitted configuration files of the anonymized network.
    pub artifacts: Vec<ArtifactFile>,
    /// Headline metrics.
    pub summary: JobSummary,
    /// One record per pipeline attempt (length 1 for a clean run).
    pub degradation: DegradationReport,
}

/// File names come from hostnames; keep them filesystem-safe (mirrors the
/// CLI's directory writer, so artifacts land under the same names).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' })
        .collect()
}

/// Emits every router and host config of `net` as artifact files, in the
/// given vendor dialect.
fn emit_artifacts(net: &NetworkConfigs, vendor: Vendor) -> Vec<ArtifactFile> {
    let mut files = Vec::with_capacity(net.routers.len() + net.hosts.len());
    for (name, rc) in &net.routers {
        files.push(ArtifactFile {
            path: format!("routers/{}.cfg", sanitize(name)),
            text: rc.emit_as(vendor),
        });
    }
    for (name, hc) in &net.hosts {
        files.push(ArtifactFile {
            path: format!("hosts/{}.cfg", sanitize(name)),
            text: hc.emit_as(vendor),
        });
    }
    files
}

impl JobOutcome {
    /// Builds the outcome from a finished pipeline run, emitting artifacts
    /// in the IOS dialect.
    pub fn from_anonymized(result: &Anonymized) -> JobOutcome {
        JobOutcome::from_anonymized_as(result, Vendor::Ios)
    }

    /// Builds the outcome from a finished pipeline run, emitting artifacts
    /// in the given vendor dialect — a network submitted as `junos-set`
    /// gets its anonymized configs back as `junos-set`.
    pub fn from_anonymized_as(result: &Anonymized, vendor: Vendor) -> JobOutcome {
        JobOutcome {
            artifacts: emit_artifacts(&result.configs, vendor),
            summary: JobSummary {
                routers: result.configs.routers.len(),
                hosts: result.configs.hosts.len(),
                fake_links: result.fake_links.len(),
                fake_hosts: result.route_anon.fake_hosts.len(),
                fake_routers: result.scale.fake_routers.len(),
                config_utility: result.config_utility(),
                route_anonymity_avg: result.route_anonymity().avg(),
                functionally_equivalent: result.functionally_equivalent(),
            },
            degradation: result.degradation.clone(),
        }
    }

    /// Builds the outcome from any strategy's [`AnonymizedNetwork`]. For
    /// ConfMask results the full pipeline detail is reused (stage
    /// statistics, degradation report); other strategies have no
    /// self-healing driver, so their degradation report is empty.
    pub fn from_network(result: &AnonymizedNetwork, vendor: Vendor) -> JobOutcome {
        if let Some(full) = &result.confmask {
            return JobOutcome::from_anonymized_as(full, vendor);
        }
        JobOutcome {
            artifacts: emit_artifacts(&result.configs, vendor),
            summary: JobSummary {
                routers: result.configs.routers.len(),
                hosts: result.configs.hosts.len(),
                fake_links: result.fake_links,
                fake_hosts: result.fake_hosts,
                fake_routers: result.fake_routers,
                config_utility: crate::metrics::config_utility(
                    result.configs.total_lines(),
                    result.ledger.total_added(),
                ),
                route_anonymity_avg: crate::metrics::route_anonymity(&result.dataplane).avg(),
                functionally_equivalent: result.paths_preserved(),
            },
            degradation: DegradationReport::default(),
        }
    }
}

/// Runs the full self-healing pipeline on `configs` and returns the
/// in-memory outcome with IOS-dialect artifacts. Exactly [`anonymize`]
/// plus artifact emission — same determinism, same error classification.
pub fn run_job(configs: &NetworkConfigs, params: &Params) -> Result<JobOutcome, Error> {
    run_job_as(configs, params, Vendor::Ios)
}

/// [`run_job`] with the artifacts emitted in the given vendor dialect.
/// The pipeline itself is dialect-agnostic (it runs on the neutral
/// model), so the vendor changes artifact bytes but nothing else.
pub fn run_job_as(
    configs: &NetworkConfigs,
    params: &Params,
    vendor: Vendor,
) -> Result<JobOutcome, Error> {
    let result = anonymize(configs, params)?;
    Ok(JobOutcome::from_anonymized_as(&result, vendor))
}

/// [`run_job_as`] generalized over the anonymization strategy: the job is
/// dispatched through the [`crate::Anonymizer`] registry, so `confmask`,
/// `nethide`, and `netcloak` submissions all run through the same entry
/// point (and record the same `anon.strategy.*` metrics).
pub fn run_job_with(
    configs: &NetworkConfigs,
    params: &Params,
    vendor: Vendor,
    strategy: Strategy,
) -> Result<JobOutcome, Error> {
    let result = anonymizer_for(strategy).anonymize(configs, params)?;
    Ok(JobOutcome::from_network(&result, vendor))
}

/// FNV-1a 64-bit, the workspace's standard zero-dependency hash.
fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Content key of a job: a stable fingerprint of the exact inputs —
/// every emitted config byte plus every pipeline parameter. Two jobs with
/// the same key run the identical deterministic pipeline and therefore
/// produce byte-identical artifacts, which is what makes re-running an
/// interrupted job after a crash **idempotent**: a durable job store can
/// tag the persisted submission with this key and re-execute it as often
/// as recovery requires without ever producing a divergent outcome.
pub fn content_key(configs: &NetworkConfigs, params: &Params) -> u64 {
    content_key_as(configs, params, Vendor::Ios)
}

/// [`content_key`] with the output dialect mixed in: the same network
/// anonymized for different vendors produces different artifact bytes,
/// so the keys must differ for idempotent re-execution to stay sound.
pub fn content_key_as(configs: &NetworkConfigs, params: &Params, vendor: Vendor) -> u64 {
    content_key_with(configs, params, vendor, Strategy::ConfMask)
}

/// [`content_key_as`] with the anonymization strategy mixed in
/// (vendor-style): the same network run under different strategies
/// produces entirely different artifacts, so the keys must differ for
/// idempotent re-execution to stay sound. `content_key_as` is the
/// `Strategy::ConfMask` special case.
pub fn content_key_with(
    configs: &NetworkConfigs,
    params: &Params,
    vendor: Vendor,
    strategy: Strategy,
) -> u64 {
    let mut state = 0xCBF2_9CE4_8422_2325; // FNV offset basis
    state = fnv1a(strategy.name().as_bytes(), state);
    state = fnv1a(vendor.name().as_bytes(), state);
    state = fnv1a(format!("{params:?}").as_bytes(), state);
    for (name, rc) in &configs.routers {
        state = fnv1a(name.as_bytes(), state);
        state = fnv1a(rc.emit().as_bytes(), state);
    }
    for (name, hc) in &configs.hosts {
        state = fnv1a(name.as_bytes(), state);
        state = fnv1a(hc.emit().as_bytes(), state);
    }
    state
}

/// A fully-specified job: the inputs plus nothing else. This is the unit
/// a durable job store persists and re-runs after a crash — the
/// [`JobSpec::content_key`] identifies it, and [`JobSpec::run`] is
/// idempotent (same spec, same artifacts, bit for bit).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The network to anonymize.
    pub configs: NetworkConfigs,
    /// Pipeline parameters (the seed makes the run deterministic).
    pub params: Params,
    /// Dialect the artifacts are emitted in.
    pub vendor: Vendor,
    /// Anonymization strategy the job runs.
    pub strategy: Strategy,
}

impl JobSpec {
    /// Stable fingerprint of the inputs (see [`content_key_with`]).
    pub fn content_key(&self) -> u64 {
        content_key_with(&self.configs, &self.params, self.vendor, self.strategy)
    }

    /// Executes the job. Re-running the same spec yields byte-identical
    /// artifacts, so recovery may call this any number of times.
    pub fn run(&self) -> Result<JobOutcome, Error> {
        run_job_with(&self.configs, &self.params, self.vendor, self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn run_job_returns_parseable_artifacts_and_summary() {
        let net = example_network();
        let out = run_job(&net, &Params::new(3, 2)).unwrap();
        assert!(out.summary.functionally_equivalent);
        assert_eq!(out.summary.routers + out.summary.hosts, out.artifacts.len());
        assert!(out.summary.fake_hosts > 0);
        assert!(out.summary.config_utility < 1.0);
        assert_eq!(out.degradation.attempts.len(), 1);
        let mut routers = 0;
        for f in &out.artifacts {
            if let Some(_name) = f.path.strip_prefix("routers/") {
                confmask_config::parse_router(&f.text).unwrap();
                routers += 1;
            } else {
                assert!(f.path.starts_with("hosts/"), "{}", f.path);
                confmask_config::parse_host(&f.text).unwrap();
            }
        }
        assert_eq!(routers, out.summary.routers);
    }

    #[test]
    fn run_job_matches_anonymize_given_the_same_seed() {
        let net = example_network();
        let params = Params::new(3, 2).with_seed(11);
        let a = run_job(&net, &params).unwrap();
        let b = JobOutcome::from_anonymized(&anonymize(&net, &params).unwrap());
        assert_eq!(a.artifacts, b.artifacts);
    }

    #[test]
    fn content_key_is_stable_and_input_sensitive() {
        let net = example_network();
        let params = Params::new(3, 2).with_seed(7);
        let spec = JobSpec {
            configs: net.clone(),
            params: params.clone(),
            vendor: Vendor::Ios,
            strategy: Strategy::ConfMask,
        };
        // Stable across calls and across clones.
        assert_eq!(spec.content_key(), content_key(&net, &params));
        assert_eq!(spec.content_key(), spec.clone().content_key());
        // Sensitive to every input dimension a re-run depends on.
        let reseeded = content_key(&net, &Params::new(3, 2).with_seed(8));
        assert_ne!(spec.content_key(), reseeded, "seed must change the key");
        let rescaled = content_key(&net, &Params::new(4, 2).with_seed(7));
        assert_ne!(spec.content_key(), rescaled, "k_R must change the key");
        let revendored = content_key_as(&net, &params, Vendor::JunosSet);
        assert_ne!(spec.content_key(), revendored, "vendor must change the key");
        let restrategized = content_key_with(&net, &params, Vendor::Ios, Strategy::NetCloak);
        assert_ne!(spec.content_key(), restrategized, "strategy must change the key");
        let mut smaller = net.clone();
        smaller.hosts.pop_last();
        assert_ne!(
            spec.content_key(),
            content_key(&smaller, &params),
            "configs must change the key"
        );
    }

    #[test]
    fn run_job_with_dispatches_non_confmask_strategies() {
        let net = example_network();
        let out = run_job_with(&net, &Params::new(3, 2), Vendor::Ios, Strategy::NetCloak).unwrap();
        assert!(out.summary.fake_routers >= 2, "netcloak adds cloak routers");
        assert!(out.summary.functionally_equivalent);
        // No self-healing driver outside ConfMask: the report is empty.
        assert!(out.degradation.attempts.is_empty());
        assert_eq!(out.summary.routers + out.summary.hosts, out.artifacts.len());
    }

    #[test]
    fn rerunning_a_spec_is_idempotent() {
        let spec = JobSpec {
            configs: example_network(),
            params: Params::new(3, 2).with_seed(42),
            vendor: Vendor::Ios,
            strategy: Strategy::ConfMask,
        };
        let first = spec.run().unwrap();
        let again = spec.run().unwrap();
        // Crash recovery re-executes interrupted jobs; the artifacts it
        // hands out must not depend on how many times that happened.
        assert_eq!(first.artifacts, again.artifacts);
        assert_eq!(first.summary, again.summary);
    }
}
