//! The end-to-end anonymization pipeline (Figure 3).

use crate::equivalence::{check_equivalence, EquivalenceReport};
use crate::metrics;
use crate::preprocess::{preprocess, Baseline};
use crate::route_anon::{anonymize_routes, RouteAnonOutcome};
use crate::route_equiv::{enforce_route_equivalence_with_budget, EquivOutcome};
use crate::scale::{obfuscate_scale, ScaleOutcome};
use crate::strawman::{strawman1, strawman2};
use crate::topo_anon::{anonymize_topology_with, FakeLink};
use crate::{Error, EquivalenceMode, Params};
use confmask_config::patch::{LineLedger, Patcher};
use confmask_config::NetworkConfigs;
use confmask_net_types::PrefixAllocator;
use confmask_sim::Simulation;
use confmask_sim_delta::DeltaEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The span-name prefix of pipeline stages; a span `pipeline.stage.<name>`
/// becomes one [`StageSample`] in the attempt that ran it.
pub const STAGE_SPAN_PREFIX: &str = "pipeline.stage.";

/// Wall-clock duration of one pipeline stage, as measured by its span
/// (Figure 16's breakdown). There is exactly one timing source: the
/// `pipeline.stage.*` spans the attempt emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSample {
    /// Stage name (`preprocess`, `scale`, `topology`, `route_equiv`,
    /// `route_anon`, `verify`) — the span name minus
    /// [`STAGE_SPAN_PREFIX`].
    pub stage: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Extra route-equivalence iterations granted per self-healing retry: the
/// n-th retry runs with `n * RETRY_BUDGET_STEP` iterations on top of the
/// `fake_link_count + 5` bound of §5.4.
pub const RETRY_BUDGET_STEP: usize = 8;

/// One pipeline attempt, as recorded by the self-healing driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Zero-based attempt index (0 = the initial run).
    pub attempt: usize,
    /// The RNG seed this attempt ran with (attempt 0 uses `Params::seed`;
    /// retries use a seed derived from it).
    pub seed: u64,
    /// Extra route-equivalence iterations granted to this attempt.
    pub budget_boost: usize,
    /// Wall-clock duration of the attempt (its `pipeline.attempt` span).
    pub duration: Duration,
    /// Per-stage durations, from the `pipeline.stage.*` spans the attempt
    /// finished (in completion order; failed attempts keep the stages they
    /// got through, the last one being the stage that failed).
    pub stages: Vec<StageSample>,
    /// The rendered error, or `None` for the successful attempt.
    pub error: Option<String>,
    /// Whether the error (if any) was classified retryable.
    pub retryable: bool,
}

impl AttemptRecord {
    /// The duration of one named stage, if the attempt reached it.
    pub fn stage(&self, name: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| s.duration)
    }

    /// Sum of all stage durations (the attempt minus retry-driver
    /// overhead).
    pub fn stage_total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }
}

/// How a run degraded before succeeding (or failing for good): one record
/// per attempt the self-healing driver made. Attached to every
/// [`Anonymized`] so callers can audit whether the output needed healing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// All attempts, in order. The last one is the successful one when the
    /// pipeline returned `Ok`.
    pub attempts: Vec<AttemptRecord>,
}

impl DegradationReport {
    /// Whether the run needed self-healing (at least one failed attempt).
    pub fn healed(&self) -> bool {
        self.attempts.len() > 1
    }

    /// Number of failed attempts before the outcome.
    pub fn failures(&self) -> usize {
        self.attempts.iter().filter(|a| a.error.is_some()).count()
    }
}

/// Seed for attempt `attempt`: the configured seed verbatim for the first
/// attempt, a SplitMix64-style remix for each retry so the streams are
/// decorrelated but the whole retry sequence stays deterministic.
fn derive_seed(seed: u64, attempt: usize) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks one stage's measured (span) duration against the optional
/// per-stage deadline.
fn check_deadline(
    stage: &'static str,
    took: Duration,
    deadline: Option<Duration>,
) -> Result<(), Error> {
    if let Some(limit) = deadline {
        if took > limit {
            return Err(Error::StageDeadlineExceeded { stage, limit });
        }
    }
    Ok(())
}

/// The result of anonymizing a network.
#[derive(Debug, Clone)]
pub struct Anonymized {
    /// The anonymized configurations — what the owner would share.
    pub configs: NetworkConfigs,
    /// Added-lines accounting (Table 3 / `U_C`).
    pub ledger: LineLedger,
    /// The original network's baseline (simulation + topology).
    pub baseline: Baseline,
    /// Full simulation of the anonymized network.
    pub final_sim: Simulation,
    /// Fake links added by topology anonymization.
    pub fake_links: Vec<FakeLink>,
    /// Scale-obfuscation outcome (fake routers; empty unless
    /// `Params::fake_routers > 0`).
    pub scale: ScaleOutcome,
    /// Route-equivalence stage statistics.
    pub equiv: EquivOutcome,
    /// Route-anonymization stage statistics.
    pub route_anon: RouteAnonOutcome,
    /// The defensive functional-equivalence report.
    pub equivalence: EquivalenceReport,
    /// Parameters used.
    pub params: Params,
    /// The self-healing audit trail: one record per attempt made.
    pub degradation: DegradationReport,
}

impl Anonymized {
    /// Whether functional equivalence (Definition 3.3) holds — it must,
    /// for every successful run.
    pub fn functionally_equivalent(&self) -> bool {
        self.equivalence.holds()
    }

    /// Configuration utility `U_C` (§7.1).
    pub fn config_utility(&self) -> f64 {
        metrics::config_utility(self.configs.total_lines(), self.ledger.total_added())
    }

    /// Route anonymity `N_r` of the anonymized network (Figure 5).
    pub fn route_anonymity(&self) -> metrics::RouteAnonymity {
        metrics::route_anonymity(&self.final_sim.dataplane)
    }

    /// Route utility `P_U` (Figure 8) — 1.0 whenever equivalence holds.
    pub fn path_preservation(&self) -> f64 {
        metrics::path_preservation(
            &self.baseline.sim.dataplane,
            &self.final_sim.dataplane,
            &self.baseline.real_hosts,
        )
    }

    /// Per-stage wall-clock durations of the successful attempt, from its
    /// `pipeline.stage.*` spans (Figure 16's breakdown).
    pub fn stage_durations(&self) -> &[StageSample] {
        self.degradation
            .attempts
            .last()
            .map(|a| a.stages.as_slice())
            .unwrap_or(&[])
    }

    /// End-to-end duration of the successful attempt (sum of its stages).
    pub fn total_stage_time(&self) -> Duration {
        self.stage_durations().iter().map(|s| s.duration).sum()
    }
}

/// Runs the full ConfMask pipeline on `configs`, with self-healing.
///
/// The output is guaranteed functionally equivalent to the input — the
/// pipeline verifies this defensively and returns
/// [`Error::EquivalenceViolated`] rather than an unusable result.
///
/// **Self-healing**: a *retryable* failure (see [`Error::is_retryable`])
/// is retried up to `Params::max_retries` times with a reseeded RNG and an
/// escalating route-equivalence iteration budget; every attempt is
/// recorded in the returned [`DegradationReport`]. Fatal errors (BGP
/// oscillation, bad input, deadline overruns) fail fast on the first
/// occurrence; exhausting the retry budget yields
/// [`Error::RetriesExhausted`]. The retry sequence is a pure function of
/// `Params`, so anonymization stays deterministic given the seed.
pub fn anonymize(configs: &NetworkConfigs, params: &Params) -> Result<Anonymized, Error> {
    let (mut result, report) = run_with_retries(params, |_, seed, budget_boost| {
        run_attempt(configs, params, seed, budget_boost)
    })?;
    result.degradation = report;
    Ok(result)
}

/// The self-healing driver, independent of what an attempt does: runs
/// `attempt_fn(attempt, seed, budget_boost)` up to `max_retries + 1` times,
/// reseeding and escalating the budget between attempts, recording every
/// attempt. Fatal errors propagate on first occurrence; exhausting the
/// budget yields [`Error::RetriesExhausted`] wrapping the last error.
fn run_with_retries<T>(
    params: &Params,
    mut attempt_fn: impl FnMut(usize, u64, usize) -> Result<T, Error>,
) -> Result<(T, DegradationReport), Error> {
    let _pipeline = confmask_obs::span("pipeline.anonymize");
    let mut report = DegradationReport::default();
    let attempts_allowed = params.max_retries + 1;
    for attempt in 0..attempts_allowed {
        let seed = derive_seed(params.seed, attempt);
        let budget_boost = attempt * RETRY_BUDGET_STEP;
        if attempt > 0 {
            confmask_obs::counter_add("pipeline.retries", 1);
            confmask_obs::info!(
                "pipeline",
                "retrying: attempt {attempt}, seed {seed:#018x}, +{budget_boost} equivalence iterations"
            );
        }
        // The attempt span is the one timing source: its measured duration
        // becomes the record's `duration`, and the `pipeline.stage.*` spans
        // captured inside it become the record's `stages` — captured
        // thread-locally, so this works with global collection disabled.
        let attempt_span = confmask_obs::span("pipeline.attempt");
        let (outcome, spans) = confmask_obs::capture(|| attempt_fn(attempt, seed, budget_boost));
        let duration = attempt_span.finish();
        let stages = stage_samples(&spans);
        match outcome {
            Ok(value) => {
                report.attempts.push(AttemptRecord {
                    attempt,
                    seed,
                    budget_boost,
                    duration,
                    stages,
                    error: None,
                    retryable: false,
                });
                return Ok((value, report));
            }
            Err(e) => {
                let retryable = e.is_retryable();
                let failed_stage = stages.last().map(|s| s.stage).unwrap_or("preprocess");
                confmask_obs::warn!(
                    "pipeline",
                    "attempt {attempt} failed in {failed_stage} ({}): {e}",
                    if retryable { "retryable" } else { "fatal" }
                );
                report.attempts.push(AttemptRecord {
                    attempt,
                    seed,
                    budget_boost,
                    duration,
                    stages,
                    error: Some(e.to_string()),
                    retryable,
                });
                if !retryable {
                    return Err(e);
                }
                if attempt + 1 == attempts_allowed {
                    return Err(Error::RetriesExhausted {
                        attempts: attempts_allowed,
                        last: Box::new(e),
                    });
                }
            }
        }
    }
    unreachable!("attempts_allowed >= 1, every iteration returns")
}

/// The `pipeline.stage.*` spans among `spans`, as stage samples in
/// completion order.
fn stage_samples(spans: &[confmask_obs::FinishedSpan]) -> Vec<StageSample> {
    spans
        .iter()
        .filter_map(|s| {
            s.name.strip_prefix(STAGE_SPAN_PREFIX).map(|stage| StageSample {
                stage,
                duration: s.duration(),
            })
        })
        .collect()
}

/// One pipeline attempt (the pre-self-healing `anonymize` body).
fn run_attempt(
    configs: &NetworkConfigs,
    params: &Params,
    seed: u64,
    budget_boost: usize,
) -> Result<Anonymized, Error> {
    let mut rng = StdRng::seed_from_u64(seed);
    let deadline = params.stage_deadline;

    // Preprocess (Figure 3 stage 0).
    let sp = confmask_obs::span("pipeline.stage.preprocess");
    let baseline = preprocess(configs)?;
    check_deadline("preprocess", sp.finish(), deadline)?;

    let mut patcher = Patcher::new(configs.clone());
    let mut alloc = PrefixAllocator::new(configs.used_prefixes());

    // Step 0.5 — optional network-scale obfuscation (§9 extension): fake
    // routers join the graph before the k-degree plan is computed.
    let sp = confmask_obs::span("pipeline.stage.scale");
    let scale = obfuscate_scale(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.fake_routers,
        &mut rng,
    )?;
    check_deadline("scale", sp.finish(), deadline)?;

    // Step 1 — topology anonymization.
    let sp = confmask_obs::span("pipeline.stage.topology");
    let fake_links = anonymize_topology_with(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.k_r,
        params.cost_strategy,
        &mut rng,
    )?;
    check_deadline("topology", sp.finish(), deadline)?;
    confmask_obs::debug!(
        "pipeline",
        "topology anonymized: {} fake links",
        fake_links.len()
    );

    // Step 2.1 — route equivalence.
    let sp = confmask_obs::span("pipeline.stage.route_equiv");
    let equiv = match params.mode {
        EquivalenceMode::ConfMask => enforce_route_equivalence_with_budget(
            &mut patcher,
            &baseline,
            fake_links.len(),
            budget_boost,
        )?,
        EquivalenceMode::Strawman1 => strawman1(&mut patcher, &baseline, &fake_links)?,
        EquivalenceMode::Strawman2 => strawman2(&mut patcher, &baseline, &fake_links)?,
    };
    check_deadline("route_equiv", sp.finish(), deadline)?;

    // Step 2.2 — route anonymization.
    let sp = confmask_obs::span("pipeline.stage.route_anon");
    let route_anon = anonymize_routes(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.k_h,
        params.noise_p,
        &mut rng,
    )?;
    check_deadline("route_anon", sp.finish(), deadline)?;

    // Verify.
    let sp = confmask_obs::span("pipeline.stage.verify");
    let (anon_configs, ledger) = patcher.into_parts();
    // Converge through the shared simulation cache: a later
    // `verify_failure_equivalence` sweep (or a repeat job on the same
    // output) reuses this converged state for delta recomputation.
    let final_sim = DeltaEngine::global().converged(&anon_configs)?.sim.clone();
    let equivalence = check_equivalence(
        configs,
        &baseline.sim.dataplane,
        &anon_configs,
        &final_sim.dataplane,
    );
    check_deadline("verify", sp.finish(), deadline)?;

    if !equivalence.holds() {
        return Err(Error::EquivalenceViolated(
            equivalence
                .violations
                .first()
                .cloned()
                .unwrap_or_else(|| "unknown".to_string()),
        ));
    }

    Ok(Anonymized {
        configs: anon_configs,
        ledger,
        baseline,
        final_sim,
        fake_links,
        scale,
        equiv,
        route_anon,
        equivalence,
        params: params.clone(),
        degradation: DegradationReport::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceMode;
    use confmask_netgen::smallnets::example_network;
    use confmask_topology::extract::extract_topology;
    use confmask_topology::metrics::min_same_degree;

    #[test]
    fn end_to_end_example_network() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        assert!(result.functionally_equivalent());
        assert!((result.path_preservation() - 1.0).abs() < 1e-12);
        let topo = extract_topology(&result.configs);
        assert!(min_same_degree(&topo) >= 3);
        // Fake hosts exist and are provenance-flagged.
        assert_eq!(result.route_anon.fake_hosts.len(), 3);
        // The ledger accounts for every category.
        assert!(result.ledger.interface_lines > 0);
        assert!(result.ledger.host_lines > 0);
        assert!(result.config_utility() < 1.0);
    }

    #[test]
    fn all_modes_preserve_equivalence() {
        let net = example_network();
        for mode in [
            EquivalenceMode::ConfMask,
            EquivalenceMode::Strawman1,
            EquivalenceMode::Strawman2,
        ] {
            let result =
                anonymize(&net, &Params::new(3, 2).with_mode(mode)).unwrap();
            assert!(
                result.functionally_equivalent(),
                "{mode:?}: {:?}",
                result.equivalence.violations
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = example_network();
        let a = anonymize(&net, &Params::new(3, 2).with_seed(9)).unwrap();
        let b = anonymize(&net, &Params::new(3, 2).with_seed(9)).unwrap();
        assert_eq!(a.configs, b.configs);
    }

    #[test]
    fn anonymized_configs_emit_and_reparse() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        for rc in result.configs.routers.values() {
            let text = rc.emit();
            let back = confmask_config::parse_router(&text).unwrap();
            // Round-trip modulo provenance flags (not serialized).
            assert_eq!(back.hostname, rc.hostname);
            assert_eq!(back.interfaces.len(), rc.interfaces.len());
        }
        assert!(confmask_config::validate(&result.configs).is_empty());
    }

    #[test]
    fn route_anonymity_improves_with_fakes() {
        let net = example_network();
        let before = metrics_route_avg(&net);
        let result = anonymize(&net, &Params::new(3, 4)).unwrap();
        let after = result.route_anonymity().avg();
        assert!(
            after >= before,
            "anonymity should not decrease: {before} → {after}"
        );
    }

    fn metrics_route_avg(net: &confmask_config::NetworkConfigs) -> f64 {
        let sim = confmask_sim::simulate(net).unwrap();
        crate::metrics::route_anonymity(&sim.dataplane).avg()
    }

    #[test]
    fn bgp_divergence_is_fatal_and_never_retried() {
        // Griffin's bad gadget has no routing equilibrium: no reseed or
        // budget escalation can fix it, so self-healing must fail fast with
        // the underlying error rather than burn retries and wrap it in
        // RetriesExhausted.
        let net = confmask_netgen::smallnets::bad_gadget();
        let start = std::time::Instant::now();
        let err = anonymize(&net, &Params::new(3, 2)).expect_err("no equilibrium");
        assert!(!err.is_retryable(), "divergence must be classified fatal");
        assert!(
            matches!(
                err,
                crate::Error::Sim(confmask_sim::SimError::BgpDiverged { .. })
            ),
            "expected the bare simulation error, got: {err}"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "fail-fast must not consume the retry budget"
        );
    }

    #[test]
    fn degradation_report_records_the_single_clean_attempt() {
        let net = example_network();
        let params = Params::new(3, 2).with_seed(9);
        let result = anonymize(&net, &params).unwrap();
        assert!(!result.degradation.healed());
        assert_eq!(result.degradation.attempts.len(), 1);
        let a = &result.degradation.attempts[0];
        assert_eq!((a.attempt, a.seed), (0, 9));
        assert_eq!(a.error, None);
    }

    #[test]
    fn attempts_record_stage_durations_from_spans() {
        // Span capture is thread-local, so per-attempt stage durations must
        // be present even with global collection off (the default here).
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        let stages: Vec<&str> = result.stage_durations().iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            ["preprocess", "scale", "topology", "route_equiv", "route_anon", "verify"],
            "one sample per stage, in completion order"
        );
        let a = &result.degradation.attempts[0];
        assert_eq!(a.stage("verify"), Some(result.stage_durations()[5].duration));
        assert!(a.stage("nonexistent").is_none());
        assert!(
            a.stage_total() <= a.duration,
            "stages nest inside the attempt span: {:?} vs {:?}",
            a.stage_total(),
            a.duration
        );
        assert_eq!(result.total_stage_time(), a.stage_total());
    }

    #[test]
    fn retry_driver_heals_a_retryable_failure_with_new_seed_and_budget() {
        let params = Params::new(3, 2).with_seed(7).with_max_retries(3);
        let (value, report) = run_with_retries(&params, |attempt, seed, boost| {
            if attempt == 0 {
                assert_eq!(seed, 7); // first attempt uses the seed verbatim
                assert_eq!(boost, 0);
                Err(Error::EquivalenceDiverged { iterations: 5 })
            } else {
                assert_eq!(seed, derive_seed(7, 1));
                assert_ne!(seed, 7);
                assert_eq!(boost, RETRY_BUDGET_STEP);
                Ok(42u32)
            }
        })
        .unwrap();
        assert_eq!(value, 42);
        assert!(report.healed());
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts[0].retryable);
        assert!(report.attempts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("did not converge"));
        assert_eq!(report.attempts[1].error, None);
    }

    #[test]
    fn retry_driver_fails_fast_on_fatal_errors() {
        let params = Params::new(3, 2).with_max_retries(5);
        let mut calls = 0usize;
        let err = run_with_retries(&params, |_, _, _| -> Result<(), Error> {
            calls += 1;
            Err(Error::Sim(confmask_sim::SimError::BgpDiverged { rounds: 1 }))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "fatal errors must not be retried");
        assert!(matches!(
            err,
            Error::Sim(confmask_sim::SimError::BgpDiverged { .. })
        ));
    }

    #[test]
    fn retry_driver_exhausts_and_wraps_the_last_error() {
        let params = Params::new(3, 2).with_max_retries(2);
        let mut calls = 0usize;
        let err = run_with_retries(&params, |_, _, _| -> Result<(), Error> {
            calls += 1;
            Err(Error::EquivalenceDiverged { iterations: calls })
        })
        .unwrap_err();
        assert_eq!(calls, 3, "max_retries=2 allows three attempts");
        match err {
            Error::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, Error::EquivalenceDiverged { iterations: 3 }));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(5, 0), 5);
        assert_eq!(derive_seed(5, 1), derive_seed(5, 1));
        assert_ne!(derive_seed(5, 1), derive_seed(5, 2));
        assert_ne!(derive_seed(5, 1), derive_seed(6, 1));
    }
}
