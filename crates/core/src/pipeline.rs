//! The end-to-end anonymization pipeline (Figure 3).

use crate::equivalence::{check_equivalence, EquivalenceReport};
use crate::metrics;
use crate::preprocess::{preprocess, Baseline};
use crate::route_anon::{anonymize_routes, RouteAnonOutcome};
use crate::route_equiv::{enforce_route_equivalence, EquivOutcome};
use crate::scale::{obfuscate_scale, ScaleOutcome};
use crate::strawman::{strawman1, strawman2};
use crate::topo_anon::{anonymize_topology_with, FakeLink};
use crate::{Error, EquivalenceMode, Params};
use confmask_config::patch::{LineLedger, Patcher};
use confmask_config::NetworkConfigs;
use confmask_net_types::PrefixAllocator;
use confmask_sim::{simulate, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Wall-clock duration of each pipeline stage (Figure 16's breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Preprocessing (baseline simulation).
    pub preprocess: Duration,
    /// Step 1 — topology anonymization.
    pub topology: Duration,
    /// Step 2.1 — route equivalence.
    pub route_equiv: Duration,
    /// Step 2.2 — route anonymization.
    pub route_anon: Duration,
    /// Final verification simulation + equivalence check.
    pub verify: Duration,
}

impl StageTimings {
    /// End-to-end duration.
    pub fn total(&self) -> Duration {
        self.preprocess + self.topology + self.route_equiv + self.route_anon + self.verify
    }
}

/// The result of anonymizing a network.
#[derive(Debug, Clone)]
pub struct Anonymized {
    /// The anonymized configurations — what the owner would share.
    pub configs: NetworkConfigs,
    /// Added-lines accounting (Table 3 / `U_C`).
    pub ledger: LineLedger,
    /// The original network's baseline (simulation + topology).
    pub baseline: Baseline,
    /// Full simulation of the anonymized network.
    pub final_sim: Simulation,
    /// Fake links added by topology anonymization.
    pub fake_links: Vec<FakeLink>,
    /// Scale-obfuscation outcome (fake routers; empty unless
    /// `Params::fake_routers > 0`).
    pub scale: ScaleOutcome,
    /// Route-equivalence stage statistics.
    pub equiv: EquivOutcome,
    /// Route-anonymization stage statistics.
    pub route_anon: RouteAnonOutcome,
    /// The defensive functional-equivalence report.
    pub equivalence: EquivalenceReport,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Parameters used.
    pub params: Params,
}

impl Anonymized {
    /// Whether functional equivalence (Definition 3.3) holds — it must,
    /// for every successful run.
    pub fn functionally_equivalent(&self) -> bool {
        self.equivalence.holds()
    }

    /// Configuration utility `U_C` (§7.1).
    pub fn config_utility(&self) -> f64 {
        metrics::config_utility(self.configs.total_lines(), self.ledger.total_added())
    }

    /// Route anonymity `N_r` of the anonymized network (Figure 5).
    pub fn route_anonymity(&self) -> metrics::RouteAnonymity {
        metrics::route_anonymity(&self.final_sim.dataplane)
    }

    /// Route utility `P_U` (Figure 8) — 1.0 whenever equivalence holds.
    pub fn path_preservation(&self) -> f64 {
        metrics::path_preservation(
            &self.baseline.sim.dataplane,
            &self.final_sim.dataplane,
            &self.baseline.real_hosts,
        )
    }
}

/// Runs the full ConfMask pipeline on `configs`.
///
/// The output is guaranteed functionally equivalent to the input — the
/// pipeline verifies this defensively and returns
/// [`Error::EquivalenceViolated`] rather than an unusable result.
pub fn anonymize(configs: &NetworkConfigs, params: &Params) -> Result<Anonymized, Error> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut timings = StageTimings::default();

    // Preprocess (Figure 3 stage 0).
    let t0 = Instant::now();
    let baseline = preprocess(configs)?;
    timings.preprocess = t0.elapsed();

    let mut patcher = Patcher::new(configs.clone());
    let mut alloc = PrefixAllocator::new(configs.used_prefixes());

    // Step 0.5 — optional network-scale obfuscation (§9 extension): fake
    // routers join the graph before the k-degree plan is computed.
    let t1 = Instant::now();
    let scale = obfuscate_scale(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.fake_routers,
        &mut rng,
    )?;

    // Step 1 — topology anonymization.
    let fake_links = anonymize_topology_with(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.k_r,
        params.cost_strategy,
        &mut rng,
    )?;
    timings.topology = t1.elapsed();

    // Step 2.1 — route equivalence.
    let t2 = Instant::now();
    let equiv = match params.mode {
        EquivalenceMode::ConfMask => {
            enforce_route_equivalence(&mut patcher, &baseline, fake_links.len())?
        }
        EquivalenceMode::Strawman1 => strawman1(&mut patcher, &baseline, &fake_links)?,
        EquivalenceMode::Strawman2 => strawman2(&mut patcher, &baseline, &fake_links)?,
    };
    timings.route_equiv = t2.elapsed();

    // Step 2.2 — route anonymization.
    let t3 = Instant::now();
    let route_anon = anonymize_routes(
        &mut patcher,
        &mut alloc,
        &baseline,
        params.k_h,
        params.noise_p,
        &mut rng,
    )?;
    timings.route_anon = t3.elapsed();

    // Verify.
    let t4 = Instant::now();
    let (anon_configs, ledger) = patcher.into_parts();
    let final_sim = simulate(&anon_configs)?;
    let equivalence = check_equivalence(
        configs,
        &baseline.sim.dataplane,
        &anon_configs,
        &final_sim.dataplane,
    );
    timings.verify = t4.elapsed();

    if !equivalence.holds() {
        return Err(Error::EquivalenceViolated(
            equivalence
                .violations
                .first()
                .cloned()
                .unwrap_or_else(|| "unknown".to_string()),
        ));
    }

    Ok(Anonymized {
        configs: anon_configs,
        ledger,
        baseline,
        final_sim,
        fake_links,
        scale,
        equiv,
        route_anon,
        equivalence,
        timings,
        params: params.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceMode;
    use confmask_netgen::smallnets::example_network;
    use confmask_topology::extract::extract_topology;
    use confmask_topology::metrics::min_same_degree;

    #[test]
    fn end_to_end_example_network() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        assert!(result.functionally_equivalent());
        assert!((result.path_preservation() - 1.0).abs() < 1e-12);
        let topo = extract_topology(&result.configs);
        assert!(min_same_degree(&topo) >= 3);
        // Fake hosts exist and are provenance-flagged.
        assert_eq!(result.route_anon.fake_hosts.len(), 3);
        // The ledger accounts for every category.
        assert!(result.ledger.interface_lines > 0);
        assert!(result.ledger.host_lines > 0);
        assert!(result.config_utility() < 1.0);
    }

    #[test]
    fn all_modes_preserve_equivalence() {
        let net = example_network();
        for mode in [
            EquivalenceMode::ConfMask,
            EquivalenceMode::Strawman1,
            EquivalenceMode::Strawman2,
        ] {
            let result =
                anonymize(&net, &Params::new(3, 2).with_mode(mode)).unwrap();
            assert!(
                result.functionally_equivalent(),
                "{mode:?}: {:?}",
                result.equivalence.violations
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = example_network();
        let a = anonymize(&net, &Params::new(3, 2).with_seed(9)).unwrap();
        let b = anonymize(&net, &Params::new(3, 2).with_seed(9)).unwrap();
        assert_eq!(a.configs, b.configs);
    }

    #[test]
    fn anonymized_configs_emit_and_reparse() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        for rc in result.configs.routers.values() {
            let text = rc.emit();
            let back = confmask_config::parse_router(&text).unwrap();
            // Round-trip modulo provenance flags (not serialized).
            assert_eq!(back.hostname, rc.hostname);
            assert_eq!(back.interfaces.len(), rc.interfaces.len());
        }
        assert!(confmask_config::validate(&result.configs).is_empty());
    }

    #[test]
    fn route_anonymity_improves_with_fakes() {
        let net = example_network();
        let before = metrics_route_avg(&net);
        let result = anonymize(&net, &Params::new(3, 4)).unwrap();
        let after = result.route_anonymity().avg();
        assert!(
            after >= before,
            "anonymity should not decrease: {before} → {after}"
        );
    }

    fn metrics_route_avg(net: &confmask_config::NetworkConfigs) -> f64 {
        let sim = confmask_sim::simulate(net).unwrap();
        crate::metrics::route_anonymity(&sim.dataplane).avg()
    }
}
