//! Preprocessing (Figure 3, leftmost stage): simulate the original network
//! and record the baselines every later stage compares against.

use crate::Error;
use confmask_config::NetworkConfigs;
use confmask_net_types::Asn;
use confmask_sim::Simulation;
use confmask_sim_delta::DeltaEngine;
use confmask_topology::{extract::extract_topology, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// The original network's simulated baseline.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The original simulation (model, FIBs, data plane).
    pub sim: Simulation,
    /// The original topology graph.
    pub topo: Topology,
    /// Names of the real hosts (the set functional equivalence is judged
    /// on; fake hosts added later are excluded, Appendix A).
    pub real_hosts: BTreeSet<String>,
    /// Router name → ASN, for BGP networks.
    pub asn_of: BTreeMap<String, Asn>,
    /// Router-router adjacency of the *original* network, by name — the `E`
    /// that Algorithm 1's `(r̃, nxt) ∉ E` tests against.
    pub router_edges: BTreeSet<(String, String)>,
}

/// Simulates the input and builds the baseline.
pub fn preprocess(configs: &NetworkConfigs) -> Result<Baseline, Error> {
    let errors = confmask_config::validate(configs);
    if !errors.is_empty() {
        return Err(Error::InvalidInput(format!(
            "{} validation error(s), first: {}",
            errors.len(),
            errors[0]
        )));
    }
    // Converge through the per-process simulation cache: retry attempts
    // and repeat jobs on the same input skip the (expensive) baseline
    // simulation entirely, and the converged state feeds later delta
    // recomputation of fault scenarios.
    let sim = DeltaEngine::global().converged(configs)?.sim.clone();
    let topo = extract_topology(configs);
    let real_hosts = configs.hosts.keys().cloned().collect();
    let asn_of = configs
        .routers
        .iter()
        .filter_map(|(n, rc)| rc.bgp.as_ref().map(|b| (n.clone(), b.asn)))
        .collect();

    let mut router_edges = BTreeSet::new();
    for (a, b, _) in topo.edges() {
        use confmask_topology::NodeKind;
        if topo.kind(a) == NodeKind::Router && topo.kind(b) == NodeKind::Router {
            let (na, nb) = (topo.name(a).to_string(), topo.name(b).to_string());
            router_edges.insert((na.clone().min(nb.clone()), na.max(nb)));
        }
    }

    Ok(Baseline {
        sim,
        topo,
        real_hosts,
        asn_of,
        router_edges,
    })
}

impl Baseline {
    /// Whether the original network has a router-router link `a – b`.
    pub fn has_edge(&self, a: &str, b: &str) -> bool {
        let key = (
            a.to_string().min(b.to_string()),
            a.to_string().max(b.to_string()),
        );
        self.router_edges.contains(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn baseline_captures_example_network() {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        assert_eq!(base.real_hosts.len(), 3);
        assert_eq!(base.router_edges.len(), 3);
        assert!(base.has_edge("r1", "r3"));
        assert!(base.has_edge("r3", "r1"));
        assert!(!base.has_edge("r1", "r4"));
        assert!(base.asn_of.is_empty());
        assert_eq!(base.sim.dataplane.len(), 6); // 3 hosts, ordered pairs
    }

    #[test]
    fn invalid_input_is_rejected() {
        let mut net = example_network();
        net.hosts.get_mut("h1").unwrap().gateway = "9.9.9.9".parse().unwrap();
        assert!(matches!(preprocess(&net), Err(Error::InvalidInput(_))));
    }

    #[test]
    fn bgp_asns_are_recorded() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
        let base = preprocess(&net).unwrap();
        assert_eq!(base.asn_of.len(), 11);
    }
}
