//! Step 2.1 — route equivalence (Algorithm 1, §5.2).
//!
//! After topology anonymization the data plane may have drifted: fake links
//! create new equal-cost candidates (link-state), shortcuts (distance
//! vector) and shorter AS paths (BGP). Algorithm 1 restores the original
//! data plane by *local table lookups*: each iteration scans **every**
//! routing-table entry `⟨r̃, h̃_d, nxt⟩` of the intermediate network and,
//! whenever the next hop is not an original next hop **and** the link
//! `(r̃, nxt)` is not an original link, adds an inbound route filter on `r̃`
//! denying `h̃_d` from `nxt`. Re-simulation follows, because routers choose
//! next hops without a global view (and BGP re-equilibrates, §4.3); the
//! iteration count is bounded by the number of fake links (§5.4).
//!
//! Filters use one prefix list per attachment point (`Rej-<iface>` /
//! `Rej-<neighbor>`), so a list bound at one point never leaks route
//! suppression to another.

use crate::preprocess::Baseline;
use crate::Error;
use confmask_config::patch::Patcher;
use confmask_net_types::Ipv4Prefix;
use confmask_sim::{simulate_control_plane, Fibs, NextHop, SimNetwork};
use std::collections::BTreeSet;

/// Outcome of the route-equivalence stage.
#[derive(Debug, Clone, Default)]
pub struct EquivOutcome {
    /// Iterations of the fixpoint loop (the paper's convergence metric).
    pub iterations: usize,
    /// Control-plane simulations performed.
    pub sim_calls: usize,
    /// Filters added.
    pub filters_added: usize,
}

/// Name of the per-attachment-point reject list.
pub(crate) fn reject_list_name(point: &str) -> String {
    format!("Rej-{point}")
}

/// Adds a deny filter for `prefix` on router `router` at the attachment
/// point implied by `nh` (IGP interface or BGP session). Returns `true` if
/// anything new was added.
pub(crate) fn deny_next_hop(
    patcher: &mut Patcher,
    net: &SimNetwork,
    router: &str,
    nh: &NextHop,
    prefix: Ipv4Prefix,
) -> Result<bool, Error> {
    let NextHop::Forward {
        via_iface,
        session_peer,
        ..
    } = nh
    else {
        return Ok(false);
    };
    let rid = net.router_id(router).expect("router exists in its own sim");
    let mut added = false;
    match session_peer {
        Some(peer_addr) => {
            let list = reject_list_name(&peer_addr.to_string());
            added |= patcher.ensure_deny_entry(router, &list, prefix)?;
            patcher.bind_bgp_filter(router, &list, *peer_addr)?;
        }
        None => {
            let iface_name = net.router(rid).ifaces[*via_iface].name.clone();
            let list = reject_list_name(&iface_name);
            added |= patcher.ensure_deny_entry(router, &list, prefix)?;
            patcher.bind_igp_filter(router, &list, &iface_name)?;
        }
    }
    Ok(added)
}

/// Runs Algorithm 1 until the control plane agrees with the original on
/// every original-host destination, bounded by `fake_link_count + 5`
/// iterations.
pub fn enforce_route_equivalence(
    patcher: &mut Patcher,
    base: &Baseline,
    fake_link_count: usize,
) -> Result<EquivOutcome, Error> {
    enforce_route_equivalence_with_budget(patcher, base, fake_link_count, 0)
}

/// [`enforce_route_equivalence`] with `extra_budget` additional iterations
/// on top of the `fake_link_count + 5` bound — the escalation lever the
/// self-healing pipeline pulls on retry after
/// [`Error::EquivalenceDiverged`].
pub fn enforce_route_equivalence_with_budget(
    patcher: &mut Patcher,
    base: &Baseline,
    fake_link_count: usize,
    extra_budget: usize,
) -> Result<EquivOutcome, Error> {
    let bound = fake_link_count + 5 + extra_budget;
    let mut out = EquivOutcome::default();

    for iter in 0..bound {
        out.iterations = iter + 1;
        confmask_obs::counter_add("core.route_equiv.iterations", 1);
        let (net, fibs) = simulate_control_plane(patcher.network())?;
        out.sim_calls += 1;

        let changes = scan_and_filter(patcher, base, &net, &fibs)?;
        out.filters_added += changes;
        confmask_obs::counter_add("core.route_equiv.filters_added", changes as u64);
        if changes == 0 {
            confmask_obs::debug!(
                "core.route_equiv",
                "fixpoint after {} iteration(s), {} filter(s) added",
                out.iterations,
                out.filters_added
            );
            return Ok(out);
        }
    }
    Err(Error::EquivalenceDiverged { iterations: bound })
}

/// One Algorithm 1 iteration body: scan all routing-table entries, filter
/// wrong next hops on fake links. Returns the number of filters added.
fn scan_and_filter(
    patcher: &mut Patcher,
    base: &Baseline,
    net: &SimNetwork,
    fibs: &Fibs,
) -> Result<usize, Error> {
    let mut pending: Vec<(String, NextHop, Ipv4Prefix)> = Vec::new();

    // Algorithm 1's destinations range over the *original* hosts; fake
    // hosts (e.g. the liveness hosts of fake routers from scale
    // obfuscation) are handled by Algorithm 2 instead.
    let base_prefixes: std::collections::BTreeSet<Ipv4Prefix> = base
        .sim
        .net
        .destinations
        .iter()
        .map(|(p, _)| *p)
        .collect();

    for (rid, router) in net.routers_iter() {
        // Routers absent from the original network (fake routers from
        // scale obfuscation) have no ⟨r̃, h̃_d⟩ baseline to enforce: their
        // routes toward real destinations are legitimate new state, and
        // real traffic is kept out of them by the filters on the *real*
        // routers' sides.
        let Some(orid) = base.sim.net.router_id(&router.name) else {
            continue;
        };
        for (prefix, _hosts) in &net.destinations {
            if !base_prefixes.contains(prefix) {
                continue;
            }
            let Some(entry) = fibs.of(rid).entry(prefix) else {
                continue;
            };
            // Original next hops for ⟨r̃, h̃_d⟩ — DP[r̃, h̃_d] in Algorithm 1.
            // Router ids are stable across simulations of the same router
            // set, but we defensively map through names.
            let orig_next: BTreeSet<String> = base
                .sim
                .fibs
                .of(orid)
                .entry(prefix)
                .map(|e| {
                    e.next_hops
                        .iter()
                        .filter_map(|nh| nh.router())
                        .map(|r| base.sim.net.router(r).name.clone())
                        .collect()
                })
                .unwrap_or_default();

            for nh in &entry.next_hops {
                let Some(nxt) = nh.router() else { continue };
                let nxt_name = net.router(nxt).name.clone();
                if orig_next.contains(&nxt_name) {
                    continue; // nxt ∈ DP[r̃, h̃_d]
                }
                if base.has_edge(&router.name, &nxt_name) {
                    continue; // (r̃, nxt) ∈ E — original link, leave it
                }
                pending.push((router.name.clone(), *nh, *prefix));
            }
        }
    }

    let mut changes = 0;
    for (router, nh, prefix) in pending {
        if deny_next_hop(patcher, net, &router, &nh, prefix)? {
            changes += 1;
        }
    }
    Ok(changes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use crate::topo_anon::anonymize_topology;
    use confmask_net_types::PrefixAllocator;
    use confmask_netgen::smallnets::example_network;
    use confmask_sim::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn anonymize_topo_then_fix(
        net: &confmask_config::NetworkConfigs,
        k_r: usize,
        seed: u64,
    ) -> (Patcher, crate::preprocess::Baseline, EquivOutcome) {
        let base = preprocess(net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(seed);
        let links = anonymize_topology(&mut patcher, &mut alloc, &base, k_r, &mut rng).unwrap();
        let outcome = enforce_route_equivalence(&mut patcher, &base, links.len()).unwrap();
        (patcher, base, outcome)
    }

    #[test]
    fn example_network_data_plane_restored_exactly() {
        let net = example_network();
        let (patcher, base, outcome) = anonymize_topo_then_fix(&net, 4, 3);
        assert!(outcome.iterations >= 1);
        let after = simulate(patcher.network()).unwrap();
        assert!(
            after
                .dataplane
                .equivalent_on(&base.sim.dataplane, &base.real_hosts),
            "data plane must match the original exactly"
        );
        // The h1 → h4 path in particular is byte-identical (the §3.2 example).
        assert_eq!(
            after.dataplane.between("h1", "h4"),
            base.sim.dataplane.between("h1", "h4"),
        );
    }

    #[test]
    fn bgp_network_data_plane_restored() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
        let (patcher, base, _) = anonymize_topo_then_fix(&net, 4, 9);
        let after = simulate(patcher.network()).unwrap();
        assert!(after
            .dataplane
            .equivalent_on(&base.sim.dataplane, &base.real_hosts));
    }

    #[test]
    fn no_fake_links_means_no_filters() {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let outcome = enforce_route_equivalence(&mut patcher, &base, 0).unwrap();
        assert_eq!(outcome.filters_added, 0);
        assert_eq!(outcome.iterations, 1);
        assert_eq!(patcher.ledger().filter_lines, 0);
    }

    #[test]
    fn filters_land_only_on_added_attachment_points() {
        let net = example_network();
        let (patcher, _base, _) = anonymize_topo_then_fix(&net, 4, 5);
        // Every distribute-list binding added must reference an added
        // interface or an added BGP neighbor.
        for rc in patcher.network().routers.values() {
            let added_ifaces: BTreeSet<&str> = rc
                .interfaces
                .iter()
                .filter(|i| i.added)
                .map(|i| i.name.as_str())
                .collect();
            for d in rc.ospf.iter().flat_map(|o| o.distribute_lists.iter()) {
                if let confmask_config::DistributeListBinding::Interface {
                    interface, added, ..
                } = d
                {
                    assert!(*added);
                    assert!(
                        added_ifaces.contains(interface.as_str()),
                        "{}: filter bound to original interface {interface}",
                        rc.hostname
                    );
                }
            }
        }
    }

    #[test]
    fn iteration_count_bounded_by_fake_links() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
        let base = preprocess(&net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(11);
        let links = anonymize_topology(&mut patcher, &mut alloc, &base, 6, &mut rng).unwrap();
        let outcome = enforce_route_equivalence(&mut patcher, &base, links.len()).unwrap();
        assert!(
            outcome.iterations <= links.len() + 5,
            "{} iterations for {} fake links",
            outcome.iterations,
            links.len()
        );
    }
}
