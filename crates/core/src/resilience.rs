//! Equivalence under failure — does the anonymized network *degrade* the
//! same way the original does?
//!
//! ConfMask's functional-equivalence guarantee (Definition 3.3) is stated
//! for the healthy network. A config consumer, however, typically wants to
//! study what-if scenarios: take the shared configurations, fail a link,
//! and see what breaks. This module verifies the natural extension of the
//! guarantee to that workflow:
//!
//! 1. **Real-element equivalence** — failing an element the original
//!    network *has* (an original link) must put every real host pair into
//!    the same [`DegradationClass`] in the original network and in the
//!    anonymized network *with its fake elements masked* (every
//!    anonymization-added interface administratively shut). Masking is
//!    what the network owner does when running what-if analysis on the
//!    shared configurations — they hold the provenance map — and it is
//!    the strongest failure guarantee the anonymization can offer:
//!    original lines are never modified, so the real substrate must
//!    degrade identically.
//!
//!    The *unmasked* anonymized network intentionally degrades
//!    differently: fake links add physical connectivity (healing
//!    partitions), and equivalence route filters permanently pin
//!    forwarding to original paths (turning some reroutes into black
//!    holes). That divergence is inherent to the scheme — Definition 3.3
//!    equivalence is stated for the healthy network — so it is *reported*
//!    per scenario rather than treated as a violation.
//! 2. **Fake-element inertness** — failing an element that only the
//!    anonymization added (a fake link, a fake router) in the *unmasked*
//!    anonymized network must change *nothing* for real host pairs: fake
//!    elements carry no real traffic, so their failure must be invisible.

use crate::pipeline::Anonymized;
use confmask_config::NetworkConfigs;
use confmask_sim::fault::{enumerate_scenarios, DegradationClass, FailureScenario, Fault};
use confmask_sim::sweep::{stream_scenarios, DigestList, PairTable, ScenarioDigest};
use confmask_sim::DataPlane;
use confmask_sim_delta::{DeltaEngine, ScenarioSweep};
use std::sync::Arc;

/// One real host pair whose degradation class differs between the original
/// and the masked anonymized network under the same failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMismatch {
    /// Source host.
    pub src: String,
    /// Destination host.
    pub dst: String,
    /// The pair's class in the failed original network.
    pub original: DegradationClass,
    /// The pair's class in the failed masked anonymized network.
    pub anonymized: DegradationClass,
}

/// Original-vs-(masked-)anonymized comparison for one real-element failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEquivalence {
    /// The injected scenario.
    pub scenario: FailureScenario,
    /// Simulation error in the failed *original* network, if any (e.g.
    /// post-failure BGP oscillation).
    pub original_error: Option<String>,
    /// Simulation error in the failed *masked anonymized* network, if any.
    pub anonymized_error: Option<String>,
    /// Degradation class of the worst-affected pair in the original
    /// network (reported for context; `None` when simulation failed).
    pub worst: Option<DegradationClass>,
    /// Pairs whose classes disagree between the original and the masked
    /// anonymized network. Empty iff behaviour is equivalent (given both
    /// simulations succeeded).
    pub mismatches: Vec<PairMismatch>,
}

impl ScenarioEquivalence {
    /// Whether this scenario degrades equivalently: both simulations agree
    /// on failure/success, and every pair's class matches.
    pub fn holds(&self) -> bool {
        self.original_error == self.anonymized_error && self.mismatches.is_empty()
    }
}

/// Inertness check for one fake-element failure (anonymized network only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeElementCheck {
    /// The injected scenario (fake link down / fake router down).
    pub scenario: FailureScenario,
    /// Simulation error in the failed anonymized network, if any. A fake
    /// element whose failure makes the network un-simulatable is itself a
    /// violation.
    pub error: Option<String>,
    /// Real host pairs whose forwarding changed at all. Must be empty.
    pub changed_pairs: Vec<(String, String)>,
}

impl FakeElementCheck {
    /// Whether the fake element was inert.
    pub fn holds(&self) -> bool {
        self.error.is_none() && self.changed_pairs.is_empty()
    }
}

/// The full equivalence-under-failure verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureEquivalenceReport {
    /// The masked anonymized network failed to simulate even before any
    /// fault was injected (fatal for the whole sweep).
    pub masked_baseline_error: Option<String>,
    /// The healthy masked anonymized network's real-pair data plane
    /// differs from the original's — every classification below is
    /// suspect when this is set.
    pub masked_baseline_differs: bool,
    /// One comparison per real-element scenario.
    pub real: Vec<ScenarioEquivalence>,
    /// One inertness check per fake-element scenario.
    pub fake: Vec<FakeElementCheck>,
}

impl FailureEquivalenceReport {
    /// Whether every scenario upholds equivalence under failure.
    pub fn holds(&self) -> bool {
        self.masked_baseline_error.is_none()
            && !self.masked_baseline_differs
            && self.real.iter().all(|s| s.holds())
            && self.fake.iter().all(|s| s.holds())
    }

    /// Rendered violations, one line each (empty when [`holds`]).
    ///
    /// [`holds`]: FailureEquivalenceReport::holds
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(e) = &self.masked_baseline_error {
            out.push(format!("masked anonymized network failed to simulate: {e}"));
        }
        if self.masked_baseline_differs {
            out.push(
                "healthy masked anonymized network's real-pair data plane differs from original"
                    .to_string(),
            );
        }
        for s in &self.real {
            if s.original_error != s.anonymized_error {
                out.push(format!(
                    "{}: simulation outcomes differ (original: {:?}, anonymized: {:?})",
                    s.scenario, s.original_error, s.anonymized_error
                ));
            }
            for m in &s.mismatches {
                out.push(format!(
                    "{}: {}→{} degrades {} in original but {} in anonymized",
                    s.scenario, m.src, m.dst, m.original, m.anonymized
                ));
            }
        }
        for s in &self.fake {
            if let Some(e) = &s.error {
                out.push(format!("{}: anonymized network failed to simulate: {e}", s.scenario));
            }
            for (src, dst) in &s.changed_pairs {
                out.push(format!(
                    "{}: fake-element failure changed real pair {src}→{dst}",
                    s.scenario
                ));
            }
        }
        out
    }

    /// Total scenarios checked.
    pub fn scenario_count(&self) -> usize {
        self.real.len() + self.fake.len()
    }
}

/// Returns the anonymized configurations with every fake element masked:
/// each anonymization-added interface is administratively shut, detaching
/// fake links and fake routers while leaving every original line intact.
pub fn mask_fake_elements(configs: &NetworkConfigs) -> NetworkConfigs {
    let mut masked = configs.clone();
    for rc in masked.routers.values_mut() {
        for iface in &mut rc.interfaces {
            if iface.added {
                iface.shutdown = true;
            }
        }
    }
    masked
}

/// Verifies equivalence under failure for an anonymization result.
///
/// Sweeps every single-link (k = 1) failure of the *original* network —
/// plus, when `k >= 2`, a seeded sample of `k2_sample` double-link
/// scenarios — through the original and the masked anonymized network and
/// compares per-pair degradation classes on the real hosts. Then fails
/// every fake link and fake router of the (unmasked) anonymized network
/// and checks real traffic is unaffected.
///
/// Per-scenario simulation failures are captured in the report rather than
/// aborting the sweep, so one pathological scenario cannot hide the rest.
pub fn verify_failure_equivalence(
    original: &NetworkConfigs,
    result: &Anonymized,
    k: usize,
    k2_sample: usize,
) -> FailureEquivalenceReport {
    let orig_base: DataPlane = result
        .baseline
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    let anon_base: DataPlane = result
        .final_sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    let masked = mask_fake_elements(&result.configs);

    let mut report = FailureEquivalenceReport::default();

    // The whole sweep runs through the incremental simulation engine:
    // every scenario is a shutdown perturbation of one of three converged
    // baselines (original / masked / anonymized), exactly the workload the
    // delta recomputation is built for. Results are byte-identical to cold
    // simulation; a baseline that fails to converge downgrades its
    // scenarios to the cold path rather than aborting the sweep.
    let engine = DeltaEngine::global();

    // The masked network's healthy data plane must equal the original's on
    // real pairs: functional equivalence holds with the fakes up, and
    // masking only removes candidates the filters already suppressed. A
    // divergence here poisons every per-scenario classification, so it is
    // recorded as its own violation.
    let masked_conv = match engine.converged(&masked) {
        Ok(conv) => conv,
        Err(e) => {
            report.masked_baseline_error = Some(e.to_string());
            return report;
        }
    };
    let masked_base: DataPlane = masked_conv
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    if masked_base != orig_base {
        report.masked_baseline_differs = true;
    }

    // 1. Real-element scenarios, enumerated from the original network (so
    //    fake links can never leak into the "real" sweep). Each network's
    //    scenarios stream through the incremental engine into compact
    //    digests — two digest lists are all that is ever retained, not two
    //    per-pair maps per scenario. Digests arrive in scenario order, so
    //    the report is byte-identical to the sequential sweep.
    let orig_conv = engine.converged(original).ok();
    let scenarios = enumerate_scenarios(original, k, result.params.seed, k2_sample);
    let orig_table = Arc::new(PairTable::from_baseline(&orig_base));
    let mut orig_list = DigestList::default();
    match &orig_conv {
        Some(conv) => {
            let sweep = ScenarioSweep::with_table(engine, conv, &orig_base, Arc::clone(&orig_table))
                .expect("table interned from this baseline always matches it");
            sweep.run(scenarios.iter(), &mut orig_list);
        }
        None => {
            stream_scenarios(
                original,
                &orig_base,
                &orig_table,
                scenarios.iter(),
                &mut orig_list,
            );
        }
    }
    // The masked sweep reuses the original's pair table when the two
    // baselines cover the same real pairs (the usual case — both are
    // restricted to real hosts), so mismatch detection is a positional
    // digest walk. A masked baseline with a different pair set gets its
    // own table plus an index translation, with pairs absent from the
    // anonymized side reading as `Partitioned` (worst case) exactly as
    // the map-lookup comparison did.
    let mut anon_list = DigestList::default();
    let anon_table = match ScenarioSweep::with_table(
        engine,
        &masked_conv,
        &masked_base,
        Arc::clone(&orig_table),
    ) {
        Some(sweep) => {
            sweep.run(scenarios.iter(), &mut anon_list);
            None
        }
        None => {
            let sweep = ScenarioSweep::new(engine, &masked_conv, &masked_base);
            let table = sweep.table();
            sweep.run(scenarios.iter(), &mut anon_list);
            Some(table)
        }
    };
    let anon_idx_of: Option<Vec<Option<usize>>> = anon_table.as_ref().map(|t| {
        (0..orig_table.len())
            .map(|i| {
                let (src, dst) = orig_table.pair(i);
                t.index_of(src, dst)
            })
            .collect()
    });

    /// Expands a digest back into one class per table pair.
    fn classes_of(digest: &ScenarioDigest, len: usize) -> Vec<DegradationClass> {
        let mut out = vec![DegradationClass::Unchanged; len];
        for (i, c) in digest.changed_classes() {
            out[i] = c;
        }
        out
    }

    report.real = scenarios
        .iter()
        .zip(orig_list.results.iter().zip(anon_list.results.iter()))
        .map(|(scenario, (orig_run, anon_run))| {
            let mut entry = ScenarioEquivalence {
                scenario: scenario.clone(),
                original_error: orig_run.as_ref().err().map(|e| e.to_string()),
                anonymized_error: anon_run.as_ref().err().map(|e| e.to_string()),
                worst: orig_run.as_ref().ok().map(|d| d.worst),
                mismatches: Vec::new(),
            };
            if let (Ok(orig), Ok(anon)) = (orig_run, anon_run) {
                let oc = classes_of(orig, orig_table.len());
                let ac = classes_of(
                    anon,
                    anon_table.as_ref().map_or(orig_table.len(), |t| t.len()),
                );
                for (i, o) in oc.iter().enumerate() {
                    let a = match &anon_idx_of {
                        None => ac[i],
                        Some(map) => map[i]
                            .map(|j| ac[j])
                            .unwrap_or(DegradationClass::Partitioned),
                    };
                    if *o != a {
                        let (src, dst) = orig_table.pair(i);
                        entry.mismatches.push(PairMismatch {
                            src: src.to_string(),
                            dst: dst.to_string(),
                            original: *o,
                            anonymized: a,
                        });
                    }
                }
            }
            entry
        })
        .collect();

    // 2. Fake-element scenarios: every fake link and every fake router.
    let mut fake_scenarios: Vec<FailureScenario> = result
        .fake_links
        .iter()
        .map(|fl| {
            FailureScenario::single(Fault::LinkDown {
                a: fl.a.clone(),
                b: fl.b.clone(),
                added: true,
            })
        })
        .collect();
    fake_scenarios.extend(result.scale.fake_routers.iter().map(|r| {
        FailureScenario::single(Fault::RouterDown { router: r.clone() })
    }));

    let anon_conv = engine.converged(&result.configs).ok();
    let fake_table = Arc::new(PairTable::from_baseline(&anon_base));
    let mut fake_list = DigestList::default();
    match &anon_conv {
        Some(conv) => {
            let sweep = ScenarioSweep::with_table(engine, conv, &anon_base, Arc::clone(&fake_table))
                .expect("table interned from this baseline always matches it");
            sweep.run(fake_scenarios.iter(), &mut fake_list);
        }
        None => {
            stream_scenarios(
                &result.configs,
                &anon_base,
                &fake_table,
                fake_scenarios.iter(),
                &mut fake_list,
            );
        }
    }
    report.fake = fake_scenarios
        .iter()
        .zip(fake_list.results.iter())
        .map(|(scenario, run)| match run {
            Ok(digest) => FakeElementCheck {
                scenario: scenario.clone(),
                error: None,
                changed_pairs: digest
                    .changed_classes()
                    .map(|(i, _)| {
                        let (src, dst) = fake_table.pair(i);
                        (src.to_string(), dst.to_string())
                    })
                    .collect(),
            },
            Err(e) => FakeElementCheck {
                scenario: scenario.clone(),
                error: Some(e.to_string()),
                changed_pairs: Vec::new(),
            },
        })
        .collect();

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{anonymize, Params};
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn example_network_degrades_equivalently() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        let report = verify_failure_equivalence(&net, &result, 1, 0);
        assert!(!report.real.is_empty(), "must sweep original links");
        assert!(
            !report.fake.is_empty(),
            "k-degree anonymization must have added fake links"
        );
        assert!(report.holds(), "violations: {:#?}", report.violations());
    }

    #[test]
    fn k2_sampling_adds_scenarios() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        let k1 = verify_failure_equivalence(&net, &result, 1, 0);
        let k2 = verify_failure_equivalence(&net, &result, 2, 2);
        assert_eq!(k2.real.len(), k1.real.len() + 2);
        assert!(k2.holds(), "violations: {:#?}", k2.violations());
    }

    #[test]
    fn fake_router_failures_are_inert() {
        let net = example_network();
        let mut params = Params::new(3, 2);
        params.fake_routers = 1;
        let result = anonymize(&net, &params).unwrap();
        assert!(!result.scale.fake_routers.is_empty());
        let report = verify_failure_equivalence(&net, &result, 1, 0);
        assert!(
            report.fake.len() > result.fake_links.len(),
            "fake-router scenarios must be present"
        );
        assert!(report.holds(), "violations: {:#?}", report.violations());
    }
}
