//! Equivalence under failure — does the anonymized network *degrade* the
//! same way the original does?
//!
//! ConfMask's functional-equivalence guarantee (Definition 3.3) is stated
//! for the healthy network. A config consumer, however, typically wants to
//! study what-if scenarios: take the shared configurations, fail a link,
//! and see what breaks. This module verifies the natural extension of the
//! guarantee to that workflow:
//!
//! 1. **Real-element equivalence** — failing an element the original
//!    network *has* (an original link) must put every real host pair into
//!    the same [`DegradationClass`] in the original network and in the
//!    anonymized network *with its fake elements masked* (every
//!    anonymization-added interface administratively shut). Masking is
//!    what the network owner does when running what-if analysis on the
//!    shared configurations — they hold the provenance map — and it is
//!    the strongest failure guarantee the anonymization can offer:
//!    original lines are never modified, so the real substrate must
//!    degrade identically.
//!
//!    The *unmasked* anonymized network intentionally degrades
//!    differently: fake links add physical connectivity (healing
//!    partitions), and equivalence route filters permanently pin
//!    forwarding to original paths (turning some reroutes into black
//!    holes). That divergence is inherent to the scheme — Definition 3.3
//!    equivalence is stated for the healthy network — so it is *reported*
//!    per scenario rather than treated as a violation.
//! 2. **Fake-element inertness** — failing an element that only the
//!    anonymization added (a fake link, a fake router) in the *unmasked*
//!    anonymized network must change *nothing* for real host pairs: fake
//!    elements carry no real traffic, so their failure must be invisible.

use crate::pipeline::Anonymized;
use confmask_config::NetworkConfigs;
use confmask_sim::fault::{
    enumerate_scenarios, run_scenario, DegradationClass, FailureScenario, Fault,
};
use confmask_sim::DataPlane;
use confmask_sim_delta::{DeltaEngine, ScenarioScratch};

/// One real host pair whose degradation class differs between the original
/// and the masked anonymized network under the same failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMismatch {
    /// Source host.
    pub src: String,
    /// Destination host.
    pub dst: String,
    /// The pair's class in the failed original network.
    pub original: DegradationClass,
    /// The pair's class in the failed masked anonymized network.
    pub anonymized: DegradationClass,
}

/// Original-vs-(masked-)anonymized comparison for one real-element failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEquivalence {
    /// The injected scenario.
    pub scenario: FailureScenario,
    /// Simulation error in the failed *original* network, if any (e.g.
    /// post-failure BGP oscillation).
    pub original_error: Option<String>,
    /// Simulation error in the failed *masked anonymized* network, if any.
    pub anonymized_error: Option<String>,
    /// Degradation class of the worst-affected pair in the original
    /// network (reported for context; `None` when simulation failed).
    pub worst: Option<DegradationClass>,
    /// Pairs whose classes disagree between the original and the masked
    /// anonymized network. Empty iff behaviour is equivalent (given both
    /// simulations succeeded).
    pub mismatches: Vec<PairMismatch>,
}

impl ScenarioEquivalence {
    /// Whether this scenario degrades equivalently: both simulations agree
    /// on failure/success, and every pair's class matches.
    pub fn holds(&self) -> bool {
        self.original_error == self.anonymized_error && self.mismatches.is_empty()
    }
}

/// Inertness check for one fake-element failure (anonymized network only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeElementCheck {
    /// The injected scenario (fake link down / fake router down).
    pub scenario: FailureScenario,
    /// Simulation error in the failed anonymized network, if any. A fake
    /// element whose failure makes the network un-simulatable is itself a
    /// violation.
    pub error: Option<String>,
    /// Real host pairs whose forwarding changed at all. Must be empty.
    pub changed_pairs: Vec<(String, String)>,
}

impl FakeElementCheck {
    /// Whether the fake element was inert.
    pub fn holds(&self) -> bool {
        self.error.is_none() && self.changed_pairs.is_empty()
    }
}

/// The full equivalence-under-failure verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureEquivalenceReport {
    /// The masked anonymized network failed to simulate even before any
    /// fault was injected (fatal for the whole sweep).
    pub masked_baseline_error: Option<String>,
    /// The healthy masked anonymized network's real-pair data plane
    /// differs from the original's — every classification below is
    /// suspect when this is set.
    pub masked_baseline_differs: bool,
    /// One comparison per real-element scenario.
    pub real: Vec<ScenarioEquivalence>,
    /// One inertness check per fake-element scenario.
    pub fake: Vec<FakeElementCheck>,
}

impl FailureEquivalenceReport {
    /// Whether every scenario upholds equivalence under failure.
    pub fn holds(&self) -> bool {
        self.masked_baseline_error.is_none()
            && !self.masked_baseline_differs
            && self.real.iter().all(|s| s.holds())
            && self.fake.iter().all(|s| s.holds())
    }

    /// Rendered violations, one line each (empty when [`holds`]).
    ///
    /// [`holds`]: FailureEquivalenceReport::holds
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(e) = &self.masked_baseline_error {
            out.push(format!("masked anonymized network failed to simulate: {e}"));
        }
        if self.masked_baseline_differs {
            out.push(
                "healthy masked anonymized network's real-pair data plane differs from original"
                    .to_string(),
            );
        }
        for s in &self.real {
            if s.original_error != s.anonymized_error {
                out.push(format!(
                    "{}: simulation outcomes differ (original: {:?}, anonymized: {:?})",
                    s.scenario, s.original_error, s.anonymized_error
                ));
            }
            for m in &s.mismatches {
                out.push(format!(
                    "{}: {}→{} degrades {} in original but {} in anonymized",
                    s.scenario, m.src, m.dst, m.original, m.anonymized
                ));
            }
        }
        for s in &self.fake {
            if let Some(e) = &s.error {
                out.push(format!("{}: anonymized network failed to simulate: {e}", s.scenario));
            }
            for (src, dst) in &s.changed_pairs {
                out.push(format!(
                    "{}: fake-element failure changed real pair {src}→{dst}",
                    s.scenario
                ));
            }
        }
        out
    }

    /// Total scenarios checked.
    pub fn scenario_count(&self) -> usize {
        self.real.len() + self.fake.len()
    }
}

/// Returns the anonymized configurations with every fake element masked:
/// each anonymization-added interface is administratively shut, detaching
/// fake links and fake routers while leaving every original line intact.
pub fn mask_fake_elements(configs: &NetworkConfigs) -> NetworkConfigs {
    let mut masked = configs.clone();
    for rc in masked.routers.values_mut() {
        for iface in &mut rc.interfaces {
            if iface.added {
                iface.shutdown = true;
            }
        }
    }
    masked
}

/// Verifies equivalence under failure for an anonymization result.
///
/// Sweeps every single-link (k = 1) failure of the *original* network —
/// plus, when `k >= 2`, a seeded sample of `k2_sample` double-link
/// scenarios — through the original and the masked anonymized network and
/// compares per-pair degradation classes on the real hosts. Then fails
/// every fake link and fake router of the (unmasked) anonymized network
/// and checks real traffic is unaffected.
///
/// Per-scenario simulation failures are captured in the report rather than
/// aborting the sweep, so one pathological scenario cannot hide the rest.
pub fn verify_failure_equivalence(
    original: &NetworkConfigs,
    result: &Anonymized,
    k: usize,
    k2_sample: usize,
) -> FailureEquivalenceReport {
    let orig_base: DataPlane = result
        .baseline
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    let anon_base: DataPlane = result
        .final_sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    let masked = mask_fake_elements(&result.configs);

    let mut report = FailureEquivalenceReport::default();

    // The whole sweep runs through the incremental simulation engine:
    // every scenario is a shutdown perturbation of one of three converged
    // baselines (original / masked / anonymized), exactly the workload the
    // delta recomputation is built for. Results are byte-identical to cold
    // simulation; a baseline that fails to converge downgrades its
    // scenarios to the cold path rather than aborting the sweep.
    let engine = DeltaEngine::global();

    // The masked network's healthy data plane must equal the original's on
    // real pairs: functional equivalence holds with the fakes up, and
    // masking only removes candidates the filters already suppressed. A
    // divergence here poisons every per-scenario classification, so it is
    // recorded as its own violation.
    let masked_conv = match engine.converged(&masked) {
        Ok(conv) => conv,
        Err(e) => {
            report.masked_baseline_error = Some(e.to_string());
            return report;
        }
    };
    let masked_base: DataPlane = masked_conv
        .sim
        .dataplane
        .restricted_to(&result.baseline.real_hosts);
    if masked_base != orig_base {
        report.masked_baseline_differs = true;
    }

    // 1. Real-element scenarios, enumerated from the original network (so
    //    fake links can never leak into the "real" sweep). The sweep fans
    //    out across the shared executor; each worker keeps its own scratch
    //    configs per baseline so scenarios never contend on the engine's
    //    shared buffer. Entries come back in scenario order, so the report
    //    is byte-identical to the sequential sweep.
    let orig_conv = engine.converged(original).ok();
    let scenarios = enumerate_scenarios(original, k, result.params.seed, k2_sample);
    report.real = confmask_exec::par_map_init(
        &scenarios,
        <(ScenarioScratch, ScenarioScratch)>::default,
        |(orig_scratch, masked_scratch), _idx, scenario| {
            let orig_run = match &orig_conv {
                Some(conv) => engine.run_scenario_scratch(conv, &orig_base, scenario, orig_scratch),
                None => run_scenario(original, &orig_base, scenario),
            };
            let anon_run =
                engine.run_scenario_scratch(&masked_conv, &masked_base, scenario, masked_scratch);
            let mut entry = ScenarioEquivalence {
                scenario: scenario.clone(),
                original_error: orig_run.as_ref().err().map(|e| e.to_string()),
                anonymized_error: anon_run.as_ref().err().map(|e| e.to_string()),
                worst: orig_run.as_ref().ok().map(|o| o.worst()),
                mismatches: Vec::new(),
            };
            if let (Ok(orig), Ok(anon)) = (&orig_run, &anon_run) {
                for ((src, dst), oc) in &orig.classes {
                    let ac = anon
                        .classes
                        .get(&(src.clone(), dst.clone()))
                        .copied()
                        .unwrap_or(DegradationClass::Partitioned);
                    if *oc != ac {
                        entry.mismatches.push(PairMismatch {
                            src: src.clone(),
                            dst: dst.clone(),
                            original: *oc,
                            anonymized: ac,
                        });
                    }
                }
            }
            entry
        },
    );

    // 2. Fake-element scenarios: every fake link and every fake router.
    let mut fake_scenarios: Vec<FailureScenario> = result
        .fake_links
        .iter()
        .map(|fl| {
            FailureScenario::single(Fault::LinkDown {
                a: fl.a.clone(),
                b: fl.b.clone(),
                added: true,
            })
        })
        .collect();
    fake_scenarios.extend(result.scale.fake_routers.iter().map(|r| {
        FailureScenario::single(Fault::RouterDown { router: r.clone() })
    }));

    let anon_conv = engine.converged(&result.configs).ok();
    report.fake = confmask_exec::par_map_init(
        &fake_scenarios,
        ScenarioScratch::default,
        |scratch, _idx, scenario| {
            let run = match &anon_conv {
                Some(conv) => engine.run_scenario_scratch(conv, &anon_base, scenario, scratch),
                None => run_scenario(&result.configs, &anon_base, scenario),
            };
            match run {
                Ok(outcome) => FakeElementCheck {
                    scenario: scenario.clone(),
                    error: None,
                    changed_pairs: outcome
                        .classes
                        .iter()
                        .filter(|(_, c)| **c != DegradationClass::Unchanged)
                        .map(|(k, _)| k.clone())
                        .collect(),
                },
                Err(e) => FakeElementCheck {
                    scenario: scenario.clone(),
                    error: Some(e.to_string()),
                    changed_pairs: Vec::new(),
                },
            }
        },
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{anonymize, Params};
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn example_network_degrades_equivalently() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        let report = verify_failure_equivalence(&net, &result, 1, 0);
        assert!(!report.real.is_empty(), "must sweep original links");
        assert!(
            !report.fake.is_empty(),
            "k-degree anonymization must have added fake links"
        );
        assert!(report.holds(), "violations: {:#?}", report.violations());
    }

    #[test]
    fn k2_sampling_adds_scenarios() {
        let net = example_network();
        let result = anonymize(&net, &Params::new(3, 2)).unwrap();
        let k1 = verify_failure_equivalence(&net, &result, 1, 0);
        let k2 = verify_failure_equivalence(&net, &result, 2, 2);
        assert_eq!(k2.real.len(), k1.real.len() + 2);
        assert!(k2.holds(), "violations: {:#?}", k2.violations());
    }

    #[test]
    fn fake_router_failures_are_inert() {
        let net = example_network();
        let mut params = Params::new(3, 2);
        params.fake_routers = 1;
        let result = anonymize(&net, &params).unwrap();
        assert!(!result.scale.fake_routers.is_empty());
        let report = verify_failure_equivalence(&net, &result, 1, 0);
        assert!(
            report.fake.len() > result.fake_links.len(),
            "fake-router scenarios must be present"
        );
        assert!(report.holds(), "violations: {:#?}", report.violations());
    }
}
