//! Evaluation metrics (§7.1): route anonymity `N_r`, route utility `P_U`,
//! topology anonymity `k_d`, topology utility (clustering coefficient), and
//! configuration utility `U_C`.

use confmask_sim::DataPlane;
use std::collections::{BTreeMap, BTreeSet};

/// Route-anonymity statistics: distinct routing paths per (ingress router,
/// egress router) pair — Figure 5's `N_r`.
#[derive(Debug, Clone, Default)]
pub struct RouteAnonymity {
    /// Distinct paths per edge-router pair.
    pub per_pair: BTreeMap<(String, String), usize>,
}

impl RouteAnonymity {
    /// Average `N_r` over pairs.
    pub fn avg(&self) -> f64 {
        if self.per_pair.is_empty() {
            return 0.0;
        }
        self.per_pair.values().sum::<usize>() as f64 / self.per_pair.len() as f64
    }

    /// Minimum `N_r` over pairs (how exposed the most identifiable pair is).
    pub fn min(&self) -> usize {
        self.per_pair.values().copied().min().unwrap_or(0)
    }
}

/// Computes `N_r` from a data plane: for each (ingress, egress) router pair
/// carrying host traffic, the number of distinct *router sequences* among
/// all host-to-host paths between them (Definition 3.2's `p ∼ p'`
/// equivalence groups paths by ingress and egress router).
pub fn route_anonymity(dp: &DataPlane) -> RouteAnonymity {
    let mut groups: BTreeMap<(String, String), BTreeSet<Vec<String>>> = BTreeMap::new();
    for (_pair, ps) in dp.pairs() {
        for path in &ps.paths {
            if path.len() < 3 {
                continue; // same-LAN delivery has no routers
            }
            let routers = path[1..path.len() - 1].to_vec();
            let key = (
                routers.first().expect("non-empty").clone(),
                routers.last().expect("non-empty").clone(),
            );
            groups.entry(key).or_default().insert(routers);
        }
    }
    RouteAnonymity {
        per_pair: groups.into_iter().map(|(k, v)| (k, v.len())).collect(),
    }
}

/// Route utility `P_U` (Figure 8): the fraction of host pairs whose path
/// sets are *exactly* preserved. Pairs are restricted to `real_hosts`.
pub fn path_preservation(
    original: &DataPlane,
    anonymized: &DataPlane,
    real_hosts: &BTreeSet<String>,
) -> f64 {
    let orig = original.restricted_to(real_hosts);
    if orig.is_empty() {
        return 1.0;
    }
    let kept = orig
        .pairs()
        .filter(|(pair, ps)| anonymized.between(&pair.0, &pair.1) == Some(*ps))
        .count();
    kept as f64 / orig.len() as f64
}

/// Configuration utility `U_C = 1 − N_l / P_l` (§7.1): `added` injected
/// lines against the `total` lines of the anonymized configurations.
pub fn config_utility(total_lines: usize, added_lines: usize) -> f64 {
    if total_lines == 0 {
        return 1.0;
    }
    1.0 - added_lines as f64 / total_lines as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_sim::PathSet;

    fn path(nodes: &[&str]) -> Vec<String> {
        nodes.iter().map(|s| s.to_string()).collect()
    }

    fn dp(entries: &[(&str, &str, Vec<Vec<String>>)]) -> DataPlane {
        let mut dp = DataPlane::default();
        for (s, d, paths) in entries {
            dp.insert(
                s.to_string(),
                d.to_string(),
                PathSet {
                    paths: paths.clone(),
                    blackhole: false,
                    has_loop: false,
                },
            );
        }
        dp
    }

    #[test]
    fn route_anonymity_counts_distinct_router_sequences() {
        let d = dp(&[
            ("h1", "h2", vec![path(&["h1", "r1", "r2", "h2"])]),
            ("h1x", "h2", vec![path(&["h1x", "r1", "r3", "r2", "h2"])]),
            ("h2", "h1", vec![path(&["h2", "r2", "r1", "h1"])]),
        ]);
        let nr = route_anonymity(&d);
        assert_eq!(nr.per_pair[&("r1".to_string(), "r2".to_string())], 2);
        assert_eq!(nr.per_pair[&("r2".to_string(), "r1".to_string())], 1);
        assert_eq!(nr.min(), 1);
        assert!((nr.avg() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn route_anonymity_ignores_same_lan_paths() {
        let d = dp(&[("h1", "h1b", vec![path(&["h1", "h1b"])])]);
        assert!(route_anonymity(&d).per_pair.is_empty());
    }

    #[test]
    fn path_preservation_full_and_partial() {
        let orig = dp(&[
            ("h1", "h2", vec![path(&["h1", "r1", "r2", "h2"])]),
            ("h2", "h1", vec![path(&["h2", "r2", "r1", "h1"])]),
        ]);
        let hosts: BTreeSet<String> = ["h1".to_string(), "h2".to_string()].into();
        assert!((path_preservation(&orig, &orig, &hosts) - 1.0).abs() < 1e-12);

        let half = dp(&[
            ("h1", "h2", vec![path(&["h1", "r1", "r3", "r2", "h2"])]), // changed
            ("h2", "h1", vec![path(&["h2", "r2", "r1", "h1"])]),       // kept
        ]);
        assert!((path_preservation(&orig, &half, &hosts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_utility_formula() {
        assert!((config_utility(1000, 100) - 0.9).abs() < 1e-12);
        assert!((config_utility(0, 0) - 1.0).abs() < 1e-12);
    }
}
