//! Step 1 — topology anonymization (§4.2).
//!
//! Fake links are added until the router graph is k-degree anonymous:
//!
//! * **intra-AS** (or the whole graph for pure-IGP networks): the Liu–Terzi
//!   edge-addition anonymizer runs per AS; each fake link gets a fresh /31,
//!   interfaces on both routers, and — for link-state IGPs — an explicit
//!   OSPF cost equal to the *original minimum path cost* between the two
//!   routers (each direction separately), which is the link-state SFE
//!   condition `cost(ê) = min_cost(…)` of §5.1: the fake link creates
//!   equal-cost candidates without ever creating a cheaper path;
//! * **inter-AS** (BGP networks): the AS-level supergraph is anonymized the
//!   same way, each fake AS-level edge realized between randomly chosen
//!   border routers with eBGP sessions on both ends (§4.2);
//! * a final **global pass** tops up whole-graph k-degree anonymity
//!   (Definition 3.1 is stated on all of `R`), adding intra- or inter-AS
//!   links as the endpoints dictate.
//!
//! Every operation is an *addition*; original nodes, links, and
//! configuration lines are untouched (topology preservation by
//! construction).

use crate::preprocess::Baseline;
use crate::{CostStrategy, Error};
use confmask_config::patch::Patcher;
use confmask_net_types::{Asn, PrefixAllocator};
use confmask_topology::kdegree::plan_k_degree;
use confmask_topology::supergraph::{build_supergraph, pick_border_pair};
use confmask_topology::{LinkInfo, NodeKind, Topology};
use rand::Rng;
use std::collections::BTreeMap;

/// Maximum OSPF interface cost (Cisco limit), used when two endpoints have
/// no original IGP path.
const MAX_OSPF_COST: u32 = 65_535;

/// A fake link added during topology anonymization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeLink {
    /// First endpoint (router hostname).
    pub a: String,
    /// Second endpoint (router hostname).
    pub b: String,
    /// Whether the link crosses AS boundaries (realized as an eBGP session
    /// rather than an IGP adjacency).
    pub inter_as: bool,
}

/// Anonymizes the topology in place, returning the fake links added.
pub fn anonymize_topology<R: Rng>(
    patcher: &mut Patcher,
    alloc: &mut PrefixAllocator,
    base: &Baseline,
    k_r: usize,
    rng: &mut R,
) -> Result<Vec<FakeLink>, Error> {
    anonymize_topology_with(patcher, alloc, base, k_r, CostStrategy::MinCost, rng)
}

/// [`anonymize_topology`] with an explicit fake-link cost strategy (the
/// §3.2 ablation; production callers use [`CostStrategy::MinCost`]).
pub fn anonymize_topology_with<R: Rng>(
    patcher: &mut Patcher,
    alloc: &mut PrefixAllocator,
    base: &Baseline,
    k_r: usize,
    strategy: CostStrategy,
    rng: &mut R,
) -> Result<Vec<FakeLink>, Error> {
    // Live router graph (updated as we add links), extracted from the
    // *patched* network so that fake routers added by scale obfuscation
    // participate like ordinary nodes. The original IGP distance matrix
    // still drives fake-link costs (costs always come from the original).
    let current = confmask_topology::extract::extract_topology(patcher.network());
    let (mut rgraph, _) = current.router_subgraph();
    let orig_paths = confmask_sim::ospf::router_paths(&base.sim.net);
    let stub_cost = crate::scale::safe_stub_cost(base);
    let mut fake_links: Vec<FakeLink> = Vec::new();

    // AS membership from the patched configs (covers fake routers too).
    let asn_of: BTreeMap<String, Asn> = patcher
        .network()
        .routers
        .iter()
        .filter_map(|(n, rc)| rc.bgp.as_ref().map(|b| (n.clone(), b.asn)))
        .collect();

    // Group routers by AS (pure-IGP networks form one group).
    let mut groups: BTreeMap<Option<Asn>, Vec<usize>> = BTreeMap::new();
    for v in rgraph.routers() {
        let asn = asn_of.get(rgraph.name(v)).copied();
        groups.entry(asn).or_default().push(v);
    }

    // Phase 1 — per-AS anonymization on the induced intra-AS subgraph.
    for members in groups.values() {
        let plan = {
            let (sub, back) = induced(&rgraph, members);
            let plan = plan_k_degree(&sub, k_r, rng)?;
            plan.new_edges
                .iter()
                .map(|&(x, y)| (back[x], back[y]))
                .collect::<Vec<_>>()
        };
        for (a, b) in plan {
            realize_link(patcher, alloc, base, &orig_paths, &asn_of, stub_cost, strategy, &mut rgraph, a, b, &mut fake_links)?;
        }
    }

    // Phase 2 — AS-level supergraph anonymization (BGP networks only).
    if groups.len() > 1 && groups.keys().all(|k| k.is_some()) {
        let asn_of_idx: BTreeMap<usize, Asn> = rgraph
            .routers()
            .into_iter()
            .filter_map(|v| asn_of.get(rgraph.name(v)).map(|a| (v, *a)))
            .collect();
        let sg = build_supergraph(&rgraph, &asn_of_idx);
        let all_of: BTreeMap<Asn, Vec<usize>> = groups
            .iter()
            .filter_map(|(k, v)| k.map(|a| (a, v.clone())))
            .collect();
        let k_as = k_r.min(sg.graph.node_count());
        let plan = plan_k_degree(&sg.graph, k_as, rng)?;
        for &(sa, sb) in &plan.new_edges {
            let (asn_a, asn_b) = (sg.asns[sa], sg.asns[sb]);
            if let Some((a, b)) = pick_border_pair(&sg, asn_a, asn_b, &all_of, rng) {
                realize_link(patcher, alloc, base, &orig_paths, &asn_of, stub_cost, strategy, &mut rgraph, a, b, &mut fake_links)?;
            }
        }
    }

    // Phase 3 — global top-up: Definition 3.1 is on the whole router set.
    let plan = plan_k_degree(&rgraph, k_r, rng)?;
    for (a, b) in plan.new_edges {
        realize_link(patcher, alloc, base, &orig_paths, &asn_of, stub_cost, strategy, &mut rgraph, a, b, &mut fake_links)?;
    }

    Ok(fake_links)
}

/// Induced subgraph over `members`, with the back-mapping to parent indices.
fn induced(g: &Topology, members: &[usize]) -> (Topology, Vec<usize>) {
    let mut sub = Topology::new();
    for &m in members {
        sub.add_node(g.name(m), NodeKind::Router);
    }
    let pos: BTreeMap<usize, usize> = members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    for (a, b, info) in g.edges() {
        if let (Some(&x), Some(&y)) = (pos.get(&a), pos.get(&b)) {
            sub.add_edge(x, y, *info);
        }
    }
    (sub, members.to_vec())
}

/// Realizes one fake link between router-graph nodes `a` and `b`:
/// allocates a fresh /31, adds both interfaces, and wires the protocols.
#[allow(clippy::too_many_arguments)]
fn realize_link(
    patcher: &mut Patcher,
    alloc: &mut PrefixAllocator,
    base: &Baseline,
    orig_paths: &confmask_sim::ospf::RouterPaths,
    asn_of: &BTreeMap<String, Asn>,
    stub_cost: u32,
    strategy: CostStrategy,
    rgraph: &mut Topology,
    a: usize,
    b: usize,
    out: &mut Vec<FakeLink>,
) -> Result<(), Error> {
    if rgraph.has_edge(a, b) {
        return Ok(()); // a previous phase already realized this pair
    }
    let name_a = rgraph.name(a).to_string();
    let name_b = rgraph.name(b).to_string();
    let asn_a = asn_of.get(&name_a).copied();
    let asn_b = asn_of.get(&name_b).copied();
    let inter_as = asn_a.is_some() && asn_b.is_some() && asn_a != asn_b;

    let (prefix, lo, hi) = alloc
        .allocate_p2p()
        .map_err(|e| Error::InvalidInput(format!("address space exhausted: {e}")))?;

    if inter_as {
        // Inter-AS: interfaces plus eBGP sessions, no IGP.
        patcher.add_interface(&name_a, lo, 31, None, Some(format!("to-{name_b}")))?;
        patcher.add_interface(&name_b, hi, 31, None, Some(format!("to-{name_a}")))?;
        patcher.add_bgp_neighbor(&name_a, hi, asn_b.expect("inter-AS implies ASNs"))?;
        patcher.add_bgp_neighbor(&name_b, lo, asn_a.expect("inter-AS implies ASNs"))?;
    } else {
        // Intra-AS (or pure IGP): link-state costs follow the SFE condition.
        let ra = base.sim.net.router_id(&name_a);
        let rb = base.sim.net.router_id(&name_b);
        let runs_ospf = |name: &str| {
            patcher
                .network()
                .routers
                .get(name)
                .map(|rc| rc.ospf.is_some())
                .unwrap_or(false)
        };
        let ospf_link = runs_ospf(&name_a) && runs_ospf(&name_b);
        let (cost_ab, cost_ba) = if !ospf_link {
            (None, None) // RIP: hop metric, no cost lines
        } else {
            match strategy {
                CostStrategy::MinCost => match (ra, rb) {
                    (Some(ra), Some(rb)) => {
                        let d_ab = orig_paths.dist[ra.0 as usize][rb.0 as usize];
                        let d_ba = orig_paths.dist[rb.0 as usize][ra.0 as usize];
                        (
                            Some(u32::try_from(d_ab).unwrap_or(MAX_OSPF_COST).min(MAX_OSPF_COST)),
                            Some(u32::try_from(d_ba).unwrap_or(MAX_OSPF_COST).min(MAX_OSPF_COST)),
                        )
                    }
                    // At least one endpoint is a fake router: half-diameter
                    // costs guarantee no shortcut through it (see scale.rs).
                    _ => (Some(stub_cost), Some(stub_cost)),
                },
                CostStrategy::LargeCost => (Some(MAX_OSPF_COST), Some(MAX_OSPF_COST)),
                CostStrategy::DefaultCost => (None, None),
            }
        };
        patcher.add_interface(&name_a, lo, 31, cost_ab, Some(format!("to-{name_b}")))?;
        patcher.add_interface(&name_b, hi, 31, cost_ba, Some(format!("to-{name_a}")))?;
        patcher.enable_network(&name_a, prefix, false)?;
        patcher.enable_network(&name_b, prefix, false)?;
    }

    rgraph.add_edge(a, b, LinkInfo::default());
    out.push(FakeLink {
        a: name_a,
        b: name_b,
        inter_as,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use confmask_netgen::smallnets::example_network;
    use confmask_topology::extract::extract_topology;
    use confmask_topology::metrics::min_same_degree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(net: &confmask_config::NetworkConfigs, k_r: usize) -> (Patcher, Vec<FakeLink>) {
        let base = preprocess(net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(1);
        let links =
            anonymize_topology(&mut patcher, &mut alloc, &base, k_r, &mut rng).unwrap();
        (patcher, links)
    }

    #[test]
    fn example_network_reaches_k_anonymity() {
        let net = example_network();
        let (patcher, links) = run(&net, 3);
        assert!(!links.is_empty());
        let topo = extract_topology(patcher.network());
        assert!(min_same_degree(&topo) >= 3);
        // All interfaces added, none removed.
        for (name, rc) in &net.routers {
            let new_rc = &patcher.network().routers[name];
            assert!(new_rc.interfaces.len() >= rc.interfaces.len());
            for (orig, now) in rc.interfaces.iter().zip(new_rc.interfaces.iter()) {
                assert_eq!(orig, now, "original interfaces untouched");
            }
        }
    }

    #[test]
    fn fake_ospf_links_use_min_cost() {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        let (patcher, links) = run(&net, 4);
        // Every fake intra-AS interface's cost equals the original min cost
        // between the endpoints.
        let orig_paths = confmask_sim::ospf::router_paths(&base.sim.net);
        for link in links.iter().filter(|l| !l.inter_as) {
            let ra = base.sim.net.router_id(&link.a).unwrap();
            let rb = base.sim.net.router_id(&link.b).unwrap();
            let d = orig_paths.dist[ra.0 as usize][rb.0 as usize];
            let rc = &patcher.network().routers[&link.a];
            let iface = rc
                .interfaces
                .iter()
                .find(|i| i.added && i.description.as_deref() == Some(&format!("to-{}", link.b)))
                .expect("fake interface exists");
            assert_eq!(iface.ospf_cost, Some(u32::try_from(d).unwrap()));
        }
    }

    #[test]
    fn bgp_network_gets_global_k_anonymity() {
        let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::backbone());
        let (patcher, links) = run(&net, 4);
        let topo = extract_topology(patcher.network());
        assert!(min_same_degree(&topo) >= 4, "got {}", min_same_degree(&topo));
        // Inter-AS fake links get eBGP sessions, not IGP statements.
        for l in links.iter().filter(|l| l.inter_as) {
            let rc = &patcher.network().routers[&l.a];
            let added_neighbors = rc
                .bgp
                .as_ref()
                .map(|b| b.neighbors.iter().filter(|n| n.added).count())
                .unwrap_or(0);
            assert!(added_neighbors > 0, "{} should have an added eBGP session", l.a);
        }
    }

    #[test]
    fn fake_prefixes_disjoint_from_original_space() {
        let net = example_network();
        let originals = net.used_prefixes();
        let (patcher, _) = run(&net, 4);
        for rc in patcher.network().routers.values() {
            for iface in rc.interfaces.iter().filter(|i| i.added) {
                let p = iface.prefix().unwrap();
                for orig in &originals {
                    assert!(!orig.overlaps(&p), "{p} overlaps original {orig}");
                }
            }
        }
    }
}
