//! PII obfuscation add-ons (§9, Figure 3's "add-on" stage).
//!
//! ConfMask's core pipeline anonymizes the *implicit* information (topology
//! and routes); the paper notes it "is compatible with any text-based
//! information obfuscation technique as downstream plug-in tasks", naming
//! prefix-preserving IP anonymization (Crypto-PAn [39, 43]), AS-number
//! hashing, and password hashing (NetConan \[21\]). This module provides
//! those add-ons:
//!
//! * **prefix-preserving address anonymization** — a deterministic, keyed,
//!   bijective mapping on IPv4 addresses with the Crypto-PAn structure
//!   (bit `i` of the output is bit `i` of the input XORed with a
//!   pseudo-random function of the first `i` input bits), so two addresses
//!   share an anonymized /n prefix **iff** they shared a real /n prefix.
//!   That property is exactly what keeps the configurations simulable: /31
//!   link endpoints stay paired, `network` statements keep covering their
//!   interfaces, and the data plane is preserved up to renaming.
//! * **device renaming** — deterministic pseudonyms for routers and hosts,
//!   applied to hostnames and to every occurrence inside descriptions and
//!   uninterpreted lines.
//! * **secret scrubbing** — NetConan-style redaction of password/secret/
//!   community/username material in uninterpreted lines.
//!
//! The transformation preserves behaviour: the anonymized network simulates
//! to a data plane identical to the input's up to the renaming map (tested
//! in this module and in `tests/`).

use confmask_config::{HostConfig, NetworkConfigs, RouterConfig};
use confmask_net_types::{Ipv4Addr, Ipv4Prefix};
use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Options for the PII pass.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PiiOptions {
    /// Apply prefix-preserving address anonymization.
    pub anonymize_addresses: bool,
    /// Replace device hostnames with pseudonyms.
    pub rename_devices: bool,
    /// Redact secrets in uninterpreted configuration lines.
    pub scrub_secrets: bool,
    /// Key for the deterministic mappings.
    pub seed: u64,
}

impl Default for PiiOptions {
    fn default() -> Self {
        Self {
            anonymize_addresses: true,
            rename_devices: true,
            scrub_secrets: true,
            seed: 0,
        }
    }
}

/// What the PII pass did.
#[derive(Debug, Clone, Default)]
pub struct PiiReport {
    /// Addresses rewritten (interface, neighbor, gateway, …).
    pub addresses_rewritten: usize,
    /// Devices renamed.
    pub devices_renamed: usize,
    /// Secret-bearing lines redacted.
    pub secrets_scrubbed: usize,
    /// Old name → new name (keep this private — it de-anonymizes!).
    pub name_map: BTreeMap<String, String>,
}

/// The keyed prefix-preserving address mapping (Crypto-PAn structure with
/// the AES PRF replaced by a keyed SipHash — adequate for research
/// anonymization; swap in a real cipher for adversarial settings).
#[derive(Debug, Clone, Copy)]
pub struct AddrMapper {
    key: u64,
}

impl AddrMapper {
    /// Creates a mapper for a key.
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    fn prf_bit(&self, prefix_bits: u32, len: u8) -> u32 {
        let mut h = DefaultHasher::new();
        (self.key, len, prefix_bits).hash(&mut h);
        (h.finish() & 1) as u32
    }

    /// Maps one address, preserving prefix relations.
    pub fn map_addr(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let input = u32::from(addr);
        let mut out = 0u32;
        for i in 0..32u8 {
            // The first i bits of the *input* select the PRF node.
            let prefix = if i == 0 { 0 } else { input >> (32 - i) };
            let flip = self.prf_bit(prefix, i);
            let bit = (input >> (31 - i)) & 1;
            out = (out << 1) | (bit ^ flip);
        }
        Ipv4Addr::from(out)
    }

    /// Maps a prefix: the network address maps with the same length
    /// (host bits of the mapped network address are cleared — consistent
    /// because the mapping is prefix-preserving).
    pub fn map_prefix(&self, p: Ipv4Prefix) -> Ipv4Prefix {
        Ipv4Prefix::new(self.map_addr(p.network()), p.len()).expect("length unchanged")
    }
}

const SECRET_KEYWORDS: [&str; 6] = [
    "secret",
    "password",
    "community",
    "username",
    "tacacs-server host",
    "key",
];

/// Applies the PII add-ons, returning the transformed network and a report.
pub fn apply_pii(net: &NetworkConfigs, opts: &PiiOptions) -> (NetworkConfigs, PiiReport) {
    let mut report = PiiReport::default();
    let mapper = AddrMapper::new(opts.seed ^ 0x00C0FFEE);

    // Name map: deterministic pseudonyms in sorted order.
    if opts.rename_devices {
        for (i, name) in net.routers.keys().enumerate() {
            report.name_map.insert(name.clone(), format!("rtr-{i:03}"));
        }
        for (i, name) in net.hosts.keys().enumerate() {
            report.name_map.insert(name.clone(), format!("host-{i:03}"));
        }
        report.devices_renamed = report.name_map.len();
    }

    // Longest-first replacement avoids partial-name collisions
    // (e.g. "r1" inside "r12").
    let mut replacements: Vec<(&String, &String)> = report.name_map.iter().collect();
    replacements.sort_by_key(|(old, _)| std::cmp::Reverse(old.len()));
    let rename_text = |s: &str| -> String {
        let mut out = s.to_string();
        for (old, new) in &replacements {
            out = out.replace(old.as_str(), new.as_str());
        }
        out
    };
    let rename_name =
        |s: &String| -> String { report.name_map.get(s).cloned().unwrap_or_else(|| s.clone()) };

    let mut routers: Vec<RouterConfig> = Vec::with_capacity(net.routers.len());
    for rc in net.routers.values() {
        let mut rc = rc.clone();
        if opts.rename_devices {
            rc.hostname = rename_name(&rc.hostname);
        }
        for iface in rc.interfaces.iter_mut() {
            if opts.anonymize_addresses {
                if let Some((addr, len)) = iface.address {
                    iface.address = Some((mapper.map_addr(addr), len));
                    report.addresses_rewritten += 1;
                }
            }
            if opts.rename_devices {
                if let Some(d) = &iface.description {
                    iface.description = Some(rename_text(d));
                }
            }
        }
        if opts.anonymize_addresses {
            let map_stmts = |stmts: &mut Vec<confmask_config::NetworkStatement>,
                             count: &mut usize| {
                for n in stmts.iter_mut() {
                    n.prefix = mapper.map_prefix(n.prefix);
                    *count += 1;
                }
            };
            if let Some(o) = rc.ospf.as_mut() {
                map_stmts(&mut o.networks, &mut report.addresses_rewritten);
            }
            if let Some(r) = rc.rip.as_mut() {
                map_stmts(&mut r.networks, &mut report.addresses_rewritten);
            }
            if let Some(b) = rc.bgp.as_mut() {
                map_stmts(&mut b.networks, &mut report.addresses_rewritten);
                for nb in b.neighbors.iter_mut() {
                    nb.addr = mapper.map_addr(nb.addr);
                    report.addresses_rewritten += 1;
                }
                for d in b.distribute_lists.iter_mut() {
                    if let confmask_config::DistributeListBinding::Neighbor { neighbor, .. } = d {
                        *neighbor = mapper.map_addr(*neighbor);
                    }
                }
            }
            for pl in rc.prefix_lists.iter_mut() {
                for e in pl.entries.iter_mut() {
                    e.prefix = mapper.map_prefix(e.prefix);
                    report.addresses_rewritten += 1;
                }
            }
            for sr in rc.static_routes.iter_mut() {
                sr.prefix = mapper.map_prefix(sr.prefix);
                sr.next_hop = mapper.map_addr(sr.next_hop);
                report.addresses_rewritten += 2;
            }
        }
        let mut new_lines = Vec::with_capacity(rc.extra_lines.len());
        for line in &rc.extra_lines {
            let mut line = if opts.rename_devices {
                rename_text(line)
            } else {
                line.clone()
            };
            if opts.scrub_secrets && SECRET_KEYWORDS.iter().any(|k| line.contains(k)) {
                line = redact_last_token(&line);
                report.secrets_scrubbed += 1;
            }
            new_lines.push(line);
        }
        rc.extra_lines = new_lines;
        routers.push(rc);
    }

    let mut hosts: Vec<HostConfig> = Vec::with_capacity(net.hosts.len());
    for hc in net.hosts.values() {
        let mut hc = hc.clone();
        if opts.rename_devices {
            hc.hostname = rename_name(&hc.hostname);
        }
        if opts.anonymize_addresses {
            hc.address = (mapper.map_addr(hc.address.0), hc.address.1);
            hc.gateway = mapper.map_addr(hc.gateway);
            report.addresses_rewritten += 2;
        }
        hosts.push(hc);
    }

    (NetworkConfigs::new(routers, hosts), report)
}

/// Replaces the final whitespace-separated token of a line with `REDACTED`.
fn redact_last_token(line: &str) -> String {
    match line.rfind(char::is_whitespace) {
        Some(pos) => format!("{}{}REDACTED", &line[..pos], &line[pos..pos + 1]),
        None => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn mapping_is_prefix_preserving() {
        let m = AddrMapper::new(42);
        for (a, b, shared) in [
            ("10.0.0.0", "10.0.0.1", 31u8),
            ("10.1.2.3", "10.1.9.9", 16),
            ("192.168.4.1", "192.168.4.200", 24),
        ] {
            let (a, b): (Ipv4Addr, Ipv4Addr) = (a.parse().unwrap(), b.parse().unwrap());
            let (ma, mb) = (m.map_addr(a), m.map_addr(b));
            let mask = u32::MAX << (32 - u32::from(shared));
            assert_eq!(
                u32::from(ma) & mask,
                u32::from(mb) & mask,
                "{a}/{b} shared /{shared} must survive"
            );
            // First differing bit position is preserved too (strict
            // prefix-preservation, both directions).
            let diff_in = (u32::from(a) ^ u32::from(b)).leading_zeros();
            let diff_out = (u32::from(ma) ^ u32::from(mb)).leading_zeros();
            assert_eq!(diff_in, diff_out);
        }
    }

    #[test]
    fn mapping_is_bijective_on_sample() {
        let m = AddrMapper::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let mapped = m.map_addr(Ipv4Addr::from(i * 429_497));
            assert!(seen.insert(mapped), "collision at {i}");
        }
    }

    #[test]
    fn different_keys_give_different_mappings() {
        let a = AddrMapper::new(1).map_addr("10.0.0.1".parse().unwrap());
        let b = AddrMapper::new(2).map_addr("10.0.0.1".parse().unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn pii_pass_preserves_behaviour_up_to_renaming() {
        let net = example_network();
        let before = confmask_sim::simulate(&net).unwrap();
        let (anon, report) = apply_pii(&net, &PiiOptions::default());
        assert!(confmask_config::validate(&anon).is_empty(), "{:?}", confmask_config::validate(&anon));
        let after = confmask_sim::simulate(&anon).unwrap();

        // Translate the original data plane through the name map and
        // compare exactly.
        let rename = |n: &String| report.name_map.get(n).cloned().unwrap_or_else(|| n.clone());
        let mut translated = confmask_sim::DataPlane::default();
        for ((s, d), ps) in before.dataplane.pairs() {
            let mut ps = ps.clone();
            for p in ps.paths.iter_mut() {
                for node in p.iter_mut() {
                    *node = rename(node);
                }
            }
            translated.insert(rename(s), rename(d), ps);
        }
        assert_eq!(translated, after.dataplane);
    }

    #[test]
    fn secrets_are_scrubbed() {
        let mut net = example_network();
        for rc in net.routers.values_mut() {
            rc.extra_lines.clear(); // drop the boilerplate (it has secrets too)
        }
        net.routers.get_mut("r1").unwrap().extra_lines = vec![
            "enable secret 5 $1$abc$SENSITIVE".to_string(),
            "snmp-server community s3cr3t RO".to_string(),
            "ntp server 192.0.2.30".to_string(),
        ];
        let (anon, report) = apply_pii(&net, &PiiOptions::default());
        let rtr = anon
            .routers
            .values()
            .find(|r| !r.extra_lines.is_empty())
            .unwrap();
        assert!(rtr.extra_lines[0].ends_with("REDACTED"));
        assert!(rtr.extra_lines[1].ends_with("REDACTED"));
        assert!(!rtr.extra_lines[0].contains("SENSITIVE"));
        assert_eq!(report.secrets_scrubbed, 2);
        assert_eq!(rtr.extra_lines[2], "ntp server 192.0.2.30");
    }

    #[test]
    fn renaming_covers_descriptions() {
        let net = example_network();
        let (anon, report) = apply_pii(
            &net,
            &PiiOptions {
                anonymize_addresses: false,
                scrub_secrets: false,
                ..PiiOptions::default()
            },
        );
        assert!(report.devices_renamed >= 7);
        for rc in anon.routers.values() {
            assert!(rc.hostname.starts_with("rtr-"));
            for iface in &rc.interfaces {
                if let Some(d) = &iface.description {
                    for old in report.name_map.keys() {
                        assert!(!d.contains(old.as_str()), "{d} leaks {old}");
                    }
                }
            }
        }
    }

    #[test]
    fn options_can_disable_each_pass() {
        let net = example_network();
        let (anon, report) = apply_pii(
            &net,
            &PiiOptions {
                anonymize_addresses: false,
                rename_devices: false,
                scrub_secrets: false,
                seed: 0,
            },
        );
        assert_eq!(anon, net);
        assert_eq!(report.addresses_rewritten, 0);
        assert_eq!(report.devices_renamed, 0);
    }
}
