//! Pipeline error type.

use std::fmt;

/// Errors from the anonymization pipeline.
#[derive(Debug)]
pub enum Error {
    /// The input network failed simulation.
    Sim(confmask_sim::SimError),
    /// A patch operation failed (internal invariant violation).
    Patch(confmask_config::patch::PatchError),
    /// Topology anonymization could not realize a k-anonymous degree
    /// sequence.
    Topology(confmask_topology::kdegree::KDegreeError),
    /// The route-equivalence loop did not converge within its bound
    /// (§5.4 bounds iterations by the number of fake edges).
    EquivalenceDiverged {
        /// Iterations executed.
        iterations: usize,
    },
    /// The pipeline finished but the output is not functionally equivalent
    /// to the input (this indicates a bug and is checked defensively).
    EquivalenceViolated(String),
    /// The input network is invalid.
    InvalidInput(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Patch(e) => write!(f, "configuration patch failed: {e}"),
            Error::Topology(e) => write!(f, "topology anonymization failed: {e}"),
            Error::EquivalenceDiverged { iterations } => {
                write!(f, "route equivalence did not converge after {iterations} iterations")
            }
            Error::EquivalenceViolated(m) => {
                write!(f, "functional equivalence violated: {m}")
            }
            Error::InvalidInput(m) => write!(f, "invalid input network: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<confmask_sim::SimError> for Error {
    fn from(e: confmask_sim::SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<confmask_config::patch::PatchError> for Error {
    fn from(e: confmask_config::patch::PatchError) -> Self {
        Error::Patch(e)
    }
}

impl From<confmask_topology::kdegree::KDegreeError> for Error {
    fn from(e: confmask_topology::kdegree::KDegreeError) -> Self {
        Error::Topology(e)
    }
}
