//! Pipeline error type.

use std::fmt;

/// Errors from the anonymization pipeline.
#[derive(Debug)]
pub enum Error {
    /// The input network failed simulation.
    Sim(confmask_sim::SimError),
    /// A patch operation failed (internal invariant violation).
    Patch(confmask_config::patch::PatchError),
    /// Topology anonymization could not realize a k-anonymous degree
    /// sequence.
    Topology(confmask_topology::kdegree::KDegreeError),
    /// The route-equivalence loop did not converge within its bound
    /// (§5.4 bounds iterations by the number of fake edges).
    EquivalenceDiverged {
        /// Iterations executed.
        iterations: usize,
    },
    /// The pipeline finished but the output is not functionally equivalent
    /// to the input (this indicates a bug and is checked defensively).
    EquivalenceViolated(String),
    /// The input network is invalid.
    InvalidInput(String),
    /// A retryable stage kept failing after every self-healing attempt.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: usize,
        /// The error the final attempt died with.
        last: Box<Error>,
    },
    /// A pipeline stage overran its wall-clock deadline
    /// (`Params::stage_deadline`). Fatal: more attempts would only burn
    /// the same time again.
    StageDeadlineExceeded {
        /// The overrunning stage.
        stage: &'static str,
        /// The configured per-stage limit.
        limit: std::time::Duration,
    },
}

impl Error {
    /// Whether self-healing may retry after this error.
    ///
    /// Retryable errors are those whose cause is a *search* coming up
    /// empty under one random draw or budget — a different seed or a
    /// larger iteration bound can genuinely change the outcome:
    /// route-equivalence divergence, k-degree realization failure, a
    /// defensive equivalence violation, and a panicked trace worker.
    ///
    /// Everything else is deterministic in the input (BGP oscillation à
    /// la Griffin, malformed configurations, patcher invariant
    /// violations, deadline overruns) and fails fast.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::EquivalenceDiverged { .. } => true,
            Error::Topology(_) => true,
            Error::EquivalenceViolated(_) => true,
            Error::Sim(confmask_sim::SimError::TracePanic(_)) => true,
            Error::Sim(_) => false,
            Error::Patch(_) => false,
            Error::InvalidInput(_) => false,
            Error::RetriesExhausted { .. } => false,
            Error::StageDeadlineExceeded { .. } => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Patch(e) => write!(f, "configuration patch failed: {e}"),
            Error::Topology(e) => write!(f, "topology anonymization failed: {e}"),
            Error::EquivalenceDiverged { iterations } => {
                write!(f, "route equivalence did not converge after {iterations} iterations")
            }
            Error::EquivalenceViolated(m) => {
                write!(f, "functional equivalence violated: {m}")
            }
            Error::InvalidInput(m) => write!(f, "invalid input network: {m}"),
            Error::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempt(s) failed; last error: {last}")
            }
            Error::StageDeadlineExceeded { stage, limit } => {
                write!(f, "stage {stage} exceeded its {limit:?} deadline")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<confmask_sim::SimError> for Error {
    fn from(e: confmask_sim::SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<confmask_config::patch::PatchError> for Error {
    fn from(e: confmask_config::patch::PatchError) -> Self {
        Error::Patch(e)
    }
}

impl From<confmask_topology::kdegree::KDegreeError> for Error {
    fn from(e: confmask_topology::kdegree::KDegreeError) -> Self {
        Error::Topology(e)
    }
}
