//! Functional-equivalence checking (Definition 3.3, Appendix A/B).
//!
//! The pipeline *constructs* networks that satisfy the strong functional
//! equivalence conditions; this module *verifies* the result, defensively:
//!
//! * **topology preservation** — every original router, host and link is
//!   still present in the anonymized topology;
//! * **route equivalence** — the data planes are identical on the real
//!   hosts (which, by Theorem B.7, implies preservation of reachability,
//!   path lengths, black holes, multipath consistency, waypointing, and
//!   routing loops);
//! * **append-only audit** — no original configuration item was modified or
//!   deleted (the SFE precondition of §5.2).

use confmask_config::NetworkConfigs;
use confmask_sim::DataPlane;
use confmask_topology::extract::extract_topology;
use confmask_topology::NodeKind;
use std::collections::BTreeSet;

/// Result of checking functional equivalence.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceReport {
    /// All original nodes and links survive.
    pub topology_preserved: bool,
    /// Data planes identical on the real hosts.
    pub route_equivalent: bool,
    /// No original configuration item was modified or deleted.
    pub originals_untouched: bool,
    /// Human-readable details for any failed check.
    pub violations: Vec<String>,
}

impl EquivalenceReport {
    /// All three checks passed — `CFG ≃F ĈFG`.
    pub fn holds(&self) -> bool {
        self.topology_preserved && self.route_equivalent && self.originals_untouched
    }
}

/// Checks functional equivalence of `anon` against `original`.
pub fn check_equivalence(
    original: &NetworkConfigs,
    original_dp: &DataPlane,
    anon: &NetworkConfigs,
    anon_dp: &DataPlane,
) -> EquivalenceReport {
    let mut report = EquivalenceReport::default();
    let real_hosts: BTreeSet<String> = original.hosts.keys().cloned().collect();

    // --- Topology preservation ----------------------------------------------
    let orig_topo = extract_topology(original);
    let anon_topo = extract_topology(anon);
    report.topology_preserved = true;
    for i in 0..orig_topo.node_count() {
        let name = orig_topo.name(i);
        match anon_topo.node(name) {
            Some(j) if anon_topo.kind(j) == orig_topo.kind(i) => {}
            _ => {
                report.topology_preserved = false;
                report
                    .violations
                    .push(format!("node {name} missing from anonymized topology"));
            }
        }
    }
    for (a, b, _) in orig_topo.edges() {
        let (na, nb) = (orig_topo.name(a), orig_topo.name(b));
        let present = match (anon_topo.node(na), anon_topo.node(nb)) {
            (Some(x), Some(y)) => anon_topo.has_edge(x, y),
            _ => false,
        };
        if !present {
            report.topology_preserved = false;
            report
                .violations
                .push(format!("link {na}–{nb} missing from anonymized topology"));
        }
    }
    // Hosts must map to themselves (A⁰ is the identity on real hosts).
    let _ = orig_topo
        .hosts()
        .iter()
        .map(|&h| orig_topo.name(h))
        .all(|n| real_hosts.contains(n));

    // --- Route equivalence ---------------------------------------------------
    report.route_equivalent = anon_dp.equivalent_on(original_dp, &real_hosts);
    if !report.route_equivalent {
        for (pair, orig_ps) in original_dp.restricted_to(&real_hosts).pairs() {
            let anon_ps = anon_dp.between(&pair.0, &pair.1);
            if anon_ps != Some(orig_ps) {
                report.violations.push(format!(
                    "paths {}→{} differ: {:?} vs {:?}",
                    pair.0,
                    pair.1,
                    orig_ps.paths,
                    anon_ps.map(|p| &p.paths)
                ));
            }
        }
    }

    // --- Append-only audit -----------------------------------------------------
    report.originals_untouched = true;
    for (name, orig_rc) in &original.routers {
        let Some(anon_rc) = anon.routers.get(name) else {
            report.originals_untouched = false;
            report.violations.push(format!("router {name} deleted"));
            continue;
        };
        if anon_rc.interfaces.len() < orig_rc.interfaces.len()
            || anon_rc.interfaces[..orig_rc.interfaces.len()] != orig_rc.interfaces[..]
        {
            report.originals_untouched = false;
            report
                .violations
                .push(format!("router {name}: original interfaces modified"));
        }
        let stmts = |rc: &confmask_config::RouterConfig| -> Vec<_> {
            rc.ospf
                .iter()
                .flat_map(|o| o.networks.iter())
                .chain(rc.rip.iter().flat_map(|r| r.networks.iter()))
                .chain(rc.bgp.iter().flat_map(|b| b.networks.iter()))
                .filter(|n| !n.added)
                .cloned()
                .collect()
        };
        if stmts(orig_rc) != stmts(anon_rc) {
            report.originals_untouched = false;
            report
                .violations
                .push(format!("router {name}: original network statements modified"));
        }
        if orig_rc.extra_lines != anon_rc.extra_lines {
            report.originals_untouched = false;
            report
                .violations
                .push(format!("router {name}: uninterpreted lines modified"));
        }
    }
    for (name, orig_h) in &original.hosts {
        match anon.hosts.get(name) {
            Some(h) if h == orig_h => {}
            _ => {
                report.originals_untouched = false;
                report
                    .violations
                    .push(format!("host {name} modified or deleted"));
            }
        }
    }

    // Fake devices must be flagged as such (provenance audit).
    for (name, rc) in &anon.routers {
        if !original.routers.contains_key(name) && !rc.added {
            report.originals_untouched = false;
            report
                .violations
                .push(format!("router {name} added without provenance flag"));
        }
    }
    for (name, h) in &anon.hosts {
        if !original.hosts.contains_key(name) && !h.added {
            report.originals_untouched = false;
            report
                .violations
                .push(format!("host {name} added without provenance flag"));
        }
    }

    let _ = anon_topo
        .routers()
        .iter()
        .all(|&r| anon_topo.kind(r) == NodeKind::Router);

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_netgen::smallnets::example_network;
    use confmask_sim::simulate;

    #[test]
    fn identity_is_equivalent() {
        let net = example_network();
        let sim = simulate(&net).unwrap();
        let report = check_equivalence(&net, &sim.dataplane, &net, &sim.dataplane);
        assert!(report.holds(), "{:?}", report.violations);
    }

    #[test]
    fn deleted_link_fails_topology_preservation() {
        let net = example_network();
        let sim = simulate(&net).unwrap();
        let mut broken = net.clone();
        broken.routers.get_mut("r3").unwrap().interfaces.remove(0);
        let broken_sim = simulate(&broken).unwrap();
        let report = check_equivalence(&net, &sim.dataplane, &broken, &broken_sim.dataplane);
        assert!(!report.topology_preserved);
        assert!(!report.holds());
    }

    #[test]
    fn changed_forwarding_fails_route_equivalence() {
        let net = example_network();
        let sim = simulate(&net).unwrap();
        let mut changed = net.clone();
        // Shut down r2's link toward r4: h4 becomes unreachable, so the
        // data plane differs (and the edit itself violates append-only).
        let r2 = changed.routers.get_mut("r2").unwrap();
        let idx = r2
            .interfaces
            .iter()
            .position(|i| i.description.as_deref() == Some("to-r4"))
            .unwrap();
        r2.interfaces[idx].shutdown = true;
        let changed_sim = simulate(&changed).unwrap();
        let report = check_equivalence(&net, &sim.dataplane, &changed, &changed_sim.dataplane);
        assert!(!report.route_equivalent);
        assert!(!report.originals_untouched, "shutdown edit is a modification");
        assert!(!report.holds());
    }

    #[test]
    fn unflagged_new_host_fails_provenance() {
        let net = example_network();
        let sim = simulate(&net).unwrap();
        let mut sneaky = net.clone();
        let mut h = sneaky.hosts["h1"].clone();
        h.hostname = "intruder".into();
        h.address = ("10.103.0.100".parse().unwrap(), 24);
        h.gateway = "10.103.0.1".parse().unwrap();
        // not marked `added` → provenance violation (also dangling gateway,
        // but we check the flag here)
        sneaky.hosts.insert("intruder".into(), h);
        let sneaky_sim = simulate(&sneaky).unwrap();
        let report = check_equivalence(&net, &sim.dataplane, &sneaky, &sneaky_sim.dataplane);
        assert!(!report.originals_untouched);
    }
}
