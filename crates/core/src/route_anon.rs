//! Step 2.2 — route anonymization (Algorithm 2, §5.3).
//!
//! To reach k-route anonymity (Definition 3.2), ConfMask adds `k_H − 1`
//! fake hosts per real host, attached to the *same ingress router* and
//! numbered out of address space the original network never uses. The fake
//! hosts alone multiply the host connections per (ingress, egress) router
//! pair; a randomized filtering pass (noise coefficient `p`) then perturbs
//! the fake hosts' routes so the filters added for route equivalence do not
//! single out the *real* routes ("the adversary cannot infer that the
//! routes influenced by distribute-lists are valid routes", §5.3).
//! Filters that would break reachability are rolled back (lines 5–7 of
//! Algorithm 2) — fake hosts must stay reachable or they would be trivially
//! identifiable.

use crate::preprocess::Baseline;
use crate::route_equiv::deny_next_hop;
use crate::Error;
use confmask_config::patch::Patcher;
use confmask_net_types::{HostId, Ipv4Prefix, PrefixAllocator};
use confmask_sim::dataplane::reachable_hosts_from_router;
use confmask_sim::{simulate_control_plane, NextHop};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of the route-anonymization stage.
#[derive(Debug, Clone, Default)]
pub struct RouteAnonOutcome {
    /// Names of the fake hosts created.
    pub fake_hosts: Vec<String>,
    /// Randomized filters added (net of rollbacks).
    pub filters_kept: usize,
    /// Filters rolled back because they broke reachability.
    pub filters_rolled_back: usize,
    /// Control-plane simulations performed.
    pub sim_calls: usize,
}

/// Runs Algorithm 2: create fake hosts, then add randomized filters while
/// preserving reachability.
pub fn anonymize_routes<R: Rng>(
    patcher: &mut Patcher,
    alloc: &mut PrefixAllocator,
    base: &Baseline,
    k_h: usize,
    noise_p: f64,
    rng: &mut R,
) -> Result<RouteAnonOutcome, Error> {
    let mut out = RouteAnonOutcome::default();

    // --- Fake host creation -------------------------------------------------
    // Each real host gets k_H − 1 copies on its ingress router ("same
    // configuration as the original host except for hostname and IP").
    let originals: Vec<(String, String, bool)> = base
        .real_hosts
        .iter()
        .filter_map(|hname| {
            let hid = base.sim.net.host_id(hname)?;
            let (rid, _) = base.sim.net.host(hid).attachment?;
            let router = base.sim.net.router(rid);
            Some((hname.clone(), router.name.clone(), router.asn.is_some()))
        })
        .collect();

    for (hname, router, has_bgp) in &originals {
        for i in 1..k_h {
            let lan = alloc
                .allocate(24)
                .map_err(|e| Error::InvalidInput(format!("address space exhausted: {e}")))?;
            let fake_name = format!("{hname}-fake{i}");
            patcher.add_fake_host(router, &fake_name, lan, *has_bgp)?;
            out.fake_hosts.push(fake_name);
        }
    }
    if out.fake_hosts.is_empty() {
        return Ok(out);
    }

    // --- Randomized filtering (lines 1–7 of Algorithm 2) --------------------
    let (mut net, mut fibs) = simulate_control_plane(patcher.network())?;
    out.sim_calls += 1;

    // Fake-host LAN prefixes and the hosts on them.
    let fake_prefixes: BTreeMap<Ipv4Prefix, HostId> = net
        .hosts_iter()
        .filter(|(_, h)| h.added)
        .map(|(hid, h)| (h.prefix, hid))
        .collect();

    let router_names: Vec<String> = net.routers.iter().map(|r| r.name.clone()).collect();
    for rname in router_names {
        let rid = net.router_id(&rname).expect("router exists");

        // DstH_old[r̃]: fake hosts reachable from r̃ before this round.
        let old_reach: BTreeSet<HostId> = reachable_hosts_from_router(&net, &fibs, rid)
            .into_iter()
            .filter(|h| net.host(*h).added)
            .collect();

        // Randomly deny fake-host FIB entries.
        let mut added_this_round: Vec<(Ipv4Prefix, NextHop)> = Vec::new();
        let entries: Vec<(Ipv4Prefix, Vec<NextHop>)> = fibs
            .of(rid)
            .entries()
            .filter(|e| fake_prefixes.contains_key(&e.prefix))
            .map(|e| (e.prefix, e.next_hops.clone()))
            .collect();
        for (prefix, next_hops) in entries {
            for nh in next_hops {
                if matches!(nh, NextHop::Deliver { .. }) {
                    continue; // the ingress router delivers directly
                }
                if rng.gen::<f64>() < noise_p && deny_next_hop(patcher, &net, &rname, &nh, prefix)?
                {
                    added_this_round.push((prefix, nh));
                }
            }
        }
        if added_this_round.is_empty() {
            continue;
        }

        // Re-simulate and roll back filters that broke reachability.
        let (net2, fibs2) = simulate_control_plane(patcher.network())?;
        out.sim_calls += 1;
        let new_reach: BTreeSet<HostId> = reachable_hosts_from_router(&net2, &fibs2, rid)
            .into_iter()
            .filter(|h| net2.host(*h).added)
            .collect();

        let lost: BTreeSet<Ipv4Prefix> = old_reach
            .difference(&new_reach)
            .map(|h| net2.host(*h).prefix)
            .collect();

        let mut rolled_back = 0;
        for (prefix, nh) in &added_this_round {
            if lost.contains(prefix) {
                remove_filter(patcher, &net2, &rname, nh, *prefix)?;
                rolled_back += 1;
            }
        }
        out.filters_rolled_back += rolled_back;
        out.filters_kept += added_this_round.len() - rolled_back;

        if rolled_back > 0 {
            let (net3, fibs3) = simulate_control_plane(patcher.network())?;
            out.sim_calls += 1;
            net = net3;
            fibs = fibs3;
        } else {
            net = net2;
            fibs = fibs2;
        }
    }

    Ok(out)
}

/// Undoes a filter added by [`deny_next_hop`] (Algorithm 2 line 7).
fn remove_filter(
    patcher: &mut Patcher,
    net: &confmask_sim::SimNetwork,
    router: &str,
    nh: &NextHop,
    prefix: Ipv4Prefix,
) -> Result<(), Error> {
    let NextHop::Forward {
        via_iface,
        session_peer,
        ..
    } = nh
    else {
        return Ok(());
    };
    let rid = net.router_id(router).expect("router exists");
    let point = match session_peer {
        Some(addr) => addr.to_string(),
        None => net.router(rid).ifaces[*via_iface].name.clone(),
    };
    let list = crate::route_equiv::reject_list_name(&point);
    patcher.remove_added_deny_entry(router, &list, prefix)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use confmask_netgen::smallnets::example_network;
    use confmask_sim::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(k_h: usize, noise_p: f64, seed: u64) -> (Patcher, crate::preprocess::Baseline, RouteAnonOutcome) {
        let net = example_network();
        let base = preprocess(&net).unwrap();
        let mut patcher = Patcher::new(net.clone());
        let mut alloc = PrefixAllocator::new(net.used_prefixes());
        let mut rng = StdRng::seed_from_u64(seed);
        let out =
            anonymize_routes(&mut patcher, &mut alloc, &base, k_h, noise_p, &mut rng).unwrap();
        (patcher, base, out)
    }

    #[test]
    fn creates_k_minus_one_fakes_per_host() {
        let (patcher, base, out) = run(3, 0.0, 1);
        assert_eq!(out.fake_hosts.len(), base.real_hosts.len() * 2);
        assert_eq!(
            patcher.network().hosts.len(),
            base.real_hosts.len() * 3
        );
        // Fake hosts attach to the same ingress router as their original.
        let sim = simulate(patcher.network()).unwrap();
        for hname in &base.real_hosts {
            let orig = sim.net.host(sim.net.host_id(hname).unwrap());
            for i in 1..3 {
                let fake = sim
                    .net
                    .host(sim.net.host_id(&format!("{hname}-fake{i}")).unwrap());
                assert_eq!(
                    orig.attachment.map(|(r, _)| r),
                    fake.attachment.map(|(r, _)| r),
                    "{hname}-fake{i} shares the ingress router"
                );
            }
        }
    }

    #[test]
    fn k_h_1_adds_nothing() {
        let (patcher, base, out) = run(1, 0.5, 1);
        assert!(out.fake_hosts.is_empty());
        assert_eq!(patcher.network().hosts.len(), base.real_hosts.len());
    }

    #[test]
    fn reachability_is_preserved_even_with_high_noise() {
        let (patcher, _base, out) = run(2, 0.9, 7);
        let sim = simulate(patcher.network()).unwrap();
        for (pair, ps) in sim.dataplane.pairs() {
            assert!(ps.clean(), "{pair:?} must stay reachable: {ps:?}");
        }
        // With p=0.9 some filters were attempted; rollbacks are plausible.
        assert!(out.filters_kept + out.filters_rolled_back > 0);
    }

    #[test]
    fn real_paths_untouched_by_fake_host_filters() {
        let (patcher, base, _) = run(2, 0.9, 13);
        let sim = simulate(patcher.network()).unwrap();
        assert!(
            sim.dataplane
                .equivalent_on(&base.sim.dataplane, &base.real_hosts),
            "Algorithm 2 only touches fake-host prefixes"
        );
    }

    #[test]
    fn fake_lans_disjoint_from_original_space() {
        let net = example_network();
        let originals = net.used_prefixes();
        let (patcher, _, _) = run(4, 0.1, 3);
        for h in patcher.network().hosts.values().filter(|h| h.added) {
            let p = h.prefix().unwrap();
            for orig in &originals {
                assert!(!orig.overlaps(&p));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (p1, _, _) = run(2, 0.3, 42);
        let (p2, _, _) = run(2, 0.3, 42);
        assert_eq!(p1.network(), p2.network());
        assert_eq!(p1.ledger(), p2.ledger());
    }
}
