//! Property tests: the k-degree anonymizer achieves k on random graphs and
//! never removes or duplicates edges.

use confmask_topology::kdegree::plan_k_degree;
use confmask_topology::metrics::min_same_degree;
use confmask_topology::{LinkInfo, NodeKind, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected-ish graph: a path plus random extra edges.
fn arb_graph() -> impl Strategy<Value = Topology> {
    (3usize..24, prop::collection::vec((any::<u16>(), any::<u16>()), 0..40)).prop_map(
        |(n, extra)| {
            let mut t = Topology::new();
            for i in 0..n {
                t.add_node(&format!("r{i}"), NodeKind::Router);
            }
            for i in 1..n {
                t.add_edge(i - 1, i, LinkInfo::default());
            }
            for (a, b) in extra {
                let a = a as usize % n;
                let b = b as usize % n;
                if a != b {
                    t.add_edge(a, b, LinkInfo::default());
                }
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_achieves_k(topo in arb_graph(), k in 2usize..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = plan_k_degree(&topo, k, &mut rng).unwrap();
        let mut out = topo.clone();
        for &(a, b) in &plan.new_edges {
            // New edges must be genuinely new and valid.
            prop_assert!(a != b);
            prop_assert!(!topo.has_edge(a, b), "planned edge already exists");
            out.add_edge(a, b, LinkInfo::default());
        }
        let k_eff = k.min(topo.node_count());
        prop_assert!(min_same_degree(&out) >= k_eff,
            "achieved {} < k {}", min_same_degree(&out), k_eff);
        // All original edges survive (additions only).
        for (a, b, _) in topo.edges() {
            prop_assert!(out.has_edge(a, b));
        }
        prop_assert_eq!(out.edge_count(), topo.edge_count() + plan.new_edges.len());
    }

    #[test]
    fn plan_never_lowers_existing_anonymity(topo in arb_graph(), seed in any::<u64>()) {
        // k=1 must be a no-op regardless of the input graph.
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = plan_k_degree(&topo, 1, &mut rng).unwrap();
        prop_assert!(plan.new_edges.is_empty());
    }
}
