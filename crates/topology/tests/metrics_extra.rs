//! Additional metric and extraction coverage: degree histograms under
//! anonymization, min-cost symmetry, and multi-router LAN extraction.

use confmask_topology::extract::extract_topology;
use confmask_topology::kdegree::{anonymize_degree_sequence, plan_k_degree};
use confmask_topology::metrics::{
    clustering_coefficient, min_same_degree, router_degree_histogram, router_degree_sequence,
};
use confmask_topology::{LinkInfo, NodeKind, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn histogram_sums_to_router_count() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::enterprise());
    let topo = extract_topology(&net);
    let hist = router_degree_histogram(&topo);
    assert_eq!(hist.values().sum::<usize>(), topo.routers().len());
    let seq = router_degree_sequence(&topo);
    assert_eq!(seq.len(), topo.routers().len());
    assert!(seq.windows(2).all(|w| w[0] >= w[1]), "descending");
}

#[test]
fn lan_with_three_routers_forms_a_clique() {
    // Three routers sharing one /29 segment must be pairwise adjacent.
    use confmask_config::{parse_router, NetworkConfigs};
    let mk = |n: usize| {
        parse_router(&format!(
            "hostname s{n}\n!\ninterface Ethernet0/0\n ip address 10.0.0.{} 255.255.255.248\n!\n",
            n + 1
        ))
        .unwrap()
    };
    let net = NetworkConfigs::new([mk(0), mk(1), mk(2)], []);
    let topo = extract_topology(&net);
    assert_eq!(topo.edge_count(), 3);
    assert!((clustering_coefficient(&topo) - 1.0).abs() < 1e-12);
}

#[test]
fn anonymization_monotone_in_k() {
    // Raising k never produces a *less* anonymous plan.
    let mut topo = Topology::new();
    for i in 0..12 {
        topo.add_node(&format!("r{i}"), NodeKind::Router);
    }
    for i in 1..12 {
        topo.add_edge(0, i, LinkInfo::default());
    }
    for i in 1..5 {
        topo.add_edge(i, i + 1, LinkInfo::default());
    }
    let mut prev = 0;
    for k in [2usize, 4, 6, 8] {
        let plan = plan_k_degree(&topo, k, &mut StdRng::seed_from_u64(1)).unwrap();
        let mut out = topo.clone();
        for &(a, b) in &plan.new_edges {
            out.add_edge(a, b, LinkInfo::default());
        }
        let achieved = min_same_degree(&out);
        assert!(achieved >= k);
        assert!(achieved >= prev.min(k));
        prev = achieved;
    }
}

#[test]
fn degree_sequence_dp_cost_is_minimal_on_known_case() {
    // [8,8,4,4,3,3] with k=3: grouping {8,8,4},{4,3,3} costs 4+1+1 = wait —
    // targets: first group → 8, second → 4: cost = (0+0+4) + (0+1+1) = 6.
    // One group of 6 → all 8: cost = 0+0+4+4+5+5 = 18. DP must pick 6.
    let t = anonymize_degree_sequence(&[8, 8, 4, 4, 3, 3], 3);
    assert_eq!(t, vec![8, 8, 8, 4, 4, 4]);
    let cost: usize = t
        .iter()
        .zip([8, 8, 4, 4, 3, 3])
        .map(|(a, b)| a - b)
        .sum();
    assert_eq!(cost, 6);
}

#[test]
fn supergraph_of_igp_network_is_trivial() {
    use confmask_topology::supergraph::build_supergraph;
    let net = confmask_netgen::synthesize(&confmask_netgen::fattree::fattree_spec(4));
    let topo = extract_topology(&net);
    let sg = build_supergraph(&topo, &std::collections::BTreeMap::new());
    assert_eq!(sg.graph.node_count(), 0, "no ASNs → no supergraph nodes");
}

#[test]
fn min_cost_is_symmetric_for_symmetric_costs() {
    let net = confmask_netgen::synthesize(&confmask_netgen::smallnets::enterprise());
    let topo = extract_topology(&net);
    let routers = topo.routers();
    for &a in routers.iter().take(4) {
        for &b in routers.iter().take(4) {
            assert_eq!(topo.min_cost(a, b), topo.min_cost(b, a));
        }
    }
}
