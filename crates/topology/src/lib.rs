//! Network topology extraction, graph metrics, and graph anonymization.
//!
//! This crate implements the topology side of ConfMask:
//!
//! * [`Topology`] — the simple graph `G = (V = R ∪ H, E)` of §3.1, built from
//!   configuration files by matching interface pairs that share a prefix
//!   ([`extract::extract_topology`]) — exactly the reconstruction an
//!   adversary would perform, which is why it doubles as the measurement
//!   tool for the privacy evaluation;
//! * [`metrics`] — degree statistics (the `k_d` of Figure 6), clustering
//!   coefficient (Figure 7), and weighted shortest-path costs (`min_cost`
//!   in the link-state SFE conditions of §5.1);
//! * [`kdegree`] — the Liu–Terzi k-degree-anonymization algorithm \[25\]
//!   restricted to **edge additions** (§4.2: ConfMask adopts the
//!   edge-modification flavor and only ever adds links, preserving all
//!   original nodes and edges);
//! * [`supergraph`] — the two-level BGP view of §4.2, where each AS is a
//!   supernode and inter-AS adjacency is anonymized independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
mod graph;
pub mod kdegree;
pub mod metrics;
pub mod supergraph;

pub use graph::{LinkInfo, NodeKind, Topology};
