//! The two-level BGP topology view (§4.2).
//!
//! "BGP is a special case where we need to view the topology in two levels:
//! the routers in each autonomous system form a simple graph, and on top of
//! that each AS is treated as a (super)node." This module builds the AS-level
//! supergraph and realizes AS-level fake edges by picking random border
//! routers in the two ASes.

use crate::graph::{LinkInfo, NodeKind, Topology};
use confmask_net_types::Asn;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// AS-level view of a BGP network.
#[derive(Debug, Clone)]
pub struct SuperGraph {
    /// The AS-level simple graph (one node per AS).
    pub graph: Topology,
    /// ASN for each supergraph node index.
    pub asns: Vec<Asn>,
    /// Border routers of each AS (router indices in the *device* topology):
    /// routers with at least one inter-AS link.
    pub border_routers: BTreeMap<Asn, Vec<usize>>,
}

/// Builds the AS-level supergraph from a device topology and a router→AS
/// assignment (router index in `topo` → ASN).
///
/// Two ASes are adjacent "as long as one of their border routers is
/// interconnected" (§4.2).
pub fn build_supergraph(topo: &Topology, asn_of: &BTreeMap<usize, Asn>) -> SuperGraph {
    let mut graph = Topology::new();
    let mut asns: Vec<Asn> = asn_of.values().copied().collect::<BTreeSet<_>>().into_iter().collect();
    asns.sort();
    let mut index: BTreeMap<Asn, usize> = BTreeMap::new();
    for asn in &asns {
        let i = graph.add_node(&asn.to_string(), NodeKind::Router);
        index.insert(*asn, i);
    }

    let mut border: BTreeMap<Asn, BTreeSet<usize>> = BTreeMap::new();
    for (a, b, _) in topo.edges() {
        if topo.kind(a) != NodeKind::Router || topo.kind(b) != NodeKind::Router {
            continue;
        }
        let (Some(&asn_a), Some(&asn_b)) = (asn_of.get(&a), asn_of.get(&b)) else {
            continue;
        };
        if asn_a != asn_b {
            graph.add_edge(index[&asn_a], index[&asn_b], LinkInfo::default());
            border.entry(asn_a).or_default().insert(a);
            border.entry(asn_b).or_default().insert(b);
        }
    }

    // ASes with no inter-AS link still exist; give them an empty border set.
    for asn in &asns {
        border.entry(*asn).or_default();
    }

    SuperGraph {
        graph,
        asns,
        border_routers: border
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect(),
    }
}

/// Realizes an AS-level fake edge: picks one border router in each AS at
/// random (§4.2: "adding an edge between two randomly chosen border routers").
/// Falls back to *any* router of the AS when it has no border router yet.
pub fn pick_border_pair<R: Rng>(
    sg: &SuperGraph,
    asn_a: Asn,
    asn_b: Asn,
    all_routers_of: &BTreeMap<Asn, Vec<usize>>,
    rng: &mut R,
) -> Option<(usize, usize)> {
    let pool = |asn: Asn| -> Option<Vec<usize>> {
        let b = sg.border_routers.get(&asn)?;
        if b.is_empty() {
            all_routers_of.get(&asn).cloned()
        } else {
            Some(b.clone())
        }
    };
    let pa = pool(asn_a)?;
    let pb = pool(asn_b)?;
    let a = *pa.choose(rng)?;
    let b = *pb.choose(rng)?;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two ASes, two routers each, one inter-AS link r1–r2.
    fn setup() -> (Topology, BTreeMap<usize, Asn>) {
        let mut t = Topology::new();
        let r0 = t.add_node("r0", NodeKind::Router);
        let r1 = t.add_node("r1", NodeKind::Router);
        let r2 = t.add_node("r2", NodeKind::Router);
        let r3 = t.add_node("r3", NodeKind::Router);
        t.add_edge(r0, r1, LinkInfo::default());
        t.add_edge(r1, r2, LinkInfo::default());
        t.add_edge(r2, r3, LinkInfo::default());
        let asn_of: BTreeMap<usize, Asn> =
            [(r0, Asn(10)), (r1, Asn(10)), (r2, Asn(20)), (r3, Asn(20))]
                .into_iter()
                .collect();
        (t, asn_of)
    }

    #[test]
    fn builds_as_graph_and_borders() {
        let (t, asn_of) = setup();
        let sg = build_supergraph(&t, &asn_of);
        assert_eq!(sg.graph.node_count(), 2);
        assert_eq!(sg.graph.edge_count(), 1);
        assert_eq!(sg.border_routers[&Asn(10)], vec![1]);
        assert_eq!(sg.border_routers[&Asn(20)], vec![2]);
    }

    #[test]
    fn isolated_as_has_empty_border() {
        let mut t = Topology::new();
        let r0 = t.add_node("r0", NodeKind::Router);
        let asn_of: BTreeMap<usize, Asn> = [(r0, Asn(30))].into_iter().collect();
        let sg = build_supergraph(&t, &asn_of);
        assert_eq!(sg.graph.node_count(), 1);
        assert!(sg.border_routers[&Asn(30)].is_empty());
    }

    #[test]
    fn border_pair_comes_from_each_as() {
        let (t, asn_of) = setup();
        let sg = build_supergraph(&t, &asn_of);
        let all: BTreeMap<Asn, Vec<usize>> =
            [(Asn(10), vec![0, 1]), (Asn(20), vec![2, 3])].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = pick_border_pair(&sg, Asn(10), Asn(20), &all, &mut rng).unwrap();
        assert!(asn_of[&a] == Asn(10));
        assert!(asn_of[&b] == Asn(20));
    }

    #[test]
    fn borderless_as_falls_back_to_any_router() {
        let mut t = Topology::new();
        let r0 = t.add_node("r0", NodeKind::Router);
        let r1 = t.add_node("r1", NodeKind::Router);
        let asn_of: BTreeMap<usize, Asn> = [(r0, Asn(1)), (r1, Asn(2))].into_iter().collect();
        let sg = build_supergraph(&t, &asn_of); // no inter-AS edges at all
        let all: BTreeMap<Asn, Vec<usize>> =
            [(Asn(1), vec![r0]), (Asn(2), vec![r1])].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = pick_border_pair(&sg, Asn(1), Asn(2), &all, &mut rng).unwrap();
        assert_eq!((a, b), (r0, r1));
    }
}
