//! Topology extraction from configuration files.
//!
//! §2.2: "Routers and hosts are represented by nodes in the topology graph,
//! and edges are added by identifying interface pairs that share the same
//! prefix." This module is that adversarial reconstruction, and the
//! pipeline's preprocessing step.

use crate::graph::{LinkInfo, NodeKind, Topology};
use confmask_config::{NetworkConfigs, DEFAULT_OSPF_COST};
use confmask_net_types::Ipv4Prefix;
use std::collections::BTreeMap;

/// Builds the topology graph from a network's configurations.
///
/// Link costs are taken from the interfaces' explicit `ip ospf cost`
/// settings when present (the maximum of the two sides for a symmetric
/// summary; the simulator keeps directional costs separately) and default to
/// [`DEFAULT_OSPF_COST`] otherwise. Host links always connect the host to
/// the router owning its gateway address.
pub fn extract_topology(net: &NetworkConfigs) -> Topology {
    let mut topo = Topology::new();

    for name in net.routers.keys() {
        topo.add_node(name, NodeKind::Router);
    }
    for name in net.hosts.keys() {
        topo.add_node(name, NodeKind::Host);
    }

    // Group router interfaces by their connected prefix.
    let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<(usize, u32)>> = BTreeMap::new();
    for (name, rc) in &net.routers {
        let idx = topo.node(name).expect("router was added");
        for iface in &rc.interfaces {
            if iface.shutdown {
                continue;
            }
            if let Some(prefix) = iface.prefix() {
                let cost = iface.ospf_cost.unwrap_or(DEFAULT_OSPF_COST);
                by_prefix.entry(prefix).or_default().push((idx, cost));
            }
        }
    }

    for (prefix, ends) in &by_prefix {
        // Interface pairs sharing a prefix form links (usually exactly two
        // on a /31; a LAN prefix with >2 routers forms a clique).
        for i in 0..ends.len() {
            for j in (i + 1)..ends.len() {
                let (a, ca) = ends[i];
                let (b, cb) = ends[j];
                topo.add_edge(
                    a,
                    b,
                    LinkInfo {
                        prefix: Some(*prefix),
                        cost: ca.max(cb),
                    },
                );
            }
        }
    }

    // Host links: a host connects to the router that owns its gateway.
    for (hname, h) in &net.hosts {
        let hidx = topo.node(hname).expect("host was added");
        for (rname, rc) in &net.routers {
            if rc
                .interfaces
                .iter()
                .any(|i| !i.shutdown && i.address.map(|(a, _)| a) == Some(h.gateway))
            {
                let ridx = topo.node(rname).expect("router was added");
                topo.add_edge(
                    hidx,
                    ridx,
                    LinkInfo {
                        prefix: h.prefix(),
                        cost: 1,
                    },
                );
            }
        }
    }

    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig};

    fn net() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n ip ospf cost 5\n!\ninterface Ethernet0/1\n ip address 10.1.0.1 255.255.255.0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\n",
        )
        .unwrap();
        let h = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.0.100".parse().unwrap(), 24),
            gateway: "10.1.0.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2], [h])
    }

    #[test]
    fn extracts_router_link_from_shared_prefix() {
        let t = extract_topology(&net());
        let r1 = t.node("r1").unwrap();
        let r2 = t.node("r2").unwrap();
        assert!(t.has_edge(r1, r2));
        let link = t.link(r1, r2).unwrap();
        assert_eq!(link.prefix, Some("10.0.0.0/31".parse().unwrap()));
        // max(explicit 5, default 10) — the r2 side uses the default cost.
        assert_eq!(link.cost, 10);
    }

    #[test]
    fn extracts_host_link_via_gateway() {
        let t = extract_topology(&net());
        let r1 = t.node("r1").unwrap();
        let h1 = t.node("h1").unwrap();
        assert!(t.has_edge(r1, h1));
        assert_eq!(t.kind(h1), NodeKind::Host);
    }

    #[test]
    fn shutdown_interfaces_make_no_links() {
        let mut n = net();
        n.routers.get_mut("r1").unwrap().interfaces[0].shutdown = true;
        let t = extract_topology(&n);
        let r1 = t.node("r1").unwrap();
        let r2 = t.node("r2").unwrap();
        assert!(!t.has_edge(r1, r2));
    }

    #[test]
    fn counts_match() {
        let t = extract_topology(&net());
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.routers().len(), 2);
        assert_eq!(t.hosts().len(), 1);
    }
}
