//! k-degree anonymization by edge addition (Liu–Terzi \[25\], additions-only).
//!
//! ConfMask adopts the edge-modification flavor of graph anonymization and
//! further restricts it to **adding** edges (§4.2), so that topology
//! preservation holds by construction: every original node and edge survives
//! and "the highest node degree remains unchanged".
//!
//! The algorithm follows Liu–Terzi's two phases:
//!
//! 1. **Degree-sequence anonymization** — dynamic programming over the
//!    degree sequence sorted descending, grouping nodes into clusters of
//!    size `k..2k-1` and raising every member to the cluster maximum,
//!    minimizing the total degree increment.
//! 2. **Realization** — greedily pair the nodes with the largest remaining
//!    degree deficit with non-adjacent partners. When the residual sequence
//!    is not realizable (odd parity or adjacency saturation), we apply
//!    Liu–Terzi's *probing* trick: perturb the target sequence (raising a
//!    randomly chosen cluster) and retry. The output is verified to achieve
//!    the requested anonymity before being returned.

use crate::graph::{LinkInfo, Topology};
use crate::metrics::min_same_degree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Failure to anonymize a degree sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KDegreeError {
    /// Could not realize any k-anonymous target sequence within the retry
    /// budget (pathological input).
    Unrealizable {
        /// Number of probing attempts performed.
        attempts: usize,
    },
}

impl std::fmt::Display for KDegreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KDegreeError::Unrealizable { attempts } => {
                write!(f, "degree sequence not realizable after {attempts} probing attempts")
            }
        }
    }
}

impl std::error::Error for KDegreeError {}

/// Computes the minimum-increment k-anonymous target sequence for `degrees`
/// (must be sorted **descending**). Returns per-position targets (same
/// order). Pure phase-1 of Liu–Terzi, additions-only (targets ≥ inputs).
pub fn anonymize_degree_sequence(degrees: &[usize], k: usize) -> Vec<usize> {
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n).max(1);
    debug_assert!(degrees.windows(2).all(|w| w[0] >= w[1]), "must be sorted desc");

    // cost(i, j): raise positions i..=j to degrees[i].
    let prefix: Vec<usize> = std::iter::once(0)
        .chain(degrees.iter().scan(0, |acc, &d| {
            *acc += d;
            Some(*acc)
        }))
        .collect();
    let cost = |i: usize, j: usize| -> usize {
        let len = j - i + 1;
        degrees[i] * len - (prefix[j + 1] - prefix[i])
    };

    const INF: usize = usize::MAX / 2;
    // dp[m] = min cost anonymizing the first m positions; group sizes k..2k-1
    // (last group may be up to 2k-1; any group ≥ 2k can be split).
    let mut dp = vec![INF; n + 1];
    let mut choice = vec![0usize; n + 1]; // group start for first m
    dp[0] = 0;
    for m in 1..=n {
        let lo = m.saturating_sub(2 * k - 1);
        let hi = m.saturating_sub(k);
        if m >= k {
            for start in lo..=hi {
                if dp[start] == INF {
                    continue;
                }
                let c = dp[start] + cost(start, m - 1);
                if c < dp[m] {
                    dp[m] = c;
                    choice[m] = start;
                }
            }
        }
        if m < k {
            // fewer than k nodes total can only happen when m == n < k; the
            // caller clamps k, so this branch is unreachable for m < n.
            if m == n {
                dp[m] = cost(0, m - 1);
                choice[m] = 0;
            }
        }
    }

    // Walk the choices back into groups.
    let mut targets = vec![0usize; n];
    let mut m = n;
    while m > 0 {
        let start = choice[m];
        for t in targets.iter_mut().take(m).skip(start) {
            *t = degrees[start];
        }
        m = start;
    }
    targets
}

/// Result of anonymizing a router graph.
#[derive(Debug, Clone)]
pub struct KDegreePlan {
    /// New edges to add, as node-index pairs of the input graph.
    pub new_edges: Vec<(usize, usize)>,
    /// The anonymity actually achieved (min nodes sharing a degree).
    pub achieved_k: usize,
}

/// Anonymizes the (router-only) graph `topo` to k-degree anonymity by edge
/// additions. Returns the plan of new edges; the input graph is not
/// modified.
///
/// `k` is clamped to the number of nodes. Randomness only affects edge
/// *placement* (which obfuscates structure, §5.3's "randomized approach"),
/// never whether anonymity is achieved.
pub fn plan_k_degree<R: Rng>(topo: &Topology, k: usize, rng: &mut R) -> Result<KDegreePlan, KDegreeError> {
    let n = topo.node_count();
    if n == 0 || k <= 1 {
        return Ok(KDegreePlan {
            new_edges: Vec::new(),
            achieved_k: min_same_degree(topo),
        });
    }
    let k = k.min(n);

    // Degrees sorted descending, remembering original node ids.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(topo.degree(v)));
    let degrees: Vec<usize> = order.iter().map(|&v| topo.degree(v)).collect();

    let base_targets = anonymize_degree_sequence(&degrees, k);

    let _sp = confmask_obs::span("topology.kdegree");
    const MAX_ATTEMPTS: usize = 200;

    // Attempt 0 (the unperturbed target sequence) runs inline with the
    // caller's rng: well-behaved graphs succeed immediately and spend
    // nothing on fan-out.
    if let Some(plan) = evaluate(topo, &order, &degrees, &base_targets, k, 0, rng) {
        return Ok(plan);
    }

    // Probing attempts fan out in waves across the shared executor. Each
    // attempt derives its own rng from (base_seed, attempt index), so the
    // plan depends only on the caller's rng state — never on thread count
    // or completion order: within a wave the lowest successful attempt
    // index wins, and waves are scanned in order.
    let base_seed: u64 = rng.next_u64();
    let wave = confmask_exec::thread_count() * 2;
    let mut next = 1;
    while next < MAX_ATTEMPTS {
        let batch: Vec<usize> = (next..(next + wave).min(MAX_ATTEMPTS)).collect();
        next = batch.last().expect("batch is non-empty") + 1;
        let plans = confmask_exec::par_map(&batch, |&attempt| {
            let mut arng = StdRng::seed_from_u64(
                base_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            evaluate(topo, &order, &degrees, &base_targets, k, attempt, &mut arng)
        });
        if let Some(plan) = plans.into_iter().flatten().next() {
            return Ok(plan);
        }
    }
    Err(KDegreeError::Unrealizable {
        attempts: MAX_ATTEMPTS,
    })
}

/// One probing attempt: perturb the target sequence `attempt` times, check
/// parity, realize, and verify the achieved anonymity. Returns the plan
/// only when it genuinely reaches `k`.
fn evaluate<R: Rng>(
    topo: &Topology,
    order: &[usize],
    degrees: &[usize],
    base_targets: &[usize],
    k: usize,
    attempt: usize,
    rng: &mut R,
) -> Option<KDegreePlan> {
    confmask_obs::counter_add("topology.kdegree.attempts", 1);
    let n = topo.node_count();
    // Perturb targets on retries (Liu–Terzi probing): raise a random
    // cluster by +1, respecting the simple-graph cap of n-1.
    let mut targets = base_targets.to_vec();
    for _ in 0..attempt {
        perturb(&mut targets, n - 1, rng);
    }

    if targets.iter().sum::<usize>() % 2 != degrees.iter().sum::<usize>() % 2 {
        // Residual sum is odd — certainly unrealizable; perturb more.
        return None;
    }

    let edges = realize(topo, order, degrees, &targets, rng)?;
    // Verify on a copy.
    let mut check = topo.clone();
    for &(a, b) in &edges {
        check.add_edge(a, b, LinkInfo::default());
    }
    let achieved = min_same_degree(&check);
    if achieved < k {
        return None;
    }
    confmask_obs::counter_add("topology.kdegree.edges_added", edges.len() as u64);
    confmask_obs::debug!(
        "topology.kdegree",
        "realized k={k} after {} attempt(s): {} new edge(s), achieved k={achieved}",
        attempt + 1,
        edges.len()
    );
    Some(KDegreePlan {
        new_edges: edges,
        achieved_k: achieved,
    })
}

/// Raises one randomly chosen target-cluster by +1 (stays a valid
/// k-anonymous sequence: whole value-classes move together).
fn perturb<R: Rng>(targets: &mut [usize], max_degree: usize, rng: &mut R) {
    // Collect distinct target values eligible for +1.
    let mut values: Vec<usize> = targets.to_vec();
    values.sort_unstable();
    values.dedup();
    let eligible: Vec<usize> = values.into_iter().filter(|&v| v < max_degree).collect();
    if eligible.is_empty() {
        return;
    }
    let v = *eligible.choose(rng).expect("non-empty");
    for t in targets.iter_mut() {
        if *t == v {
            *t += 1;
        }
    }
}

/// Greedy residual pairing. Returns the added edges, or `None` if stuck.
fn realize<R: Rng>(
    topo: &Topology,
    order: &[usize],
    degrees: &[usize],
    targets: &[usize],
    rng: &mut R,
) -> Option<Vec<(usize, usize)>> {
    let n = topo.node_count();
    let mut residual = vec![0usize; n]; // indexed by node id
    for (pos, &node) in order.iter().enumerate() {
        residual[node] = targets[pos] - degrees[pos];
    }
    let mut added: Vec<(usize, usize)> = Vec::new();
    let has_edge = |added: &[(usize, usize)], a: usize, b: usize| {
        topo.has_edge(a, b)
            || added
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    };

    loop {
        // Node with maximum residual.
        let u = match (0..n).filter(|&v| residual[v] > 0).max_by_key(|&v| residual[v]) {
            Some(u) => u,
            None => return Some(added),
        };
        // Partners: positive residual, not adjacent. Shuffle before sorting
        // by residual so ties break randomly (edge placement obfuscation).
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&v| v != u && residual[v] > 0 && !has_edge(&added, u, v))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.shuffle(rng);
        candidates.sort_by_key(|&v| std::cmp::Reverse(residual[v]));
        let v = candidates[0];
        added.push((u.min(v), u.max(v)));
        residual[u] -= 1;
        residual[v] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn star(n: usize) -> Topology {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Router);
        for i in 0..n {
            let l = t.add_node(&format!("l{i}"), NodeKind::Router);
            t.add_edge(c, l, LinkInfo::default());
        }
        t
    }

    #[test]
    fn sequence_dp_minimal_cases() {
        assert_eq!(anonymize_degree_sequence(&[], 2), Vec::<usize>::new());
        assert_eq!(anonymize_degree_sequence(&[3], 2), vec![3]);
        assert_eq!(anonymize_degree_sequence(&[3, 1], 2), vec![3, 3]);
        // One group of 3 vs a group boundary: [5,5,3,3] with k=2 → already 2-anon
        assert_eq!(anonymize_degree_sequence(&[5, 5, 3, 3], 2), vec![5, 5, 3, 3]);
    }

    #[test]
    fn sequence_dp_minimizes_increment() {
        // [4,3,1,1], k=2: grouping {4,3},{1,1} costs 1; {4,3,1,1} costs 9.
        assert_eq!(anonymize_degree_sequence(&[4, 3, 1, 1], 2), vec![4, 4, 1, 1]);
        // k=4 forces one group.
        assert_eq!(anonymize_degree_sequence(&[4, 3, 1, 1], 4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn sequence_targets_never_decrease_degrees() {
        let d = vec![7, 7, 6, 4, 4, 2, 1, 1, 0];
        for k in 1..=d.len() {
            let t = anonymize_degree_sequence(&d, k);
            for (ti, di) in t.iter().zip(&d) {
                assert!(ti >= di);
            }
            // every target value occurs >= k times (k clamped to n)
            let k = k.min(d.len());
            let mut counts = std::collections::HashMap::new();
            for v in &t {
                *counts.entry(v).or_insert(0usize) += 1;
            }
            assert!(counts.values().all(|&c| c >= k), "k={k}: {t:?}");
        }
    }

    #[test]
    fn star_becomes_k_anonymous() {
        let t = star(6); // degrees: 6,1,1,1,1,1,1 → min same-degree 1
        let plan = plan_k_degree(&t, 3, &mut rng()).unwrap();
        assert!(plan.achieved_k >= 3);
        assert!(!plan.new_edges.is_empty());
        // no duplicates, no existing edges
        for &(a, b) in &plan.new_edges {
            assert!(!t.has_edge(a, b));
            assert_ne!(a, b);
        }
        let mut seen = std::collections::HashSet::new();
        for e in &plan.new_edges {
            assert!(seen.insert(*e), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn already_anonymous_graph_needs_no_edges() {
        // 4-cycle: all degree 2.
        let mut t = Topology::new();
        for i in 0..4 {
            t.add_node(&format!("r{i}"), NodeKind::Router);
        }
        for i in 0..4 {
            t.add_edge(i, (i + 1) % 4, LinkInfo::default());
        }
        let plan = plan_k_degree(&t, 4, &mut rng()).unwrap();
        assert!(plan.new_edges.is_empty());
        assert_eq!(plan.achieved_k, 4);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let t = star(3);
        let plan = plan_k_degree(&t, 100, &mut rng()).unwrap();
        assert!(plan.achieved_k >= 4); // all 4 nodes share a degree
    }

    #[test]
    fn k1_is_a_no_op() {
        let t = star(5);
        let plan = plan_k_degree(&t, 1, &mut rng()).unwrap();
        assert!(plan.new_edges.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = star(8);
        let a = plan_k_degree(&t, 4, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = plan_k_degree(&t, 4, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.new_edges, b.new_edges);
    }

    #[test]
    fn highest_degree_unchanged_when_groups_allow() {
        // Paper: "the highest node degree remains unchanged in this
        // algorithm" — the max target equals the max degree (no perturbation
        // needed on well-behaved graphs).
        let t = star(6);
        let plan = plan_k_degree(&t, 3, &mut rng()).unwrap();
        let mut check = t.clone();
        for &(a, b) in &plan.new_edges {
            check.add_edge(a, b, LinkInfo::default());
        }
        let max_before = (0..t.node_count()).map(|v| t.degree(v)).max().unwrap();
        let max_after = (0..check.node_count()).map(|v| check.degree(v)).max().unwrap();
        assert_eq!(max_before, max_after);
    }
}
