//! The topology graph type.

use confmask_net_types::Ipv4Prefix;
use std::collections::{BTreeMap, BTreeSet};

/// Whether a topology node is a router or a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NodeKind {
    /// Forwarding device.
    Router,
    /// End host.
    Host,
}

/// Attributes of a topology link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkInfo {
    /// The shared prefix that realizes the link, when known.
    pub prefix: Option<Ipv4Prefix>,
    /// Symmetric link cost (OSPF cost; hop count 1 for RIP/BGP views).
    pub cost: u32,
}

impl Default for LinkInfo {
    fn default() -> Self {
        Self {
            prefix: None,
            cost: 1,
        }
    }
}

/// An undirected simple graph over named routers and hosts — the paper's
/// `G = (V, E)`.
///
/// Node identity is the device hostname. Iteration orders are deterministic
/// (sorted by insertion index), so all algorithms over a `Topology` are
/// reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Topology {
    names: Vec<String>,
    kinds: Vec<NodeKind>,
    index: BTreeMap<String, usize>,
    adj: Vec<BTreeSet<usize>>,
    links: BTreeMap<(usize, usize), LinkInfo>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (idempotent); returns its index.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.kinds.push(kind);
        self.index.insert(name.to_string(), i);
        self.adj.push(BTreeSet::new());
        i
    }

    /// Looks up a node index by name.
    pub fn node(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Node name by index.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Node kind by index.
    pub fn kind(&self, i: usize) -> NodeKind {
        self.kinds[i]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.links.len()
    }

    /// Indices of all router nodes.
    pub fn routers(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&i| self.kinds[i] == NodeKind::Router)
            .collect()
    }

    /// Indices of all host nodes.
    pub fn hosts(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&i| self.kinds[i] == NodeKind::Host)
            .collect()
    }

    fn key(a: usize, b: usize) -> (usize, usize) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds an undirected edge with attributes (idempotent; re-adding
    /// overwrites attributes). Self-loops are ignored.
    pub fn add_edge(&mut self, a: usize, b: usize, info: LinkInfo) {
        if a == b {
            return;
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
        self.links.insert(Self::key(a, b), info);
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a != b && self.links.contains_key(&Self::key(a, b))
    }

    /// Link attributes, if the edge exists.
    pub fn link(&self, a: usize, b: usize) -> Option<&LinkInfo> {
        self.links.get(&Self::key(a, b))
    }

    /// Neighbors of a node (sorted).
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[i].iter().copied()
    }

    /// Total degree of a node (routers and hosts).
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Router-degree `deg_R(r)`: number of *router* neighbors (the key
    /// attribute of Definition 3.1).
    pub fn router_degree(&self, i: usize) -> usize {
        self.adj[i]
            .iter()
            .filter(|&&n| self.kinds[n] == NodeKind::Router)
            .count()
    }

    /// All edges as `(a, b, info)` with `a < b`, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, &LinkInfo)> + '_ {
        self.links.iter().map(|(&(a, b), info)| (a, b, info))
    }

    /// The router-only induced subgraph, with a mapping from new indices to
    /// the original ones.
    pub fn router_subgraph(&self) -> (Topology, Vec<usize>) {
        let routers = self.routers();
        let mut sub = Topology::new();
        for &r in &routers {
            sub.add_node(&self.names[r], NodeKind::Router);
        }
        let back: BTreeMap<usize, usize> = routers.iter().enumerate().map(|(n, &o)| (o, n)).collect();
        for (a, b, info) in self.edges() {
            if let (Some(&na), Some(&nb)) = (back.get(&a), back.get(&b)) {
                sub.add_edge(na, nb, *info);
            }
        }
        (sub, routers)
    }

    /// Dijkstra from `src` over link costs, returning `dist[i]`
    /// (`u64::MAX` = unreachable). Host nodes are excluded from transit.
    pub fn min_costs_from(&self, src: usize) -> Vec<u64> {
        let n = self.node_count();
        let mut dist = vec![u64::MAX; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src] = 0;
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            // Hosts never forward transit traffic.
            if u != src && self.kinds[u] == NodeKind::Host {
                continue;
            }
            for v in self.adj[u].iter().copied() {
                let w = self
                    .link(u, v)
                    .map(|l| u64::from(l.cost))
                    .unwrap_or(1);
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Minimum path cost between two nodes — the `min_cost(v, v')` of the
    /// link-state SFE conditions.
    pub fn min_cost(&self, a: usize, b: usize) -> Option<u64> {
        let d = self.min_costs_from(a)[b];
        (d != u64::MAX).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(&format!("r{i}"), NodeKind::Router);
        }
        for i in 1..n {
            t.add_edge(i - 1, i, LinkInfo::default());
        }
        t
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut t = Topology::new();
        let a = t.add_node("r1", NodeKind::Router);
        let b = t.add_node("r1", NodeKind::Router);
        assert_eq!(a, b);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut t = line_graph(2);
        t.add_edge(0, 0, LinkInfo::default());
        assert_eq!(t.edge_count(), 1);
        assert!(!t.has_edge(0, 0));
    }

    #[test]
    fn edges_are_undirected() {
        let t = line_graph(3);
        assert!(t.has_edge(0, 1) && t.has_edge(1, 0));
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn router_degree_excludes_hosts() {
        let mut t = line_graph(2);
        let h = t.add_node("h1", NodeKind::Host);
        t.add_edge(0, h, LinkInfo::default());
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.router_degree(0), 1);
    }

    #[test]
    fn router_subgraph_drops_hosts() {
        let mut t = line_graph(3);
        let h = t.add_node("h1", NodeKind::Host);
        t.add_edge(2, h, LinkInfo::default());
        let (sub, map) = t.router_subgraph();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn dijkstra_prefers_cheap_paths() {
        // triangle: 0-1 cost 1, 1-2 cost 1, 0-2 cost 10
        let mut t = line_graph(3);
        t.add_edge(
            0,
            1,
            LinkInfo {
                prefix: None,
                cost: 1,
            },
        );
        t.add_edge(
            1,
            2,
            LinkInfo {
                prefix: None,
                cost: 1,
            },
        );
        t.add_edge(
            0,
            2,
            LinkInfo {
                prefix: None,
                cost: 10,
            },
        );
        assert_eq!(t.min_cost(0, 2), Some(2));
    }

    #[test]
    fn hosts_do_not_transit() {
        // r0 - h - r1 : no router-to-router path through the host
        let mut t = Topology::new();
        let r0 = t.add_node("r0", NodeKind::Router);
        let r1 = t.add_node("r1", NodeKind::Router);
        let h = t.add_node("h", NodeKind::Host);
        t.add_edge(r0, h, LinkInfo::default());
        t.add_edge(h, r1, LinkInfo::default());
        assert_eq!(t.min_cost(r0, r1), None);
        // but the host itself is reachable
        assert_eq!(t.min_cost(r0, h), Some(1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = line_graph(2);
        t.add_node("r9", NodeKind::Router);
        assert_eq!(t.min_cost(0, 2), None);
    }
}
