//! Graph metrics used by the paper's evaluation.

use crate::graph::{NodeKind, Topology};
use std::collections::BTreeMap;

/// Histogram of router-degrees: degree value → number of routers with it.
pub fn router_degree_histogram(topo: &Topology) -> BTreeMap<usize, usize> {
    let mut h = BTreeMap::new();
    for r in topo.routers() {
        *h.entry(topo.router_degree(r)).or_insert(0) += 1;
    }
    h
}

/// The `k_d` of Figure 6: the minimum, over all occurring router-degree
/// values, of the number of routers sharing that value. A network is
/// k-topology-anonymous (Definition 3.1) iff `min_same_degree >= k`.
///
/// Returns 0 for a network with no routers.
pub fn min_same_degree(topo: &Topology) -> usize {
    router_degree_histogram(topo)
        .values()
        .copied()
        .min()
        .unwrap_or(0)
}

/// Local clustering coefficient of a router node over the router-only graph.
fn local_clustering(topo: &Topology, v: usize) -> f64 {
    let neigh: Vec<usize> = topo
        .neighbors(v)
        .filter(|&n| topo.kind(n) == NodeKind::Router)
        .collect();
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if topo.has_edge(neigh[i], neigh[j]) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d as f64 * (d - 1) as f64)
}

/// Average clustering coefficient over router nodes (Figure 7's metric,
/// standard in the graph-anonymization literature \[25\]).
pub fn clustering_coefficient(topo: &Topology) -> f64 {
    let routers = topo.routers();
    if routers.is_empty() {
        return 0.0;
    }
    routers.iter().map(|&r| local_clustering(topo, r)).sum::<f64>() / routers.len() as f64
}

/// Degree sequence of the router-only graph, descending.
pub fn router_degree_sequence(topo: &Topology) -> Vec<usize> {
    let mut d: Vec<usize> = topo.routers().iter().map(|&r| topo.router_degree(r)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkInfo;

    fn complete(n: usize) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_node(&format!("r{i}"), NodeKind::Router);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                t.add_edge(i, j, LinkInfo::default());
            }
        }
        t
    }

    #[test]
    fn complete_graph_metrics() {
        let t = complete(5);
        assert_eq!(min_same_degree(&t), 5);
        assert!((clustering_coefficient(&t) - 1.0).abs() < 1e-12);
        assert_eq!(router_degree_sequence(&t), vec![4; 5]);
    }

    #[test]
    fn star_graph_metrics() {
        let mut t = Topology::new();
        let c = t.add_node("c", NodeKind::Router);
        for i in 0..4 {
            let l = t.add_node(&format!("l{i}"), NodeKind::Router);
            t.add_edge(c, l, LinkInfo::default());
        }
        // degrees: center 4 (x1), leaves 1 (x4) → min same-degree = 1
        assert_eq!(min_same_degree(&t), 1);
        assert_eq!(clustering_coefficient(&t), 0.0);
        assert_eq!(router_degree_sequence(&t), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn hosts_do_not_affect_router_metrics() {
        let mut t = complete(3);
        let h = t.add_node("h", NodeKind::Host);
        t.add_edge(0, h, LinkInfo::default());
        assert_eq!(min_same_degree(&t), 3);
        assert!((clustering_coefficient(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let t = Topology::new();
        assert_eq!(min_same_degree(&t), 0);
        assert_eq!(clustering_coefficient(&t), 0.0);
    }

    #[test]
    fn triangle_plus_pendant() {
        let mut t = complete(3);
        let p = t.add_node("p", NodeKind::Router);
        t.add_edge(0, p, LinkInfo::default());
        // node 0 has neighbors {1,2,p}: pairs (1,2) closed, (1,p),(2,p) open
        // → local cc(0)=1/3; cc(1)=cc(2)=1; cc(p)=0; avg = (1/3+1+1+0)/4
        let cc = clustering_coefficient(&t);
        assert!((cc - (1.0 / 3.0 + 2.0) / 4.0).abs() < 1e-12);
    }
}
