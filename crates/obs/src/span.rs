//! Hierarchical spans: RAII wall-clock timers that nest through a
//! thread-local stack.
//!
//! A span always measures elapsed time (callers consume [`Span::finish`]'s
//! duration for deadline checks and timing reports even with collection
//! off); it is only *recorded* — appended to the global collector and/or
//! the thread's active [`capture`] — when someone is listening. Parentage
//! is per-thread: a span opened on a worker thread with an empty stack is
//! a root span there, which keeps the collector lock-free on the hot path
//! (one `Mutex` push per *finished* recorded span).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on retained finished spans — a runaway-loop backstop, far above any
/// real pipeline run. Excess spans are counted in
/// [`Report::dropped_spans`](crate::Report::dropped_spans).
const MAX_SPANS: usize = 1 << 16;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static FINISHED: Mutex<Vec<FinishedSpan>> = Mutex::new(Vec::new());

thread_local! {
    /// Ids of the live recorded spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Active thread-local capture buffer, if any.
    static CAPTURE: RefCell<Option<Vec<FinishedSpan>>> = const { RefCell::new(None) };
    /// Small dense per-thread index (stable within the process).
    static THREAD_IDX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// A completed span as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id (`None` for a root span of its thread).
    pub parent: Option<u64>,
    /// Static span name (`pipeline.stage.topology`, …).
    pub name: &'static str,
    /// Dense index of the thread the span ran on.
    pub thread: u64,
    /// Start time, µs since the process observation epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub duration_us: u64,
}

impl FinishedSpan {
    /// The span's duration as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.duration_us)
    }
}

/// A live span. Close it with [`Span::finish`] to get the measured
/// duration; dropping it (e.g. on an early `?` return) records it too.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    /// Whether this span was pushed on the thread stack and will be
    /// recorded on close (decided once at open, so a mid-flight toggle of
    /// the global switch cannot unbalance the stack).
    recording: bool,
    closed: bool,
}

/// Opens a span named `name`, child of the innermost live span on this
/// thread. Time is measured unconditionally; the span is recorded only if
/// global collection is enabled or a thread-local [`capture`] is active.
pub fn span(name: &'static str) -> Span {
    let recording =
        crate::enabled() || CAPTURE.with(|c| c.borrow().is_some());
    let (id, parent, start_us) = if recording {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        (id, parent, crate::epoch_micros())
    } else {
        (0, None, 0)
    };
    Span {
        name,
        id,
        parent,
        start: Instant::now(),
        start_us,
        recording,
        closed: false,
    }
}

impl Span {
    /// The measured time so far (works with collection off).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its measured duration.
    pub fn finish(mut self) -> Duration {
        let d = self.start.elapsed();
        self.close(d);
        d
    }

    fn close(&mut self, duration: Duration) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !self.recording {
            return;
        }
        // Unwind the thread stack to (and including) this span; tolerates
        // out-of-order drops by also closing any nested stragglers.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            while let Some(top) = s.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let fin = FinishedSpan {
            id: self.id,
            parent: self.parent,
            name: self.name,
            thread: THREAD_IDX.with(|t| *t),
            start_us: self.start_us,
            duration_us: duration.as_micros() as u64,
        };
        CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                buf.push(fin.clone());
            }
        });
        if crate::enabled() {
            let mut g = FINISHED.lock().expect("span collector poisoned");
            if g.len() < MAX_SPANS {
                g.push(fin);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let d = self.start.elapsed();
        self.close(d);
    }
}

/// Runs `f` with a thread-local span capture active and returns its result
/// together with every span finished on this thread during the call, in
/// completion order. Works regardless of the global collection switch
/// (captured spans are *also* collected globally when it is on). Nested
/// captures are scoped: the inner capture takes the spans finished within
/// it, and they are not re-reported to the outer one.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<FinishedSpan>) {
    /// Restores the previous capture buffer even if `f` panics (a caller
    /// above may catch the unwind and keep using the thread).
    struct Restore(Option<Vec<FinishedSpan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CAPTURE.with(|c| *c.borrow_mut() = previous);
        }
    }
    let guard = Restore(CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())));
    let value = f();
    let captured = CAPTURE.with(|c| c.borrow_mut().take().unwrap_or_default());
    drop(guard); // restores the previous buffer
    (value, captured)
}

/// Snapshot of all globally collected finished spans, in completion order.
pub(crate) fn snapshot() -> Vec<FinishedSpan> {
    FINISHED.lock().expect("span collector poisoned").clone()
}

/// Number of spans dropped at the [`MAX_SPANS`] cap.
pub(crate) fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn clear() {
    FINISHED.lock().expect("span collector poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}
