//! Hierarchical spans: RAII wall-clock timers that nest through a
//! thread-local stack.
//!
//! A span always measures elapsed time (callers consume [`Span::finish`]'s
//! duration for deadline checks and timing reports even with collection
//! off); it is only *recorded* — appended to the global collector and/or
//! the thread's active [`capture`] — when someone is listening. Parentage
//! is per-thread: a span opened on a worker thread with an empty stack is
//! a root span there, which keeps the collector lock-free on the hot path
//! (one `Mutex` push per *finished* recorded span).
//!
//! Cross-thread requests stitch through an explicit [`SpanContext`]
//! handoff: [`Span::child_of`] parents a span under a context minted on
//! another thread and makes its trace id the thread's *current trace*, so
//! ordinary [`span`] calls opened underneath inherit it. Spans with a
//! nonzero trace id are additionally indexed per trace (see
//! [`trace_spans`](crate::trace_spans)) for request-scoped assembly.

use crate::trace::SpanContext;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on retained finished spans — a runaway-loop backstop, far above any
/// real pipeline run. Excess spans are counted in
/// [`Report::dropped_spans`](crate::Report::dropped_spans).
const MAX_SPANS: usize = 1 << 16;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static FINISHED: Mutex<Vec<FinishedSpan>> = Mutex::new(Vec::new());

thread_local! {
    /// Ids of the live recorded spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Active thread-local capture buffer, if any.
    static CAPTURE: RefCell<Option<Vec<FinishedSpan>>> = const { RefCell::new(None) };
    /// Small dense per-thread index (stable within the process).
    static THREAD_IDX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Trace id inherited by plain [`span`] calls on this thread
    /// (0 = untraced). Set by [`Span::child_of`], restored on close.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// A completed span as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id (`None` for a root span of its thread).
    pub parent: Option<u64>,
    /// Static span name (`pipeline.stage.topology`, …).
    pub name: &'static str,
    /// Dense index of the thread the span ran on.
    pub thread: u64,
    /// Start time, µs since the process observation epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub duration_us: u64,
    /// Trace id this span belongs to (0 = untraced).
    pub trace: u64,
}

impl FinishedSpan {
    /// The span's duration as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.duration_us)
    }
}

/// A live span. Close it with [`Span::finish`] to get the measured
/// duration; dropping it (e.g. on an early `?` return) records it too.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    /// Trace id stamped on the finished span (0 = untraced).
    trace: u64,
    /// The thread's current trace before this span installed its own
    /// (`Some` only for [`Span::child_of`] spans, restored on close).
    prev_trace: Option<u64>,
    /// Whether this span was pushed on the thread stack and will be
    /// recorded on close (decided once at open, so a mid-flight toggle of
    /// the global switch cannot unbalance the stack).
    recording: bool,
    closed: bool,
}

/// Opens a span named `name`, child of the innermost live span on this
/// thread. Time is measured unconditionally; the span is recorded only if
/// global collection is enabled or a thread-local [`capture`] is active.
/// The span inherits the thread's current trace id, if any.
pub fn span(name: &'static str) -> Span {
    let recording =
        crate::enabled() || CAPTURE.with(|c| c.borrow().is_some());
    let (id, parent, start_us, trace) = if recording {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        (id, parent, crate::epoch_micros(), CURRENT_TRACE.with(Cell::get))
    } else {
        (0, None, 0, 0)
    };
    Span {
        name,
        id,
        parent,
        start: Instant::now(),
        start_us,
        trace,
        prev_trace: None,
        recording,
        closed: false,
    }
}

impl Span {
    /// Opens a span explicitly parented under `ctx` — typically minted on
    /// *another* thread (the accept thread) and handed across a queue.
    /// While the span is live, `ctx`'s trace id becomes this thread's
    /// current trace, so plain [`span`] calls underneath inherit it; the
    /// previous trace is restored on close. With an untraced context this
    /// behaves like [`span`].
    pub fn child_of(name: &'static str, ctx: SpanContext) -> Span {
        if ctx.trace == 0 {
            return span(name);
        }
        let recording =
            crate::enabled() || CAPTURE.with(|c| c.borrow().is_some());
        if !recording {
            return span(name);
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        // The explicit parent wins over the thread stack: the span joins
        // the remote request tree, not whatever happens to be live here.
        STACK.with(|s| s.borrow_mut().push(id));
        let prev = CURRENT_TRACE.with(|t| t.replace(ctx.trace));
        Span {
            name,
            id,
            parent: (ctx.span != 0).then_some(ctx.span),
            start: Instant::now(),
            start_us: crate::epoch_micros(),
            trace: ctx.trace,
            prev_trace: Some(prev),
            recording,
            closed: false,
        }
    }

    /// A handoff context for parenting spans under this one, possibly on
    /// another thread. Untraced or non-recording spans return
    /// [`SpanContext::NONE`].
    pub fn context(&self) -> SpanContext {
        if self.recording && self.trace != 0 {
            SpanContext { trace: self.trace, span: self.id }
        } else {
            SpanContext::NONE
        }
    }

    /// The measured time so far (works with collection off).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its measured duration.
    pub fn finish(mut self) -> Duration {
        let d = self.start.elapsed();
        self.close(d);
        d
    }

    fn close(&mut self, duration: Duration) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !self.recording {
            return;
        }
        // Unwind the thread stack to (and including) this span; tolerates
        // out-of-order drops by also closing any nested stragglers.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            while let Some(top) = s.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        if let Some(prev) = self.prev_trace.take() {
            CURRENT_TRACE.with(|t| t.set(prev));
        }
        let fin = FinishedSpan {
            id: self.id,
            parent: self.parent,
            name: self.name,
            thread: THREAD_IDX.with(|t| *t),
            start_us: self.start_us,
            duration_us: duration.as_micros() as u64,
            trace: self.trace,
        };
        record_finished(fin);
    }
}

/// Routes a finished span to the active capture, the per-trace index, and
/// the global collector.
fn record_finished(fin: FinishedSpan) {
    CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(fin.clone());
        }
    });
    if crate::enabled() {
        if fin.trace != 0 {
            crate::trace::record(fin.clone());
        }
        let mut g = FINISHED.lock().expect("span collector poisoned");
        if g.len() < MAX_SPANS {
            g.push(fin);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Records a synthetic span with explicit timing — for intervals no single
/// thread lives through, like the queue wait between the accept thread's
/// enqueue and a worker's pickup. `start_us` is µs since the observation
/// epoch ([`now_us`](crate::now_us)); the span is parented under `ctx` and
/// never touches the thread stack.
pub fn record_span(name: &'static str, ctx: SpanContext, start_us: u64, duration: Duration) {
    if !crate::enabled() && CAPTURE.with(|c| c.borrow().is_none()) {
        return;
    }
    let fin = FinishedSpan {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: (ctx.span != 0).then_some(ctx.span),
        name,
        thread: THREAD_IDX.with(|t| *t),
        start_us,
        duration_us: duration.as_micros() as u64,
        trace: ctx.trace,
    };
    record_finished(fin);
}

impl Drop for Span {
    fn drop(&mut self) {
        let d = self.start.elapsed();
        self.close(d);
    }
}

/// Runs `f` with a thread-local span capture active and returns its result
/// together with every span finished on this thread during the call, in
/// completion order. Works regardless of the global collection switch
/// (captured spans are *also* collected globally when it is on). Nested
/// captures are scoped: the inner capture takes the spans finished within
/// it, and they are not re-reported to the outer one.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<FinishedSpan>) {
    /// Restores the previous capture buffer even if `f` panics (a caller
    /// above may catch the unwind and keep using the thread).
    struct Restore(Option<Vec<FinishedSpan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CAPTURE.with(|c| *c.borrow_mut() = previous);
        }
    }
    let guard = Restore(CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())));
    let value = f();
    let captured = CAPTURE.with(|c| c.borrow_mut().take().unwrap_or_default());
    drop(guard); // restores the previous buffer
    (value, captured)
}

/// Snapshot of all globally collected finished spans, in completion order.
pub(crate) fn snapshot() -> Vec<FinishedSpan> {
    FINISHED.lock().expect("span collector poisoned").clone()
}

/// Number of spans dropped at the [`MAX_SPANS`] cap.
pub(crate) fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn clear() {
    FINISHED.lock().expect("span collector poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}
