//! Leveled diagnostic events.
//!
//! An event prints to stderr when its level passes the global verbosity
//! (default [`Level::Warn`]: errors and warnings always show; `-v` adds
//! info, `-vv` adds debug), and is retained for the report when collection
//! is enabled. Stdout is never touched — it belongs to machine-readable
//! command output.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Cap on retained events (oldest kept; past the cap new events still
/// print but are no longer retained for the report).
const MAX_EVENTS: usize = 4096;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures. Always printed.
    Error,
    /// Suspicious but non-fatal conditions. Printed by default.
    Warn,
    /// High-level progress (one line per stage/attempt). Printed with `-v`.
    Info,
    /// Inner-loop detail (per-iteration/per-scenario). Printed with `-vv`.
    Debug,
}

impl Level {
    /// Lowercase name, as serialized in reports.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a serialized level name.
    pub fn from_name(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static EVENTS: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());

/// A retained event, as it appears in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`pipeline`, `sim.fault`, …).
    pub target: String,
    /// Rendered message.
    pub message: String,
    /// µs since the process observation epoch.
    pub at_us: u64,
}

/// Sets the global verbosity: events at or above (more severe than) the
/// given level print to stderr.
pub fn set_verbosity(level: Level) {
    VERBOSITY.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity level.
pub fn verbosity() -> Level {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

pub(crate) fn emit(level: Level, target: &'static str, message: String) {
    if level <= verbosity() {
        eprintln!("[{}] {target}: {message}", level.name());
    }
    if crate::enabled() {
        let mut events = EVENTS.lock().expect("event log poisoned");
        if events.len() < MAX_EVENTS {
            let at_us = crate::epoch_micros();
            events.push(EventRecord {
                level,
                target: target.to_string(),
                message,
                at_us,
            });
        }
    }
}

/// Snapshot of the retained events, in emission order.
pub fn event_records() -> Vec<EventRecord> {
    EVENTS.lock().expect("event log poisoned").clone()
}

pub(crate) fn clear() {
    EVENTS.lock().expect("event log poisoned").clear();
}
