//! Structured observability for the ConfMask pipeline and simulator.
//!
//! A zero-dependency (offline-friendly, like the `crates/vendor` stubs)
//! instrumentation layer with three primitives:
//!
//! * **Spans** ([`span`]) — hierarchical wall-clock timers. A span opened
//!   while another span on the same thread is live becomes its child, so
//!   the pipeline's stage structure (attempt → stage → simulation) falls
//!   out of ordinary RAII scoping. Finished spans are collected globally
//!   (when [`set_enabled`] is on) and/or into a thread-local capture
//!   ([`capture`]) that works regardless of the global switch.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`observe`]) — a global
//!   registry of saturating counters, gauges, and log-bucketed histograms
//!   with p50/p90/p99 summaries.
//! * **Events** ([`error!`], [`warn!`], [`info!`], [`debug!`]) — a leveled
//!   diagnostic log. Events print to **stderr** (stdout stays reserved for
//!   machine-readable command output) when the level passes the global
//!   verbosity, and are retained for the report when collection is on.
//!
//! Everything funnels into a [`Report`](report::Report): a span tree with
//! durations plus all counters/gauges/histograms, serializable to JSON
//! ([`report::Report::to_json`]), parseable back
//! ([`report::Report::from_json`]), and renderable as an indented
//! flame-style summary ([`report::Report::render`]).
//!
//! ## Cost model
//!
//! With collection disabled (the default) every primitive is a relaxed
//! atomic load away from a no-op: counters and events return immediately,
//! and spans skip the collector entirely — they still measure elapsed time
//! (two `Instant` reads), because callers like the pipeline's deadline
//! checks consume the measured [`Span::finish`] duration directly. The
//! instrumented hot paths add well under 5% wall time when disabled.
//!
//! ## Naming conventions
//!
//! Dotted lowercase paths, crate first: spans `pipeline.anonymize`,
//! `pipeline.attempt`, `pipeline.stage.<stage>`, `sim.control_plane`;
//! counters `sim.bgp.rounds`, `core.route_equiv.iterations`,
//! `topology.kdegree.attempts`; histograms `sim.fib.size`. See DESIGN.md
//! §8 for the full registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
pub mod json;
mod metrics;
mod prom;
pub mod report;
mod span;
mod trace;

pub use event::{event_records, set_verbosity, verbosity, EventRecord, Level};
pub use metrics::{counter_add, gauge_set, histogram_register, observe, HistogramSummary};
pub use report::Report;
pub use span::{capture, record_span, span, FinishedSpan, Span};
pub use trace::{release_trace, retain_trace, trace_known, trace_spans, SpanContext, TraceId};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns global collection (spans, metrics, events retention) on or off.
/// Off by default; verbosity-gated stderr printing works either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-wide observation epoch (first use).
pub(crate) fn epoch_micros() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// Microseconds since the process-wide observation epoch — the timescale
/// of [`FinishedSpan::start_us`]. Public so callers can timestamp
/// synthetic spans ([`record_span`]) consistently with RAII ones.
pub fn now_us() -> u64 {
    epoch_micros()
}

/// Snapshots everything collected so far into a [`Report`].
pub fn report() -> Report {
    Report {
        spans: span::snapshot().into_iter().map(Into::into).collect(),
        dropped_spans: span::dropped(),
        counters: metrics::counters_snapshot(),
        gauges: metrics::gauges_snapshot(),
        histograms: metrics::histograms_snapshot(),
        events: event::event_records(),
    }
}

/// Clears all collected spans, metrics, and events (verbosity and the
/// enabled switch are untouched). Intended for tests.
pub fn reset() {
    span::clear();
    trace::clear();
    metrics::clear();
    event::clear();
}

/// Emits a leveled event: prints to stderr when `level` passes the global
/// verbosity, and retains it for the report when collection is enabled.
/// Prefer the [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros, which skip
/// message formatting entirely when nothing would consume it.
pub fn emit(level: Level, target: &'static str, message: String) {
    event::emit(level, target, message);
}

/// Whether an event at `level` would be printed to stderr.
pub fn level_enabled(level: Level) -> bool {
    level <= verbosity()
}

/// Emits an error-level event (always printed to stderr).
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::level_enabled($crate::Level::Error) || $crate::enabled() {
            $crate::emit($crate::Level::Error, $target, format!($($arg)*));
        }
    };
}

/// Emits a warning-level event.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::level_enabled($crate::Level::Warn) || $crate::enabled() {
            $crate::emit($crate::Level::Warn, $target, format!($($arg)*));
        }
    };
}

/// Emits an info-level event (shown with `-v`).
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::level_enabled($crate::Level::Info) || $crate::enabled() {
            $crate::emit($crate::Level::Info, $target, format!($($arg)*));
        }
    };
}

/// Emits a debug-level event (shown with `-vv`).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::level_enabled($crate::Level::Debug) || $crate::enabled() {
            $crate::emit($crate::Level::Debug, $target, format!($($arg)*));
        }
    };
}
