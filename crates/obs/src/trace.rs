//! Request-scoped trace contexts and the per-trace span index.
//!
//! A [`TraceId`] is minted once per inbound request; a [`SpanContext`]
//! carries `(trace, span)` across thread boundaries — the serve daemon
//! hands one through its job queue so worker-side spans stitch under the
//! HTTP request span that accepted the job. Finished spans with a nonzero
//! trace id are indexed here by trace, bounded in both directions (traces
//! retained and spans per trace), so a long-running daemon can serve
//! `GET /v1/jobs/{id}/trace` without the global collector's cap losing
//! recent requests. Trace ids are monotonic, so evicting the smallest key
//! evicts the oldest trace.

use crate::span::FinishedSpan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Traces retained in the index; the oldest is evicted beyond this.
const MAX_TRACES: usize = 512;

/// Spans retained per trace — a runaway backstop far above a real job's
/// span count. Excess spans are counted in `obs.trace_spans_dropped`.
const MAX_TRACE_SPANS: usize = 4096;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static TRACES: Mutex<BTreeMap<u64, Vec<FinishedSpan>>> = Mutex::new(BTreeMap::new());

/// A process-unique trace id, minted per inbound request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Mints a fresh, process-unique trace id (never 0).
    pub fn mint() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The id as a fixed-width hex request id (`X-Request-Id` format).
    pub fn as_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A handoff point in a trace: pass one across a thread boundary and open
/// the far side with [`Span::child_of`](crate::Span::child_of). `span` is
/// the parent span id (0 = the trace root has no parent yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Parent span id within the trace (0 = none).
    pub span: u64,
}

impl SpanContext {
    /// The untraced context: `child_of` with this behaves like plain
    /// [`span`](crate::span).
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// A root context for a fresh trace: the first `child_of` under it
    /// becomes the trace's root span.
    pub fn root(trace: TraceId) -> SpanContext {
        SpanContext { trace: trace.get(), span: 0 }
    }

    /// Whether this context carries a live trace.
    pub fn is_traced(&self) -> bool {
        self.trace != 0
    }
}

/// Indexes a finished span under its trace (called from span close when
/// collection is enabled and the span carries a nonzero trace id).
pub(crate) fn record(fin: FinishedSpan) {
    debug_assert_ne!(fin.trace, 0);
    let mut dropped = false;
    let mut evicted = false;
    {
        let mut traces = TRACES.lock().expect("trace index poisoned");
        if !traces.contains_key(&fin.trace) && traces.len() >= MAX_TRACES {
            traces.pop_first();
            evicted = true;
        }
        let spans = traces.entry(fin.trace).or_default();
        if spans.len() < MAX_TRACE_SPANS {
            spans.push(fin);
        } else {
            dropped = true;
        }
    }
    // Metrics are recorded outside the index lock (the registry has its
    // own) so the hot path never holds two locks at once.
    if evicted {
        crate::counter_add("obs.traces_evicted", 1);
    }
    if dropped {
        crate::counter_add("obs.trace_spans_dropped", 1);
    }
}

/// All spans indexed under `trace`, in completion order. Empty when the
/// trace is unknown or already evicted.
pub fn trace_spans(trace: u64) -> Vec<FinishedSpan> {
    TRACES
        .lock()
        .expect("trace index poisoned")
        .get(&trace)
        .cloned()
        .unwrap_or_default()
}

pub(crate) fn clear() {
    TRACES.lock().expect("trace index poisoned").clear();
}
