//! Request-scoped trace contexts and the per-trace span index.
//!
//! A [`TraceId`] is minted once per inbound request; a [`SpanContext`]
//! carries `(trace, span)` across thread boundaries — the serve daemon
//! hands one through its job queue so worker-side spans stitch under the
//! HTTP request span that accepted the job. The index is **opt-in**: only
//! traces registered with [`retain_trace`] collect their finished spans
//! here (the daemon retains exactly the traces that carry an accepted job
//! submission, so high-rate status polls and health checks never claim a
//! slot). The index is bounded in both directions (traces retained and
//! spans per trace), so a long-running daemon can serve
//! `GET /v1/jobs/{id}/trace` without the global collector's cap losing
//! recent requests. Trace ids are monotonic, so evicting the smallest key
//! evicts the oldest trace; an eviction high-water mark ensures a span
//! finishing *after* its trace was evicted is dropped rather than
//! resurrecting the key as a rootless partial tree.

use crate::span::FinishedSpan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Traces retained in the index; the oldest is evicted beyond this.
const MAX_TRACES: usize = 512;

/// Spans retained per trace — a runaway backstop far above a real job's
/// span count. Excess spans are counted in `obs.trace_spans_dropped`.
const MAX_TRACE_SPANS: usize = 4096;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static TRACES: Mutex<BTreeMap<u64, Vec<FinishedSpan>>> = Mutex::new(BTreeMap::new());

/// Highest trace id ever evicted from the index. A finished span whose
/// trace is at or below this mark arrived after eviction and is dropped;
/// above it, an absent key simply means the trace was never retained.
static EVICTED_HWM: AtomicU64 = AtomicU64::new(0);

/// A process-unique trace id, minted per inbound request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Mints a fresh, process-unique trace id (never 0).
    pub fn mint() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The id as a fixed-width hex request id (`X-Request-Id` format).
    pub fn as_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A handoff point in a trace: pass one across a thread boundary and open
/// the far side with [`Span::child_of`](crate::Span::child_of). `span` is
/// the parent span id (0 = the trace root has no parent yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Parent span id within the trace (0 = none).
    pub span: u64,
}

impl SpanContext {
    /// The untraced context: `child_of` with this behaves like plain
    /// [`span`](crate::span).
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// A root context for a fresh trace: the first `child_of` under it
    /// becomes the trace's root span.
    pub fn root(trace: TraceId) -> SpanContext {
        SpanContext { trace: trace.get(), span: 0 }
    }

    /// Whether this context carries a live trace.
    pub fn is_traced(&self) -> bool {
        self.trace != 0
    }
}

/// Registers `trace` for span indexing, claiming a slot (and evicting the
/// oldest retained trace if the index is full). Call this once at the
/// point a trace becomes queryable — the daemon does it when a submission
/// is accepted — and *before* any of its spans can finish on another
/// thread, so no early span races past an absent key. Idempotent.
pub fn retain_trace(trace: u64) {
    if trace == 0 {
        return;
    }
    let mut evicted = false;
    {
        let mut traces = TRACES.lock().expect("trace index poisoned");
        if !traces.contains_key(&trace) && traces.len() >= MAX_TRACES {
            if let Some((old, _)) = traces.pop_first() {
                EVICTED_HWM.fetch_max(old, Ordering::Relaxed);
                evicted = true;
            }
        }
        traces.entry(trace).or_default();
    }
    // Metrics are recorded outside the index lock (the registry has its
    // own) so the hot path never holds two locks at once.
    if evicted {
        crate::counter_add("obs.traces_evicted", 1);
    }
}

/// Releases a trace retained by [`retain_trace`] before any of its spans
/// were needed — the daemon's 429/503 path, where the submission was
/// turned away and the trace will never be queried. Spans of a released
/// trace that finish later are silently skipped (not counted as drops).
pub fn release_trace(trace: u64) {
    TRACES.lock().expect("trace index poisoned").remove(&trace);
}

/// Whether `trace` currently holds a slot in the index (retained and not
/// yet evicted) — it may still have no spans if none finished yet.
pub fn trace_known(trace: u64) -> bool {
    TRACES.lock().expect("trace index poisoned").contains_key(&trace)
}

/// Indexes a finished span under its trace (called from span close when
/// collection is enabled and the span carries a nonzero trace id). Spans
/// of unretained traces are skipped; spans of *evicted* traces are counted
/// as drops but never re-create the key — a resurrected trace would serve
/// a rootless partial tree.
pub(crate) fn record(fin: FinishedSpan) {
    debug_assert_ne!(fin.trace, 0);
    let mut dropped = false;
    {
        let mut traces = TRACES.lock().expect("trace index poisoned");
        match traces.get_mut(&fin.trace) {
            Some(spans) if spans.len() < MAX_TRACE_SPANS => spans.push(fin),
            Some(_) => dropped = true,
            None => dropped = fin.trace <= EVICTED_HWM.load(Ordering::Relaxed),
        }
    }
    if dropped {
        crate::counter_add("obs.trace_spans_dropped", 1);
    }
}

/// All spans indexed under `trace`, in completion order. Empty when the
/// trace is unknown or already evicted.
pub fn trace_spans(trace: u64) -> Vec<FinishedSpan> {
    TRACES
        .lock()
        .expect("trace index poisoned")
        .get(&trace)
        .cloned()
        .unwrap_or_default()
}

pub(crate) fn clear() {
    TRACES.lock().expect("trace index poisoned").clear();
    EVICTED_HWM.store(0, Ordering::Relaxed);
}
