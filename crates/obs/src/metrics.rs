//! Global metrics registry: saturating counters, gauges, and log-bucketed
//! histograms with percentile summaries.
//!
//! Names are `&'static str` dotted paths (see the crate docs for the
//! naming conventions). Every operation is a no-op while collection is
//! disabled, so instrumented hot loops cost one relaxed atomic load.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]` (64 covers the full `u64` range).
const BUCKETS: usize = 65;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

/// A log-bucketed histogram (powers of two).
#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The bucket index of a value: 0 for 0, otherwise its bit length (so the
/// bucket upper bound is `2^i - 1`).
pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// The value at quantile `q` (0..=1): the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`, clamped to
    /// the observed max (exact when the bucket holds one distinct value).
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Percentile summary of a histogram, as reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (bucket upper bound, clamped to the observed range).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Adds `n` to the counter `name` (saturating at `u64::MAX`). Passing 0
/// registers the counter so it appears in the report with a zero value —
/// instrumented sites use this to keep the metric set stable across runs.
pub fn counter_add(name: &'static str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    let c = reg.counters.entry(name).or_insert(0);
    *c = c.saturating_add(n);
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.gauges.insert(name, value);
}

/// Registers the histogram `name` without recording a value, so it
/// appears in the report with a zero count — the histogram counterpart of
/// `counter_add(name, 0)` for keeping the metric set stable across runs.
pub fn histogram_register(name: &'static str) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.histograms.entry(name).or_default();
}

/// Records `value` into the histogram `name`.
pub fn observe(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.histograms.entry(name).or_default().record(value);
}

pub(crate) fn counters_snapshot() -> Vec<(String, u64)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

pub(crate) fn gauges_snapshot() -> Vec<(String, f64)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

pub(crate) fn histograms_snapshot() -> Vec<(String, HistogramSummary)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.histograms
        .iter()
        .map(|(k, h)| (k.to_string(), h.summary()))
        .collect()
}

pub(crate) fn clear() {
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}
