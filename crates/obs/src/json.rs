//! A minimal JSON value model, writer, and recursive-descent parser —
//! just enough for the report format this crate emits (the workspace is
//! offline, so no external JSON dependency is available).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; report integers stay exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Escapes and quotes a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let doc = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null, "e": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(v.get("e").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode Δ";
        let doc = format!("{{{}: {}}}", escape("k"), escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulll", "{} extra", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }
}
