//! The observability report: a span tree with durations plus every
//! counter, gauge, histogram, and retained event — serializable to JSON
//! (the `--metrics-out` artifact), parseable back, and renderable as an
//! indented flame-style summary (`confmask obs-report`).

use crate::event::{EventRecord, Level};
use crate::json::{escape, parse, Json, JsonError};
use crate::metrics::HistogramSummary;
use crate::span::FinishedSpan;
use std::fmt::Write as _;

/// A span as it appears in a report (name owned, so reports can be parsed
/// back from JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (unique within the report).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (`pipeline.stage.topology`, …).
    pub name: String,
    /// Dense index of the thread the span ran on.
    pub thread: u64,
    /// Start time, µs since the process observation epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub duration_us: u64,
    /// Trace id this span belongs to (0 = untraced).
    pub trace: u64,
}

impl From<FinishedSpan> for SpanRecord {
    fn from(s: FinishedSpan) -> Self {
        SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            thread: s.thread,
            start_us: s.start_us,
            duration_us: s.duration_us,
            trace: s.trace,
        }
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub span: SpanRecord,
    /// Child spans, by start time.
    pub children: Vec<SpanNode>,
}

/// A complete observability snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped at the collector cap (0 in healthy runs).
    pub dropped_spans: u64,
    /// Counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Retained events, in emission order.
    pub events: Vec<EventRecord>,
}

impl Report {
    /// Reconstructs the span tree: roots (spans without a finished parent)
    /// ordered by start time, children likewise.
    pub fn tree(&self) -> Vec<SpanNode> {
        let known: std::collections::BTreeSet<u64> =
            self.spans.iter().map(|s| s.id).collect();
        let mut children_of: std::collections::BTreeMap<u64, Vec<SpanRecord>> =
            std::collections::BTreeMap::new();
        let mut roots: Vec<SpanRecord> = Vec::new();
        for s in &self.spans {
            match s.parent {
                // A parent that never finished (e.g. dropped at the cap)
                // promotes its children to roots rather than losing them.
                Some(p) if known.contains(&p) => {
                    children_of.entry(p).or_default().push(s.clone())
                }
                _ => roots.push(s.clone()),
            }
        }
        fn build(
            span: SpanRecord,
            children_of: &mut std::collections::BTreeMap<u64, Vec<SpanRecord>>,
        ) -> SpanNode {
            let mut kids = children_of.remove(&span.id).unwrap_or_default();
            kids.sort_by_key(|s| (s.start_us, s.id));
            SpanNode {
                span,
                children: kids
                    .into_iter()
                    .map(|k| build(k, children_of))
                    .collect(),
            }
        }
        roots.sort_by_key(|s| (s.start_us, s.id));
        roots.into_iter().map(|r| build(r, &mut children_of)).collect()
    }

    /// Number of finished spans with the given name.
    pub fn spans_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The summary of a histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Serializes the report as pretty-printed JSON (the `--metrics-out`
    /// format, stable enough to diff across runs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"dropped_spans\": {},", self.dropped_spans);
        out.push_str("  \"spans\": [");
        let tree = self.tree();
        for (i, node) in tree.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_span(&mut out, node, 2);
        }
        if !tree.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", escape(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", escape(name));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                escape(name), h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"level\": {}, \"target\": {}, \"message\": {}, \"at_us\": {}}}",
                escape(e.level.name()),
                escape(&e.target),
                escape(&e.message),
                e.at_us
            );
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serializes only the reconstructed span tree as a JSON array —
    /// the same nested `{name, id, …, children}` shape [`Report::to_json`]
    /// embeds. The serve daemon composes this into its per-job trace
    /// endpoint response.
    pub fn span_tree_json(&self) -> String {
        let mut out = String::from("[");
        let tree = self.tree();
        for (i, node) in tree.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_span(&mut out, node, 1);
        }
        if !tree.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out
    }

    /// Parses a report previously written by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, JsonError> {
        let doc = parse(text)?;
        let bad = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let mut report = Report {
            dropped_spans: doc.get("dropped_spans").and_then(Json::as_u64).unwrap_or(0),
            ..Report::default()
        };
        fn read_span(
            v: &Json,
            parent: Option<u64>,
            out: &mut Vec<SpanRecord>,
        ) -> Result<(), JsonError> {
            let bad = |message: &str| JsonError {
                message: message.to_string(),
                offset: 0,
            };
            let id = v.get("id").and_then(Json::as_u64).ok_or_else(|| bad("span.id"))?;
            out.push(SpanRecord {
                id,
                parent,
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("span.name"))?
                    .to_string(),
                thread: v.get("thread").and_then(Json::as_u64).unwrap_or(0),
                start_us: v.get("start_us").and_then(Json::as_u64).unwrap_or(0),
                duration_us: v.get("duration_us").and_then(Json::as_u64).unwrap_or(0),
                trace: v.get("trace").and_then(Json::as_u64).unwrap_or(0),
            });
            for child in v.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
                read_span(child, Some(id), out)?;
            }
            Ok(())
        }
        for v in doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            read_span(v, None, &mut report.spans)?;
        }
        if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
            for (name, v) in counters {
                let v = v.as_u64().ok_or_else(|| bad("counter value"))?;
                report.counters.push((name.clone(), v));
            }
        }
        if let Some(gauges) = doc.get("gauges").and_then(Json::as_obj) {
            for (name, v) in gauges {
                let v = v.as_f64().ok_or_else(|| bad("gauge value"))?;
                report.gauges.push((name.clone(), v));
            }
        }
        if let Some(histograms) = doc.get("histograms").and_then(Json::as_obj) {
            for (name, v) in histograms {
                let field = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
                report.histograms.push((
                    name.clone(),
                    HistogramSummary {
                        count: field("count"),
                        sum: field("sum"),
                        min: field("min"),
                        max: field("max"),
                        p50: field("p50"),
                        p90: field("p90"),
                        p99: field("p99"),
                    },
                ));
            }
        }
        for v in doc.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            report.events.push(EventRecord {
                level: v
                    .get("level")
                    .and_then(Json::as_str)
                    .and_then(Level::from_name)
                    .ok_or_else(|| bad("event.level"))?,
                target: v
                    .get("target")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                at_us: v.get("at_us").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        Ok(report)
    }

    /// Renders the report as an indented flame-style text summary: the
    /// span tree with durations and share-of-parent, then every metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let tree = self.tree();
        if tree.is_empty() {
            out.push_str("span tree: (no spans recorded)\n");
        } else {
            out.push_str("span tree:\n");
            for node in &tree {
                render_node(&mut out, node, 1, None);
            }
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(out, "  ({} span(s) dropped at the collector cap)", self.dropped_spans);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<44} count={} mean={:.1} p50={} p90={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                );
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "events: {} retained", self.events.len());
        }
        out
    }
}

/// Human duration: µs below 1 ms, fractional ms below 1 s, seconds above.
pub fn fmt_duration_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize, parent_us: Option<u64>) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.span.name);
    let share = match parent_us {
        Some(p) if p > 0 => format!(
            "  ({:.0}%)",
            100.0 * node.span.duration_us as f64 / p as f64
        ),
        _ => String::new(),
    };
    let _ = writeln!(
        out,
        "{label:<46} {:>10}{share}",
        fmt_duration_us(node.span.duration_us)
    );
    for child in &node.children {
        render_node(out, child, depth + 1, Some(node.span.duration_us));
    }
}

fn write_span(out: &mut String, node: &SpanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = write!(
        out,
        "{pad}{{\"name\": {}, \"id\": {}, \"thread\": {}, \"start_us\": {}, \"duration_us\": {}, ",
        escape(&node.span.name),
        node.span.id,
        node.span.thread,
        node.span.start_us,
        node.span.duration_us
    );
    // Untraced spans omit the field, keeping pre-trace reports byte-stable.
    if node.span.trace != 0 {
        let _ = write!(out, "\"trace\": {}, ", node.span.trace);
    }
    out.push_str("\"children\": [");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_span(out, child, depth + 1);
    }
    if !node.children.is_empty() {
        let _ = write!(out, "\n{pad}");
    }
    out.push_str("]}");
}
