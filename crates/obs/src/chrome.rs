//! Chrome trace-event JSON exporter: renders a [`Report`] as a
//! `traceEvents` document loadable in Perfetto / `chrome://tracing`
//! (`confmask obs-report --chrome-trace`).
//!
//! Spans become complete (`"ph": "X"`) events on their recording thread's
//! track, retained events become global instant (`"ph": "i"`) marks, and
//! per-thread metadata names the tracks. Timestamps are the report's
//! epoch-relative µs, which is exactly the unit the format wants.

use crate::json::escape;
use crate::report::Report;
use std::fmt::Write as _;

/// Single process id for the whole report (one confmask process).
const PID: u64 = 1;

impl Report {
    /// Serializes the report in Chrome trace-event JSON format.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&line);
        };
        push(
            &mut out,
            format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": 0, \"args\": {{\"name\": \"confmask\"}}}}"
            ),
        );
        let mut threads: Vec<u64> = self.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            push(
                &mut out,
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": {t}, \"args\": {{\"name\": \"thread-{t}\"}}}}"
                ),
            );
        }
        for s in &self.spans {
            let mut args = format!("\"id\": {}", s.id);
            if let Some(p) = s.parent {
                let _ = write!(args, ", \"parent\": {p}");
            }
            if s.trace != 0 {
                let _ = write!(args, ", \"trace\": \"{:016x}\"", s.trace);
            }
            push(
                &mut out,
                format!(
                    "{{\"name\": {}, \"cat\": \"span\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {PID}, \"tid\": {}, \"args\": {{{args}}}}}",
                    escape(&s.name),
                    s.start_us,
                    s.duration_us,
                    s.thread
                ),
            );
        }
        for e in &self.events {
            push(
                &mut out,
                format!(
                    "{{\"name\": {}, \"cat\": \"event\", \"ph\": \"i\", \"ts\": {}, \"pid\": {PID}, \"tid\": 0, \"s\": \"g\", \"args\": {{\"level\": {}, \"message\": {}}}}}",
                    escape(&e.target),
                    e.at_us,
                    escape(e.level.name()),
                    escape(&e.message)
                ),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}
