//! Prometheus text exposition (version 0.0.4) of a [`Report`] — what a
//! long-running daemon serves on `GET /metrics`.
//!
//! Dotted metric names become underscore-separated and are prefixed with
//! `confmask_` (`serve.jobs_done` → `confmask_serve_jobs_done`). Counters
//! and gauges map directly; histograms are exposed as summaries with
//! `quantile` labels plus `_sum`/`_count`, and their min/max as extra
//! `_min`/`_max` gauges so nothing the JSON report carries is lost.

use crate::report::Report;
use std::fmt::Write as _;

/// A Prometheus-safe metric name: `confmask_` + the dotted name with every
/// non-alphanumeric character mapped to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("confmask_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Formats a gauge value the way Prometheus expects (no exponent for the
/// common integral case).
fn prom_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Report {
    /// Renders the report's metrics in the Prometheus text exposition
    /// format. Spans and events are not exposed here — they stay in the
    /// JSON report (`/metrics-json`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // Span-buffer overflow is alertable, not JSON-report-only: silent
        // trace loss would otherwise be invisible to scrapers.
        let _ = writeln!(out, "# TYPE confmask_obs_dropped_spans counter");
        let _ = writeln!(out, "confmask_obs_dropped_spans {}", self.dropped_spans);
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{n}{{quantile=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let _ = writeln!(out, "# TYPE {n}_min gauge");
            let _ = writeln!(out, "{n}_min {}", h.min);
            let _ = writeln!(out, "# TYPE {n}_max gauge");
            let _ = writeln!(out, "{n}_max {}", h.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    #[test]
    fn names_are_mangled_and_prefixed() {
        assert_eq!(prom_name("serve.jobs_done"), "confmask_serve_jobs_done");
        assert_eq!(prom_name("sim.fib.size"), "confmask_sim_fib_size");
    }

    #[test]
    fn renders_all_metric_kinds() {
        let report = Report {
            counters: vec![("serve.jobs_done".into(), 3)],
            gauges: vec![("serve.queue_depth".into(), 2.0)],
            histograms: vec![(
                "serve.job_wall_ms".into(),
                HistogramSummary {
                    count: 2,
                    sum: 5,
                    min: 1,
                    max: 4,
                    p50: 1,
                    p90: 4,
                    p99: 4,
                },
            )],
            ..Report::default()
        };
        let text = report.to_prometheus();
        assert!(text.contains("# TYPE confmask_serve_jobs_done counter"));
        assert!(text.contains("confmask_serve_jobs_done 3"));
        assert!(text.contains("confmask_serve_queue_depth 2"));
        assert!(text.contains("confmask_serve_job_wall_ms{quantile=\"0.5\"} 1"));
        assert!(text.contains("confmask_serve_job_wall_ms_count 2"));
        assert!(text.contains("confmask_serve_job_wall_ms_max 4"));
    }

    #[test]
    fn empty_report_renders_only_dropped_spans() {
        let text = Report::default().to_prometheus();
        assert_eq!(
            text,
            "# TYPE confmask_obs_dropped_spans counter\nconfmask_obs_dropped_spans 0\n"
        );
    }

    #[test]
    fn dropped_spans_are_exposed() {
        let report = Report { dropped_spans: 7, ..Report::default() };
        assert!(report.to_prometheus().contains("confmask_obs_dropped_spans 7"));
    }

    #[test]
    fn gauge_formatting_keeps_fractions() {
        assert_eq!(prom_f64(2.0), "2");
        assert_eq!(prom_f64(0.5), "0.5");
        assert_eq!(prom_f64(-3.0), "-3");
    }
}
