//! Cross-thread trace stitching and Chrome trace-export behavior. The
//! collector and trace index are process-global, so tests touching them
//! serialize on [`lock`] (this binary is its own process, independent of
//! the other test binaries' locks).

use confmask_obs::{
    capture, json, record_span, release_trace, retain_trace, span, trace_known, trace_spans,
    Report, Span, SpanContext, TraceId,
};
use std::sync::Mutex;
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> impl Drop {
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            confmask_obs::set_enabled(false);
            confmask_obs::reset();
        }
    }
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    confmask_obs::reset();
    confmask_obs::set_enabled(true);
    Guard(g)
}

#[test]
fn spans_stitch_across_a_thread_hop_under_one_trace() {
    let _g = lock();
    // Accept side: mint a trace, retain it for indexing, open its root
    // span (the index is opt-in: only retained traces collect spans).
    let trace = TraceId::mint();
    retain_trace(trace.get());
    let root = Span::child_of("request", SpanContext::root(trace));
    let ctx = root.context();
    assert_eq!(ctx.trace, trace.get());
    assert!(ctx.is_traced());

    // Queue hop: synthetic span with explicit timing, parented on the root.
    record_span("queue_wait", ctx, confmask_obs::now_us(), Duration::from_micros(5));

    // Worker side: a different thread picks the context up; plain spans
    // opened underneath inherit the trace through the thread-local.
    let handle = std::thread::spawn(move || {
        let worker = Span::child_of("worker", ctx);
        let inner = span("pipeline");
        inner.finish();
        worker.finish();
        // The handoff restores the worker thread to untraced.
        let after = span("after");
        after.finish();
    });
    handle.join().unwrap();
    root.finish();

    let spans = trace_spans(trace.get());
    let mut names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    names.sort_unstable();
    assert_eq!(names, ["pipeline", "queue_wait", "request", "worker"]);
    assert!(spans.iter().all(|s| s.trace == trace.get()));

    // Parentage: worker and queue_wait hang off the request span even
    // though they finished on (or were timed across) another thread.
    let request = spans.iter().find(|s| s.name == "request").unwrap();
    let worker = spans.iter().find(|s| s.name == "worker").unwrap();
    let pipeline = spans.iter().find(|s| s.name == "pipeline").unwrap();
    let queue_wait = spans.iter().find(|s| s.name == "queue_wait").unwrap();
    assert_eq!(request.parent, None);
    assert_eq!(worker.parent, Some(request.id));
    assert_eq!(queue_wait.parent, Some(request.id));
    assert_eq!(pipeline.parent, Some(worker.id));
    assert_ne!(request.thread, worker.thread);

    // The tree reconstructs single-rooted.
    let report = Report {
        spans: spans.into_iter().map(Into::into).collect(),
        ..Report::default()
    };
    let tree = report.tree();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree[0].span.name, "request");
}

#[test]
fn concurrent_traces_never_interleave() {
    let _g = lock();
    let contexts: Vec<(u64, SpanContext)> = (0..8)
        .map(|_| {
            let t = TraceId::mint();
            retain_trace(t.get());
            (t.get(), SpanContext::root(t))
        })
        .collect();
    let handles: Vec<_> = contexts
        .iter()
        .map(|&(_, ctx)| {
            std::thread::spawn(move || {
                let root = Span::child_of("job", ctx);
                for _ in 0..3 {
                    span("step").finish();
                }
                root.finish();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for (trace, _) in contexts {
        let spans = trace_spans(trace);
        assert_eq!(spans.len(), 4, "trace {trace}");
        assert!(spans.iter().all(|s| s.trace == trace));
        // Exactly one root, and every step is under this trace's own job.
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(job.parent, None);
        for s in spans.iter().filter(|s| s.name == "step") {
            assert_eq!(s.parent, Some(job.id), "trace {trace}");
        }
    }
}

#[test]
fn untraced_context_degrades_to_a_plain_span() {
    let _g = lock();
    let outer = span("outer");
    let child = Span::child_of("child", SpanContext::NONE);
    assert_eq!(child.context(), SpanContext::NONE);
    child.finish();
    outer.finish();
    let report = confmask_obs::report();
    let child = report.spans.iter().find(|s| s.name == "child").unwrap();
    let outer = report.spans.iter().find(|s| s.name == "outer").unwrap();
    // Falls back to stack parentage and stays untraced.
    assert_eq!(child.parent, Some(outer.id));
    assert_eq!(child.trace, 0);
}

#[test]
fn traced_spans_still_land_in_thread_local_captures() {
    let _g = lock();
    let trace = TraceId::mint();
    retain_trace(trace.get());
    let ((), captured) = capture(|| {
        let root = Span::child_of("request", SpanContext::root(trace));
        span("inner").finish();
        root.finish();
    });
    let names: Vec<&str> = captured.iter().map(|s| s.name).collect();
    assert_eq!(names, ["inner", "request"]);
    assert!(captured.iter().all(|s| s.trace == trace.get()));
    // And the trace index saw them too.
    assert_eq!(trace_spans(trace.get()).len(), 2);
}

#[test]
fn the_trace_index_evicts_oldest_and_never_resurrects_evicted_traces() {
    let _g = lock();
    let first = TraceId::mint();
    retain_trace(first.get());
    record_span("s", SpanContext::root(first), 0, Duration::from_micros(1));
    // 512 further retained traces push the first one out (the index
    // holds 512).
    let mut last = first;
    for _ in 0..512 {
        last = TraceId::mint();
        retain_trace(last.get());
        record_span("s", SpanContext::root(last), 0, Duration::from_micros(1));
    }
    assert!(trace_spans(first.get()).is_empty(), "oldest trace evicted");
    assert!(!trace_known(first.get()));
    assert_eq!(trace_spans(last.get()).len(), 1, "newest trace retained");
    let report = confmask_obs::report();
    assert_eq!(report.counter("obs.traces_evicted"), Some(1));

    // A span finishing *after* its trace was evicted (a worker outliving
    // the index slot) is dropped — it must not resurrect the key as a
    // rootless partial tree.
    record_span("late", SpanContext::root(first), 0, Duration::from_micros(1));
    assert!(trace_spans(first.get()).is_empty(), "evicted trace stays gone");
    let report = confmask_obs::report();
    assert_eq!(report.counter("obs.trace_spans_dropped"), Some(1));
}

#[test]
fn only_retained_traces_claim_index_slots() {
    let _g = lock();
    // An unretained trace (a status poll, a health check) records into
    // the global collector but never claims one of the index slots.
    let poll = TraceId::mint();
    let root = Span::child_of("poll", SpanContext::root(poll));
    root.finish();
    assert!(!trace_known(poll.get()));
    assert!(trace_spans(poll.get()).is_empty());
    assert!(
        confmask_obs::report().spans.iter().any(|s| s.name == "poll"),
        "unretained spans still reach the global collector"
    );

    // Retaining is idempotent and makes the trace queryable even before
    // any span finishes; releasing (a rejected submission) frees the slot
    // and later spans are skipped without counting as drops.
    let job = TraceId::mint();
    retain_trace(job.get());
    retain_trace(job.get());
    assert!(trace_known(job.get()));
    assert!(trace_spans(job.get()).is_empty(), "retained but no spans yet");
    release_trace(job.get());
    assert!(!trace_known(job.get()));
    record_span("after-release", SpanContext::root(job), 0, Duration::from_micros(1));
    assert!(trace_spans(job.get()).is_empty());
    let report = confmask_obs::report();
    assert_eq!(report.counter("obs.trace_spans_dropped"), None);
}

#[test]
fn chrome_trace_export_is_valid_json_with_one_event_per_span() {
    let _g = lock();
    let trace = TraceId::mint();
    let root = Span::child_of("serve.request", SpanContext::root(trace));
    span("pipeline.stage.\"quoted\"").finish(); // name needing escaping
    root.finish();
    span("untraced").finish();
    confmask_obs::info!("serve.http", "GET /healthz 200");

    let report = confmask_obs::report();
    let chrome = report.to_chrome_trace();
    let doc = json::parse(&chrome).expect("chrome trace parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(json::Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), report.spans.len());
    for e in &complete {
        assert!(e.get("name").and_then(json::Json::as_str).is_some());
        assert!(e.get("ts").and_then(json::Json::as_u64).is_some());
        assert!(e.get("dur").and_then(json::Json::as_u64).is_some());
        assert!(e.get("tid").and_then(json::Json::as_u64).is_some());
    }
    // Traced spans carry the hex trace id in args; untraced ones do not.
    let request = complete
        .iter()
        .find(|e| e.get("name").and_then(json::Json::as_str) == Some("serve.request"))
        .unwrap();
    assert_eq!(
        request.get("args").and_then(|a| a.get("trace")).and_then(json::Json::as_str),
        Some(trace.as_hex().as_str())
    );
    let untraced = complete
        .iter()
        .find(|e| e.get("name").and_then(json::Json::as_str) == Some("untraced"))
        .unwrap();
    assert!(untraced.get("args").and_then(|a| a.get("trace")).is_none());
    // The instant event for the access-log line survived too.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(json::Json::as_str) == Some("i")
            && e.get("name").and_then(json::Json::as_str) == Some("serve.http")
    }));
}
