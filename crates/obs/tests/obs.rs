//! Behavioral tests for the observability crate. The collector, registry,
//! and enabled switch are process-global, so every test touching them
//! serializes on [`lock`] and resets state up front.

use confmask_obs::{capture, counter_add, observe, report, span, Report};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests that touch the global collector; resets collected
/// state and leaves collection enabled until the guard drops.
fn lock() -> impl Drop {
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            confmask_obs::set_enabled(false);
            confmask_obs::reset();
        }
    }
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    confmask_obs::reset();
    confmask_obs::set_enabled(true);
    Guard(g)
}

#[test]
fn spans_nest_and_finish_in_completion_order() {
    // Capture is thread-local and needs no global switch.
    let ((), spans) = capture(|| {
        let outer = span("outer");
        let inner = span("inner");
        let innermost = span("innermost");
        innermost.finish();
        inner.finish();
        outer.finish();
        let sibling = span("sibling");
        sibling.finish();
    });
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert_eq!(names, ["innermost", "inner", "outer", "sibling"]);
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    assert_eq!(by_name("outer").parent, None);
    assert_eq!(by_name("sibling").parent, None);
    assert_eq!(by_name("inner").parent, Some(by_name("outer").id));
    assert_eq!(by_name("innermost").parent, Some(by_name("inner").id));
    // All on the same thread; duration can be 0µs but start must not
    // precede the parent's.
    assert!(spans.iter().all(|s| s.thread == spans[0].thread));
    assert!(by_name("inner").start_us >= by_name("outer").start_us);
}

#[test]
fn early_return_drops_still_record_the_span() {
    fn faux_stage(fail: bool) -> Result<(), ()> {
        let _sp = span("stage");
        if fail {
            return Err(()); // _sp records via Drop
        }
        Ok(())
    }
    let (result, spans) = capture(|| faux_stage(true));
    assert!(result.is_err());
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "stage");
}

#[test]
fn parentage_is_per_thread_and_threads_are_tagged() {
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                capture(|| {
                    let root = span("thread.root");
                    span("thread.child").finish();
                    root.finish();
                })
                .1
            })
        })
        .collect();
    let per_thread: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for spans in &per_thread {
        // Each thread sees exactly its own two spans: a root (no parent
        // inherited from the spawning thread) and its child.
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "thread.root").unwrap();
        let child = spans.iter().find(|s| s.name == "thread.child").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(root.thread, child.thread);
    }
    assert_ne!(
        per_thread[0][0].thread, per_thread[1][0].thread,
        "spans from different threads get distinct thread indices"
    );
}

#[test]
fn nested_captures_are_scoped() {
    let ((), outer) = capture(|| {
        span("before").finish();
        let (_, inner) = capture(|| span("inside").finish());
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].name, "inside");
        span("after").finish();
    });
    let names: Vec<&str> = outer.iter().map(|s| s.name).collect();
    assert_eq!(names, ["before", "after"], "inner capture's spans are not re-reported");
}

#[test]
fn histogram_bucket_boundaries_and_percentiles() {
    let _g = lock();
    // 90 values of 1 and 10 of 1000: the median sits in the value-1 bucket,
    // the p99 in the 1000 bucket (upper bound 1023, clamped to max 1000).
    for _ in 0..90 {
        observe("test.hist.skewed", 1);
    }
    for _ in 0..10 {
        observe("test.hist.skewed", 1000);
    }
    // Power-of-two boundaries: 2^k lands in the bucket topped by 2^(k+1)-1.
    for v in [0u64, 1, 2, 3, 4, 7, 8] {
        observe("test.hist.bounds", v);
    }
    let r = report();
    let h = r.histogram("test.hist.skewed").unwrap();
    assert_eq!((h.count, h.min, h.max), (100, 1, 1000));
    assert_eq!(h.sum, 90 + 10 * 1000);
    assert_eq!(h.p50, 1);
    assert_eq!(h.p90, 1, "rank 90 is the last value-1 observation");
    assert_eq!(h.p99, 1000);

    let b = r.histogram("test.hist.bounds").unwrap();
    assert_eq!((b.count, b.min, b.max), (7, 0, 8));
    // rank(p50) = 4 → cumulative counts 1 (0), 2 (1), 4 (2,3) → bucket
    // upper bound 3.
    assert_eq!(b.p50, 3);
    // rank(p99) = 7 → the 8 observation's bucket, upper bound 15, clamped
    // to the observed max.
    assert_eq!(b.p99, 8);
}

#[test]
fn single_valued_histogram_has_flat_percentiles() {
    let _g = lock();
    for _ in 0..1000 {
        observe("test.hist.flat", 42);
    }
    let r = report();
    let h = r.histogram("test.hist.flat").unwrap();
    // 42's bucket tops out at 63; clamping to the observed range makes
    // every percentile exact.
    assert_eq!((h.p50, h.p90, h.p99), (42, 42, 42));
    assert_eq!(h.mean(), 42.0);
}

#[test]
fn counters_saturate_instead_of_wrapping() {
    let _g = lock();
    counter_add("test.ctr.sat", u64::MAX - 1);
    counter_add("test.ctr.sat", 5);
    counter_add("test.ctr.sat", u64::MAX);
    assert_eq!(report().counter("test.ctr.sat"), Some(u64::MAX));
}

#[test]
fn zero_add_registers_a_counter() {
    let _g = lock();
    counter_add("test.ctr.zero", 0);
    assert_eq!(report().counter("test.ctr.zero"), Some(0));
    assert_eq!(report().counter("test.ctr.never"), None);
}

#[test]
fn disabled_collection_records_nothing_but_still_times() {
    let _g = lock();
    confmask_obs::set_enabled(false);
    counter_add("test.ctr.off", 3);
    observe("test.hist.off", 3);
    let sp = span("test.span.off");
    std::thread::sleep(std::time::Duration::from_millis(2));
    let took = sp.finish();
    assert!(took >= std::time::Duration::from_millis(2), "timing works while off");
    let r = report();
    assert_eq!(r.counter("test.ctr.off"), None);
    assert!(r.histogram("test.hist.off").is_none());
    assert_eq!(r.spans_named("test.span.off"), 0);
}

#[test]
fn report_round_trips_through_json() {
    let _g = lock();
    let root = span("rt.root");
    span("rt.child").finish();
    root.finish();
    counter_add("rt.counter", 7);
    confmask_obs::gauge_set("rt.gauge", 2.5);
    observe("rt.hist", 16);
    confmask_obs::warn!("rt", "an event with \"quotes\" and\nnewlines");

    let original = report();
    let parsed = Report::from_json(&original.to_json()).unwrap();
    assert_eq!(parsed.counter("rt.counter"), Some(7));
    assert_eq!(parsed.gauges, original.gauges);
    assert_eq!(parsed.histogram("rt.hist"), original.histogram("rt.hist"));
    assert_eq!(parsed.spans_named("rt.root"), 1);
    assert_eq!(parsed.spans_named("rt.child"), 1);
    let tree = parsed.tree();
    let rt = tree
        .iter()
        .find(|n| n.span.name == "rt.root")
        .expect("root span in tree");
    assert_eq!(rt.children.len(), 1);
    assert_eq!(rt.children[0].span.name, "rt.child");
    assert_eq!(parsed.events.len(), 1);
    assert!(parsed.events[0].message.contains("\"quotes\""));
    // Rendering mentions everything by name.
    let rendered = parsed.render();
    for needle in ["rt.root", "rt.child", "rt.counter", "rt.gauge", "rt.hist"] {
        assert!(rendered.contains(needle), "{needle} missing:\n{rendered}");
    }
}
