//! Structural sanity of the generated evaluation networks: degree spread,
//! AS connectivity, host placement, and cross-suite independence.

use confmask_netgen::{full_suite, synthesize};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::router_degree_sequence;

#[test]
fn wans_have_realistic_degree_spread() {
    // A WAN degree sequence should be irregular (that is what topology
    // anonymization exists to fix): more than two distinct degree values.
    for id in ['D', 'E', 'F'] {
        let net = full_suite().into_iter().find(|n| n.id == id).unwrap();
        let topo = extract_topology(&net.configs);
        let seq = router_degree_sequence(&topo);
        let distinct: std::collections::BTreeSet<_> = seq.iter().collect();
        assert!(distinct.len() > 2, "net {} degree spread {:?}", id, distinct);
    }
}

#[test]
fn bgp_nets_have_connected_as_subgraphs() {
    // Every AS must be internally connected, or iBGP egress resolution
    // would legitimately fail (the simulator's next-hop validation).
    for spec in [
        confmask_netgen::smallnets::enterprise(),
        confmask_netgen::smallnets::university(),
        confmask_netgen::smallnets::backbone(),
    ] {
        let asns = spec.asn_of.clone().expect("BGP spec");
        let n = spec.routers.len();
        for asn in asns.iter().collect::<std::collections::BTreeSet<_>>() {
            let members: Vec<usize> = (0..n).filter(|&i| asns[i] == *asn).collect();
            // BFS over intra-AS links.
            let mut seen = std::collections::BTreeSet::from([members[0]]);
            let mut queue = vec![members[0]];
            while let Some(u) = queue.pop() {
                for &(a, b, _) in &spec.links {
                    if asns[a] != asns[b] {
                        continue;
                    }
                    for (x, y) in [(a, b), (b, a)] {
                        if x == u && seen.insert(y) {
                            queue.push(y);
                        }
                    }
                }
            }
            assert_eq!(
                seen.len(),
                members.len(),
                "{}: AS{asn} not internally connected",
                spec.name
            );
        }
    }
}

#[test]
fn every_host_has_a_unique_lan() {
    for net in full_suite() {
        let mut lans = std::collections::BTreeSet::new();
        for h in net.configs.hosts.values() {
            assert!(
                lans.insert(h.prefix().expect("host has a LAN")),
                "net {}: duplicate host LAN",
                net.id
            );
        }
    }
}

#[test]
fn suites_are_independent_instances() {
    // full_suite() builds fresh configs each call (no shared mutability).
    let a = full_suite();
    let b = full_suite();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.configs, y.configs, "net {} deterministic", x.id);
    }
}

#[test]
fn boilerplate_can_be_disabled() {
    let mut spec = confmask_netgen::smallnets::enterprise();
    spec.boilerplate = false;
    let lean = synthesize(&spec);
    spec.boilerplate = true;
    let full = synthesize(&spec);
    assert!(full.total_lines() > lean.total_lines() + 40 * lean.routers.len());
    for rc in lean.routers.values() {
        assert!(rc.extra_lines.is_empty());
    }
}
