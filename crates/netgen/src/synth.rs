//! Configuration synthesis from an abstract topology specification.

use confmask_config::{
    BgpConfig, BgpNeighbor, HostConfig, Interface, NetworkConfigs, NetworkStatement, OspfConfig,
    RipConfig, RouterConfig,
};
use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix};

/// Which IGP the synthesized network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IgpProtocol {
    /// Link-state (OSPF).
    Ospf,
    /// Distance-vector (RIP).
    Rip,
}

/// Abstract topology specification.
#[derive(Debug, Clone)]
pub struct TopoSpec {
    /// Network name (used in reports).
    pub name: String,
    /// Router names, index = router id within the spec.
    pub routers: Vec<String>,
    /// Router-router links `(a, b, ospf_cost)`; `None` = protocol default.
    pub links: Vec<(usize, usize, Option<u32>)>,
    /// Hosts: `(host name, attached router index)`.
    pub hosts: Vec<(String, usize)>,
    /// Per-router ASN; `None` for a pure-IGP network. When set, all
    /// intra-AS links run the IGP and inter-AS links run eBGP only.
    pub asn_of: Option<Vec<u32>>,
    /// The IGP.
    pub igp: IgpProtocol,
    /// Append realistic management boilerplate (logging, AAA, NTP, vty, …)
    /// to every router, matching the line counts of real-world
    /// configurations. Default `true`; the boilerplate is carried verbatim
    /// through anonymization like any other uninterpreted line.
    pub boilerplate: bool,
}

impl TopoSpec {
    /// A pure-IGP spec with no hosts (hosts can be pushed afterwards).
    pub fn new(name: impl Into<String>, routers: Vec<String>, igp: IgpProtocol) -> Self {
        Self {
            name: name.into(),
            routers,
            links: Vec::new(),
            hosts: Vec::new(),
            asn_of: None,
            igp,
            boilerplate: true,
        }
    }

    /// Whether a link crosses AS boundaries.
    fn inter_as(&self, a: usize, b: usize) -> bool {
        match &self.asn_of {
            Some(asns) => asns[a] != asns[b],
            None => false,
        }
    }
}

/// Allocates the i-th /31 point-to-point link prefix out of `10.0.0.0/12`.
fn link_prefix(i: usize) -> Ipv4Prefix {
    let base: Ipv4Prefix = "10.0.0.0/12".parse().expect("static prefix");
    base.subnet(31, i as u32).expect("enough /31s for any realistic network")
}

/// Allocates the j-th /24 host LAN out of `10.100.0.0/14`.
fn host_lan(j: usize) -> Ipv4Prefix {
    let base: Ipv4Prefix = "10.100.0.0/14".parse().expect("static prefix");
    base.subnet(24, j as u32).expect("enough /24s for any realistic network")
}

/// Synthesizes full configurations from a topology specification.
///
/// Conventions (matching the paper's auto-generation scripts in spirit):
///
/// * each router-router link gets a fresh `/31`; explicit `ip ospf cost`
///   only when the spec sets one;
/// * each host gets a fresh `/24` LAN; the router side takes `.1`, the host
///   `.100`;
/// * pure-IGP networks enable the IGP (with one `network` statement per
///   connected prefix) on every interface;
/// * BGP networks enable the IGP on intra-AS links and host LANs, run
///   `router bgp <asn>` on every router, originate every local host LAN
///   into BGP, and configure eBGP sessions on both ends of inter-AS links.
pub fn synthesize(spec: &TopoSpec) -> NetworkConfigs {
    let n = spec.routers.len();
    let mut routers: Vec<RouterConfig> = spec
        .routers
        .iter()
        .map(|name| RouterConfig::new(name.clone()))
        .collect();
    let mut iface_count = vec![0usize; n];
    let mut igp_nets: Vec<Vec<Ipv4Prefix>> = vec![Vec::new(); n];
    let mut bgp_nets: Vec<Vec<Ipv4Prefix>> = vec![Vec::new(); n];
    let mut bgp_sessions: Vec<Vec<(Ipv4Addr, u32)>> = vec![Vec::new(); n];

    let add_iface =
        |routers: &mut Vec<RouterConfig>, iface_count: &mut Vec<usize>, r: usize, addr: Ipv4Addr, len: u8, cost: Option<u32>, desc: String| {
            let name = format!("Ethernet0/{}", iface_count[r]);
            iface_count[r] += 1;
            let mut iface = Interface::new(name, addr, len);
            iface.ospf_cost = cost;
            iface.description = Some(desc);
            routers[r].interfaces.push(iface);
        };

    for (li, &(a, b, cost)) in spec.links.iter().enumerate() {
        let p = link_prefix(li);
        let (lo, hi) = (p.first_host(), p.second_host());
        add_iface(&mut routers, &mut iface_count, a, lo, 31, cost, format!("to-{}", spec.routers[b]));
        add_iface(&mut routers, &mut iface_count, b, hi, 31, cost, format!("to-{}", spec.routers[a]));
        if spec.inter_as(a, b) {
            let asns = spec.asn_of.as_ref().expect("inter_as implies asn_of");
            bgp_sessions[a].push((hi, asns[b]));
            bgp_sessions[b].push((lo, asns[a]));
        } else {
            igp_nets[a].push(p);
            igp_nets[b].push(p);
        }
    }

    let mut hosts: Vec<HostConfig> = Vec::new();
    for (hj, (hname, r)) in spec.hosts.iter().enumerate() {
        let lan = host_lan(hj);
        let gw = lan.first_host();
        add_iface(&mut routers, &mut iface_count, *r, gw, 24, None, format!("lan-{hname}"));
        igp_nets[*r].push(lan);
        bgp_nets[*r].push(lan);
        hosts.push(HostConfig {
            hostname: hname.clone(),
            iface_name: "eth0".into(),
            address: (lan.subnet(32, 100).expect("/24 has .100").network(), 24),
            gateway: gw,
            extra: Vec::new(),
            added: false,
        });
    }

    for r in 0..n {
        let statements: Vec<NetworkStatement> = igp_nets[r]
            .iter()
            .map(|p| NetworkStatement {
                prefix: *p,
                area: 0,
                added: false,
            })
            .collect();
        match spec.igp {
            IgpProtocol::Ospf => {
                routers[r].ospf = Some(OspfConfig {
                    process_id: 1,
                    networks: statements,
                    distribute_lists: Vec::new(),
                });
            }
            IgpProtocol::Rip => {
                routers[r].rip = Some(RipConfig {
                    networks: statements,
                    distribute_lists: Vec::new(),
                });
            }
        }
        if let Some(asns) = &spec.asn_of {
            routers[r].bgp = Some(BgpConfig {
                asn: Asn(asns[r]),
                networks: bgp_nets[r]
                    .iter()
                    .map(|p| NetworkStatement {
                        prefix: *p,
                        area: 0,
                        added: false,
                    })
                    .collect(),
                neighbors: bgp_sessions[r]
                    .iter()
                    .map(|&(addr, remote)| BgpNeighbor {
                        addr,
                        remote_as: Asn(remote),
                        local_pref: None,
                        added: false,
                    })
                    .collect(),
                distribute_lists: Vec::new(),
            });
        }
    }

    if spec.boilerplate {
        for (ri, rc) in routers.iter_mut().enumerate() {
            rc.extra_lines = management_boilerplate(&rc.hostname, ri);
        }
    }

    NetworkConfigs::new(routers, hosts)
}

/// Deterministic management boilerplate (~60 lines) in the style of real
/// Cisco configurations: what makes real files ~100 lines per router while
/// only a fraction is routing-relevant. These lines are uninterpreted by
/// the simulator and preserved verbatim by the anonymizer.
fn management_boilerplate(hostname: &str, idx: usize) -> Vec<String> {
    let mut l: Vec<String> = Vec::with_capacity(64);
    let push = |l: &mut Vec<String>, s: &str| l.push(s.to_string());
    push(&mut l, "version 15.2");
    push(&mut l, "service timestamps debug datetime msec");
    push(&mut l, "service timestamps log datetime msec");
    push(&mut l, "service password-encryption");
    push(&mut l, "no ip domain lookup");
    l.push(format!("ip domain name {hostname}.example.net"));
    push(&mut l, "boot-start-marker");
    push(&mut l, "boot-end-marker");
    push(&mut l, "enable secret 5 $1$XXXX$REDACTEDREDACTEDREDACTED");
    push(&mut l, "aaa new-model");
    push(&mut l, "aaa authentication login default local");
    push(&mut l, "aaa authorization exec default local");
    push(&mut l, "aaa session-id common");
    push(&mut l, "clock timezone UTC 0 0");
    push(&mut l, "no ip source-route");
    push(&mut l, "ip cef");
    push(&mut l, "no ipv6 cef");
    push(&mut l, "multilink bundle-name authenticated");
    l.push(format!("username admin privilege 15 secret 5 $1$YYYY$HASH{idx:04}"));
    push(&mut l, "redundancy");
    push(&mut l, "ip forward-protocol nd");
    push(&mut l, "no ip http server");
    push(&mut l, "no ip http secure-server");
    push(&mut l, "logging buffered 64000");
    l.push("logging source-interface Ethernet0/0".to_string());
    push(&mut l, "logging host 192.0.2.10");
    push(&mut l, "snmp-server community REDACTED RO");
    push(&mut l, "snmp-server location datacenter");
    l.push(format!("snmp-server contact noc-{idx:03}@example.net"));
    push(&mut l, "snmp-server enable traps snmp authentication linkdown linkup coldstart warmstart");
    push(&mut l, "snmp-server enable traps config");
    push(&mut l, "snmp-server enable traps entity");
    push(&mut l, "snmp-server enable traps cpu threshold");
    push(&mut l, "tacacs-server host 192.0.2.20");
    push(&mut l, "tacacs-server directed-request");
    push(&mut l, "control-plane");
    push(&mut l, "banner exec ^C Authorized access only ^C");
    push(&mut l, "banner login ^C This system is the property of Example Corp ^C");
    push(&mut l, "banner motd ^C Scheduled maintenance window: Sunday 02:00-04:00 UTC ^C");
    push(&mut l, "line con 0");
    push(&mut l, " exec-timeout 5 0");
    push(&mut l, " logging synchronous");
    push(&mut l, " stopbits 1");
    push(&mut l, "line aux 0");
    push(&mut l, " exec-timeout 0 1");
    push(&mut l, " no exec");
    push(&mut l, "line vty 0 4");
    push(&mut l, " exec-timeout 15 0");
    push(&mut l, " transport input ssh");
    push(&mut l, " transport output ssh");
    push(&mut l, "line vty 5 15");
    push(&mut l, " exec-timeout 15 0");
    push(&mut l, " transport input ssh");
    push(&mut l, "ntp source Ethernet0/0");
    push(&mut l, "ntp server 192.0.2.30");
    push(&mut l, "ntp server 192.0.2.31");
    push(&mut l, "archive");
    push(&mut l, " log config");
    push(&mut l, "  logging enable");
    push(&mut l, "  notify syslog contenttype plaintext");
    push(&mut l, " path flash:backup");
    push(&mut l, "ip ssh version 2");
    push(&mut l, "ip ssh time-out 60");
    push(&mut l, "ip scp server enable");
    push(&mut l, "end");
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_spec(igp: IgpProtocol) -> TopoSpec {
        let mut spec = TopoSpec::new(
            "line",
            vec!["r0".into(), "r1".into(), "r2".into()],
            igp,
        );
        spec.links = vec![(0, 1, None), (1, 2, Some(5))];
        spec.hosts = vec![("h0".into(), 0), ("h2".into(), 2)];
        spec
    }

    #[test]
    fn ospf_synthesis_shape() {
        let net = synthesize(&line_spec(IgpProtocol::Ospf));
        assert_eq!(net.routers.len(), 3);
        assert_eq!(net.hosts.len(), 2);
        let r1 = &net.routers["r1"];
        assert_eq!(r1.interfaces.len(), 2);
        assert_eq!(r1.interfaces[1].ospf_cost, Some(5));
        assert_eq!(r1.ospf.as_ref().unwrap().networks.len(), 2);
        assert!(r1.bgp.is_none() && r1.rip.is_none());
        // Host gateway is the router-side .1.
        let h0 = &net.hosts["h0"];
        assert_eq!(h0.gateway, h0.prefix().unwrap().first_host());
    }

    #[test]
    fn rip_synthesis_uses_rip_block() {
        let net = synthesize(&line_spec(IgpProtocol::Rip));
        assert!(net.routers["r0"].rip.is_some());
        assert!(net.routers["r0"].ospf.is_none());
    }

    #[test]
    fn bgp_synthesis_sessions_on_inter_as_links() {
        let mut spec = line_spec(IgpProtocol::Ospf);
        spec.asn_of = Some(vec![100, 100, 200]); // link (1,2) crosses ASes
        let net = synthesize(&spec);
        let r1 = &net.routers["r1"];
        let r2 = &net.routers["r2"];
        assert_eq!(r1.bgp.as_ref().unwrap().neighbors.len(), 1);
        assert_eq!(r2.bgp.as_ref().unwrap().neighbors.len(), 1);
        assert_eq!(r1.bgp.as_ref().unwrap().neighbors[0].remote_as, Asn(200));
        // Inter-AS link is not in the IGP.
        assert_eq!(r1.ospf.as_ref().unwrap().networks.len(), 1);
        // Host LAN originated into BGP at its router.
        assert_eq!(net.routers["r2"].bgp.as_ref().unwrap().networks.len(), 1);
    }

    #[test]
    fn generated_configs_are_valid_and_parse() {
        let mut spec = line_spec(IgpProtocol::Ospf);
        spec.asn_of = Some(vec![100, 100, 200]);
        let net = synthesize(&spec);
        assert!(confmask_config::validate(&net).is_empty(), "{:?}", confmask_config::validate(&net));
        for rc in net.routers.values() {
            let back = confmask_config::parse_router(&rc.emit()).unwrap();
            assert_eq!(*rc, back);
        }
    }

    #[test]
    fn prefixes_are_disjoint() {
        let net = synthesize(&line_spec(IgpProtocol::Ospf));
        let prefixes = net.used_prefixes();
        for i in 0..prefixes.len() {
            for j in 0..i {
                assert!(!prefixes[i].overlaps(&prefixes[j]));
            }
        }
    }
}
