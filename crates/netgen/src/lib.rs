//! Evaluation-network generators.
//!
//! The paper evaluates ConfMask on eight networks (Table 2): three small
//! BGP+OSPF networks from real-world configurations, three wide-area OSPF
//! networks auto-generated from TopologyZoo graphs, and two fat-trees.
//! Neither the real configurations nor the TopologyZoo files ship with this
//! reproduction, so:
//!
//! * nets **A–C** are hand-modelled BGP+OSPF networks with the published
//!   |R|, |H|, |E| and protocol mix ([`smallnets`]);
//! * nets **D–F** are deterministic synthetic WANs matching the published
//!   sizes ([`wan`]);
//! * nets **G–H** are exact fat-trees ([`fattree`]).
//!
//! All generation is seeded and reproducible. The common machinery is
//! [`TopoSpec`] → [`synth::synthesize`], which assigns link prefixes, host
//! LANs, OSPF costs, ASNs and BGP sessions, and emits full configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fattree;
pub mod smallnets;
pub mod suite;
pub mod synth;
pub mod wan;

pub use suite::{extended_suite, full_suite, EvalNetwork};
pub use synth::{synthesize, IgpProtocol, TopoSpec};
