//! Synthetic wide-area networks standing in for the TopologyZoo graphs
//! (nets D–F of Table 2).
//!
//! The original evaluation auto-generates configurations from TopologyZoo's
//! Bics, Columbus and USCarrier graphs. Those GraphML files are not
//! available offline, so we generate deterministic synthetic WANs with the
//! *published* router/host/edge counts: a random spanning tree (guaranteeing
//! connectivity) plus random mesh edges up to the published edge budget,
//! with hosts spread round-robin across routers. The evaluation metrics
//! (anonymity, utility, runtime scaling) depend on size, degree spread and
//! diameter, which this construction preserves; see DESIGN.md for the
//! substitution rationale.

use crate::synth::{IgpProtocol, TopoSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a synthetic WAN spec.
///
/// * `routers` — number of routers;
/// * `hosts` — number of hosts (attached round-robin to shuffled routers);
/// * `total_edges` — the Table 2 `|E|`, which counts host links; the
///   router-router edge budget is `total_edges - hosts`;
/// * `seed` — generation seed (each named network uses a fixed one).
pub fn wan_spec(name: &str, routers: usize, hosts: usize, total_edges: usize, seed: u64) -> TopoSpec {
    assert!(total_edges >= hosts, "edge budget must cover host links");
    let router_edges = total_edges - hosts;
    assert!(
        router_edges >= routers - 1,
        "edge budget too small for a connected graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let names: Vec<String> = (0..routers).map(|i| format!("{name}-r{i:03}")).collect();
    let mut spec = TopoSpec::new(name, names, IgpProtocol::Ospf);

    // Random spanning tree: attach each node to a random earlier node.
    let mut order: Vec<usize> = (0..routers).collect();
    order.shuffle(&mut rng);
    let mut edge_set = std::collections::BTreeSet::new();
    for i in 1..routers {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        let e = (parent.min(child), parent.max(child));
        edge_set.insert(e);
    }
    // Extra mesh edges until the budget is met.
    let mut guard = 0usize;
    while edge_set.len() < router_edges {
        let a = rng.gen_range(0..routers);
        let b = rng.gen_range(0..routers);
        if a != b {
            edge_set.insert((a.min(b), a.max(b)));
        }
        guard += 1;
        assert!(guard < router_edges * 1000, "edge sampling stuck");
    }
    spec.links = edge_set.into_iter().map(|(a, b)| (a, b, None)).collect();

    // Hosts: round-robin over a shuffled router order, so host placement is
    // spread but irregular like a real WAN.
    let mut placement: Vec<usize> = (0..routers).collect();
    placement.shuffle(&mut rng);
    for h in 0..hosts {
        let r = placement[h % routers];
        spec.hosts.push((format!("{name}-h{h:03}"), r));
    }
    spec
}

/// Net D: Bics-sized WAN (Table 2: R=49, H=98, E=162).
pub fn bics() -> TopoSpec {
    wan_spec("bics", 49, 98, 162, 0xB1C5)
}

/// Net E: Columbus-sized WAN (Table 2: R=86, H=68, E=169).
pub fn columbus() -> TopoSpec {
    wan_spec("columbus", 86, 68, 169, 0xC0_1B)
}

/// Net F: USCarrier-sized WAN (Table 2: R=161, H=58, E=378).
pub fn uscarrier() -> TopoSpec {
    wan_spec("uscarrier", 161, 58, 378, 0x05CA)
}

/// Net J (extended suite): a metro-scale WAN larger than any Table 2
/// TopologyZoo stand-in (R=220, H=80, E=580).
pub fn metro() -> TopoSpec {
    wan_spec("metro", 220, 80, 580, 0x3E70)
}

/// Net K (extended suite): a continent-scale WAN, the largest evaluation
/// network (R=320, H=120, E=860).
pub fn continent() -> TopoSpec {
    wan_spec("continent", 320, 120, 860, 0xC047)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize;

    #[test]
    fn sizes_match_table2() {
        for (spec, r, h, e) in [
            (bics(), 49, 98, 162),
            (columbus(), 86, 68, 169),
            (uscarrier(), 161, 58, 378),
        ] {
            assert_eq!(spec.routers.len(), r, "{}", spec.name);
            assert_eq!(spec.hosts.len(), h, "{}", spec.name);
            assert_eq!(spec.links.len() + spec.hosts.len(), e, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = bics();
        let b = bics();
        assert_eq!(a.links, b.links);
        assert_eq!(a.hosts, b.hosts);
    }

    #[test]
    fn wan_is_connected_and_reachable() {
        // Use a small instance for speed; same generator code path.
        let spec = wan_spec("mini", 12, 6, 24, 7);
        let net = synthesize(&spec);
        let sim = confmask_sim::simulate(&net).unwrap();
        for (pair, ps) in sim.dataplane.pairs() {
            assert!(ps.clean(), "unreachable {pair:?}");
        }
    }

    #[test]
    fn bics_simulates_clean() {
        let net = synthesize(&bics());
        let sim = confmask_sim::simulate(&net).unwrap();
        let bad = sim.dataplane.pairs().filter(|(_, ps)| !ps.clean()).count();
        assert_eq!(bad, 0);
    }
}
