//! The Table 2 evaluation suite.

use crate::fattree::fattree_spec;
use crate::smallnets::{backbone, enterprise, university};
use crate::synth::synthesize;
use crate::wan::{bics, columbus, continent, metro, uscarrier};
use confmask_config::{NetworkConfigs, Vendor};

/// One evaluation network (a row of Table 2).
#[derive(Debug, Clone)]
pub struct EvalNetwork {
    /// Paper id (`'A'`–`'H'`).
    pub id: char,
    /// Human-readable name.
    pub name: &'static str,
    /// `"BGP+OSPF"` or `"OSPF"`.
    pub network_type: &'static str,
    /// The generated configurations.
    pub configs: NetworkConfigs,
}

impl EvalNetwork {
    /// Table 2 row: (|R|, |H|, |E| incl. host links, #config lines).
    /// Renders the network as a `(relative path, file text)` bundle in the
    /// given dialect — `routers/<name>.cfg` and `hosts/<name>.cfg`, in
    /// deterministic (sorted-name) order. This is the fixture format the
    /// CLI's `generate`/`netgen` writes to disk and the multi-vendor
    /// differential tests diff against.
    pub fn bundle(&self, vendor: Vendor) -> Vec<(String, String)> {
        let mut files = Vec::new();
        for (name, rc) in &self.configs.routers {
            files.push((format!("routers/{name}.cfg"), rc.emit_as(vendor)));
        }
        for (name, hc) in &self.configs.hosts {
            files.push((format!("hosts/{name}.cfg"), hc.emit_as(vendor)));
        }
        files
    }

    /// Table 2 row: (|R|, |H|, |E| incl. host links, #config lines).
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        let topo = topo_counts(&self.configs);
        (
            self.configs.routers.len(),
            self.configs.hosts.len(),
            topo,
            self.configs.total_lines(),
        )
    }
}

fn topo_counts(net: &NetworkConfigs) -> usize {
    // |E| as Table 2 counts it: router-router links + host links.
    let mut prefixes = std::collections::BTreeMap::new();
    for rc in net.routers.values() {
        for i in &rc.interfaces {
            if let Some(p) = i.prefix() {
                *prefixes.entry(p).or_insert(0usize) += 1;
            }
        }
    }
    let router_links: usize = prefixes
        .values()
        .map(|&c| if c >= 2 { c * (c - 1) / 2 } else { 0 })
        .sum();
    router_links + net.hosts.len()
}

/// Builds the full eight-network suite of Table 2.
///
/// Warning: nets E and F are large; building them is fast, but simulating
/// them repeatedly (as the pipeline does) takes real time. Use
/// [`small_suite`] in unit tests.
pub fn full_suite() -> Vec<EvalNetwork> {
    vec![
        EvalNetwork {
            id: 'A',
            name: "Enterprise",
            network_type: "BGP+OSPF",
            configs: synthesize(&enterprise()),
        },
        EvalNetwork {
            id: 'B',
            name: "University",
            network_type: "BGP+OSPF",
            configs: synthesize(&university()),
        },
        EvalNetwork {
            id: 'C',
            name: "Backbone",
            network_type: "BGP+OSPF",
            configs: synthesize(&backbone()),
        },
        EvalNetwork {
            id: 'D',
            name: "Bics",
            network_type: "OSPF",
            configs: synthesize(&bics()),
        },
        EvalNetwork {
            id: 'E',
            name: "Columbus",
            network_type: "OSPF",
            configs: synthesize(&columbus()),
        },
        EvalNetwork {
            id: 'F',
            name: "USCarrier",
            network_type: "OSPF",
            configs: synthesize(&uscarrier()),
        },
        EvalNetwork {
            id: 'G',
            name: "FatTree04",
            network_type: "OSPF",
            configs: synthesize(&fattree_spec(4)),
        },
        EvalNetwork {
            id: 'H',
            name: "FatTree08",
            network_type: "OSPF",
            configs: synthesize(&fattree_spec(8)),
        },
    ]
}

/// The extended evaluation suite: Table 2 plus the scaling networks the
/// three-strategy frontier runs on — net **I** is FatTree(16) (R=272,
/// H=256), nets **J**/**K** are synthetic WANs larger than any Table 2
/// TopologyZoo stand-in. `full_suite` stays pinned to the paper's eight
/// rows; these extras exist to stress runtime growth, not to reproduce a
/// published figure.
///
/// Warning: net I alone has 2048 router-router links; building it is
/// instant but anonymizing it with ConfMask takes minutes. Benches that
/// need a bound should slice the returned vector.
pub fn extended_suite() -> Vec<EvalNetwork> {
    let mut suite = full_suite();
    suite.push(EvalNetwork {
        id: 'I',
        name: "FatTree16",
        network_type: "OSPF",
        configs: synthesize(&fattree_spec(16)),
    });
    suite.push(EvalNetwork {
        id: 'J',
        name: "MetroWan",
        network_type: "OSPF",
        configs: synthesize(&metro()),
    });
    suite.push(EvalNetwork {
        id: 'K',
        name: "ContinentWan",
        network_type: "OSPF",
        configs: synthesize(&continent()),
    });
    suite
}

/// The fast subset (A, B, C, G) used by unit and integration tests.
pub fn small_suite() -> Vec<EvalNetwork> {
    full_suite()
        .into_iter()
        .filter(|n| matches!(n.id, 'A' | 'B' | 'C' | 'G'))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2_sizes() {
        let expect = [
            ('A', 10, 8, 26),
            ('B', 13, 8, 25),
            ('C', 11, 9, 22),
            ('D', 49, 98, 162),
            ('E', 86, 68, 169),
            ('F', 161, 58, 378),
            ('G', 20, 16, 48),
            ('H', 72, 64, 320),
        ];
        let suite = full_suite();
        assert_eq!(suite.len(), 8);
        for (net, (id, r, h, e)) in suite.iter().zip(expect) {
            let (gr, gh, ge, lines) = net.stats();
            assert_eq!(net.id, id);
            assert_eq!((gr, gh, ge), (r, h, e), "net {}", net.id);
            assert!(lines > 100, "net {} has substantial configs", net.id);
        }
    }

    #[test]
    fn all_suite_configs_validate() {
        for net in full_suite() {
            let errors = confmask_config::validate(&net.configs);
            assert!(errors.is_empty(), "net {}: {errors:?}", net.id);
        }
    }

    #[test]
    fn extended_suite_adds_the_scaling_networks() {
        let suite = extended_suite();
        assert_eq!(suite.len(), 11, "Table 2 rows plus I, J, K");
        // The first eight rows are exactly full_suite (same ids, same
        // stats) — the extension never perturbs the pinned paper suite.
        for (ext, full) in suite.iter().zip(full_suite()) {
            assert_eq!(ext.id, full.id);
            assert_eq!(ext.stats(), full.stats());
        }
        let expect = [('I', 272, 256, 2304), ('J', 220, 80, 580), ('K', 320, 120, 860)];
        for ((id, r, h, e), net) in expect.iter().zip(&suite[8..]) {
            let (gr, gh, ge, _) = net.stats();
            assert_eq!(net.id, *id);
            assert_eq!((gr, gh, ge), (*r, *h, *e), "net {}", net.id);
            let errors = confmask_config::validate(&net.configs);
            assert!(errors.is_empty(), "net {}: {errors:?}", net.id);
        }
        // Every scaling net is strictly larger than the biggest Table 2
        // net by router count — that is their whole reason to exist.
        let max_full = full_suite().iter().map(|n| n.stats().0).max().unwrap();
        for net in &suite[8..] {
            assert!(net.stats().0 > max_full, "net {} must stress scale", net.id);
        }
    }
}
