//! Fat-tree generators (nets G and H of Table 2).
//!
//! The wiring is chosen to match the paper's published sizes exactly:
//! FatTree-04 has `R=20, H=16, E=48` and FatTree-08 has `R=72, H=64,
//! E=320` (`E` counts host links). Both follow the rule: `k` pods of `k/2`
//! edge + `k/2` aggregation routers, a full edge↔agg bipartite graph inside
//! each pod, `k` core routers, and each aggregation router with local index
//! `j` uplinked to cores `[(j mod 2)·k/2, (j mod 2)·k/2 + k/2)`; two hosts
//! per edge router.

use crate::synth::{IgpProtocol, TopoSpec};

/// Builds a FatTree(k) specification (k even, ≥ 4).
pub fn fattree_spec(k: usize) -> TopoSpec {
    assert!(k >= 4 && k.is_multiple_of(2), "fat-tree requires even k >= 4");
    let half = k / 2;
    let mut routers = Vec::new();
    // Cores: indices [0, k)
    for c in 0..k {
        routers.push(format!("core{c}"));
    }
    // Per pod: aggs then edges.
    let agg_idx = |pod: usize, j: usize| k + pod * k + j;
    let edge_idx = |pod: usize, j: usize| k + pod * k + half + j;
    for pod in 0..k {
        for j in 0..half {
            routers.push(format!("agg{pod}-{j}"));
        }
        for j in 0..half {
            routers.push(format!("edge{pod}-{j}"));
        }
    }

    let mut spec = TopoSpec::new(format!("FatTree{k:02}"), routers, IgpProtocol::Ospf);

    for pod in 0..k {
        // edge ↔ agg full bipartite within the pod
        for e in 0..half {
            for a in 0..half {
                spec.links.push((edge_idx(pod, e), agg_idx(pod, a), None));
            }
        }
        // agg ↔ core uplinks
        for j in 0..half {
            let base = (j % 2) * half;
            for c in base..base + half {
                spec.links.push((agg_idx(pod, j), c, None));
            }
        }
        // two hosts per edge router
        for e in 0..half {
            for h in 0..2 {
                spec.hosts
                    .push((format!("h{pod}-{e}-{h}"), edge_idx(pod, e)));
            }
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize;

    #[test]
    fn fattree04_matches_table2() {
        let spec = fattree_spec(4);
        assert_eq!(spec.routers.len(), 20); // R
        assert_eq!(spec.hosts.len(), 16); // H
        assert_eq!(spec.links.len() + spec.hosts.len(), 48); // E incl. host links
    }

    #[test]
    fn fattree08_matches_table2() {
        let spec = fattree_spec(8);
        assert_eq!(spec.routers.len(), 72);
        assert_eq!(spec.hosts.len(), 64);
        assert_eq!(spec.links.len() + spec.hosts.len(), 320);
    }

    #[test]
    fn fattree_is_fully_reachable() {
        let net = synthesize(&fattree_spec(4));
        let sim = confmask_sim::simulate(&net).unwrap();
        for (_pair, ps) in sim.dataplane.pairs() {
            assert!(ps.clean(), "unreachable pair in fat-tree");
        }
    }

    #[test]
    fn fattree_has_ecmp_between_pods() {
        let net = synthesize(&fattree_spec(4));
        let sim = confmask_sim::simulate(&net).unwrap();
        // Hosts in different pods have multiple equal-cost paths.
        let ps = sim.dataplane.between("h0-0-0", "h1-0-0").unwrap();
        assert!(ps.paths.len() >= 2, "expected ECMP, got {:?}", ps.paths);
    }

    #[test]
    fn degrees_are_uniform_within_layers() {
        let net = synthesize(&fattree_spec(4));
        let topo = confmask_topology::extract::extract_topology(&net);
        // FatTree-04 layers: cores deg 4, aggs deg 4, edges deg 2 (router
        // degree); min same-degree is large by symmetry.
        let k_d = confmask_topology::metrics::min_same_degree(&topo);
        assert!(k_d >= 4, "fat-tree symmetry gives high k_d, got {k_d}");
    }
}
