//! Hand-modelled small networks.
//!
//! * Nets **A–C** of Table 2 (Enterprise / University / Backbone): the
//!   originals are real-world confidential configurations — exactly the
//!   data ConfMask exists to protect — so we model BGP+OSPF networks with
//!   the published router/host/edge counts and a realistic AS structure.
//! * The **Figure 2 example network** (four routers, two cost-1 links) used
//!   throughout §3 of the paper — also this repository's quickstart.
//! * The **§2.3 case-study network**: FatTree-04 with the QoS
//!   misconfiguration of Listings 1–2 embedded as uninterpreted
//!   configuration lines.

use crate::fattree::fattree_spec;
use crate::synth::{synthesize, IgpProtocol, TopoSpec};
use confmask_config::NetworkConfigs;

fn named(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

/// Net A — "Enterprise": R=10, H=8, E=26, three ASes (HQ + two branches).
pub fn enterprise() -> TopoSpec {
    let mut spec = TopoSpec::new("enterprise", named("a", 10), IgpProtocol::Ospf);
    spec.asn_of = Some(vec![
        65001, 65001, 65001, 65001, // HQ
        65002, 65002, 65002, 65002, // branch 1
        65003, 65003, // branch 2
    ]);
    spec.links = vec![
        // HQ mesh
        (0, 1, None),
        (1, 2, Some(5)),
        (2, 3, None),
        (0, 2, None),
        (1, 3, None),
        // branch 1
        (4, 5, None),
        (5, 6, None),
        (6, 7, Some(2)),
        (4, 6, None),
        // branch 2
        (8, 9, None),
        // inter-AS
        (3, 4, None),
        (2, 5, None),
        (3, 8, None),
        (0, 8, None),
        (7, 9, None),
        (6, 9, None),
        (1, 4, None),
        (2, 8, None),
    ];
    spec.hosts = [0, 1, 2, 5, 6, 7, 8, 9]
        .iter()
        .enumerate()
        .map(|(i, &r)| (format!("ha{i}"), r))
        .collect();
    spec
}

/// Net B — "University": R=13, H=8, E=25, two ASes (campus + dorms).
pub fn university() -> TopoSpec {
    let mut spec = TopoSpec::new("university", named("u", 13), IgpProtocol::Ospf);
    spec.asn_of = Some(vec![
        65010, 65010, 65010, 65010, 65010, 65010, 65010, 65010, 65010, 65010, // campus
        65020, 65020, 65020, // dorms
    ]);
    spec.links = vec![
        // campus ring + spokes
        (0, 1, None),
        (1, 2, None),
        (2, 3, Some(3)),
        (3, 4, None),
        (4, 5, None),
        (5, 0, None),
        (1, 6, None),
        (2, 7, None),
        (3, 8, None),
        (4, 9, None),
        // dorm chain
        (10, 11, None),
        (11, 12, None),
        // inter-AS
        (0, 10, None),
        (5, 12, None),
        (6, 10, None),
        (9, 11, None),
        (7, 12, None),
    ];
    spec.hosts = [6, 7, 8, 9, 10, 11, 12, 0]
        .iter()
        .enumerate()
        .map(|(i, &r)| (format!("hu{i}"), r))
        .collect();
    spec
}

/// Net C — "Backbone": R=11, H=9, E=22, three ASes in a cycle.
pub fn backbone() -> TopoSpec {
    let mut spec = TopoSpec::new("backbone", named("b", 11), IgpProtocol::Ospf);
    spec.asn_of = Some(vec![
        65100, 65100, 65100, 65100, // region 1
        65200, 65200, 65200, 65200, // region 2
        65300, 65300, 65300, // region 3
    ]);
    spec.links = vec![
        (0, 1, None),
        (1, 2, None),
        (2, 3, None),
        (4, 5, None),
        (5, 6, Some(4)),
        (6, 7, None),
        (8, 9, None),
        (9, 10, None),
        // inter-AS cycle + shortcuts
        (3, 4, None),
        (7, 8, None),
        (10, 0, None),
        (1, 5, None),
        (2, 9, None),
    ];
    spec.hosts = [0, 1, 2, 4, 5, 6, 8, 9, 10]
        .iter()
        .enumerate()
        .map(|(i, &r)| (format!("hb{i}"), r))
        .collect();
    spec
}

/// A RIP-only branch-office network (9 routers, 6 hosts): the
/// distance-vector coverage network. The paper's SFE conditions and
/// Algorithm 1 are defined for distance-vector protocols too (§5.1); none
/// of the Table 2 networks runs RIP, so this network exists to exercise
/// that code path end to end.
pub fn branch_office_rip() -> TopoSpec {
    let mut spec = TopoSpec::new("branch-rip", named("d", 9), IgpProtocol::Rip);
    spec.links = vec![
        // core ring
        (0, 1, None),
        (1, 2, None),
        (2, 0, None),
        // branches
        (0, 3, None),
        (3, 4, None),
        (1, 5, None),
        (5, 6, None),
        (2, 7, None),
        (7, 8, None),
        // redundancy
        (4, 5, None),
        (6, 7, None),
    ];
    spec.hosts = [3, 4, 5, 6, 7, 8]
        .iter()
        .enumerate()
        .map(|(i, &r)| (format!("hd{i}"), r))
        .collect();
    spec
}

/// The §3.2 example network (Figure 2): four routers, hosts on r1, r2, r4;
/// the r1–r3 and r3–r2 links cost 1, everything else default. The only path
/// h1 → h4 is `(h1, r1, r3, r2, r4, h4)`.
pub fn example_network() -> NetworkConfigs {
    let mut spec = TopoSpec::new(
        "example",
        vec!["r1".into(), "r2".into(), "r3".into(), "r4".into()],
        IgpProtocol::Ospf,
    );
    spec.links = vec![(0, 2, Some(1)), (2, 1, Some(1)), (1, 3, None)];
    spec.hosts = vec![("h1".into(), 0), ("h2".into(), 1), ("h4".into(), 3)];
    synthesize(&spec)
}

/// Griffin's BAD GADGET: the canonical BGP instance with *no* stable
/// routing — a hub AS originating one prefix and three spoke ASes in a
/// cycle, each preferring the route through its clockwise neighbour
/// (`local-preference 200`) over its direct route to the hub. Whatever any
/// spoke picks, some neighbour wants to change, so path-vector oscillates
/// forever; the simulator must detect this and report
/// `SimError::BgpDiverged` instead of spinning, and the anonymization
/// pipeline must classify it as fatal (never retried — no reseed can fix a
/// network with no equilibrium).
pub fn bad_gadget() -> NetworkConfigs {
    use confmask_config::{parse_host, parse_router};

    let cfg = |lines: &[&str]| lines.join("\n") + "\n";
    let r0 = cfg(&[
        "hostname b0",
        "!",
        "interface Ethernet0/0",
        " ip address 10.0.1.0 255.255.255.254",
        "!",
        "interface Ethernet0/1",
        " ip address 10.0.2.0 255.255.255.254",
        "!",
        "interface Ethernet0/2",
        " ip address 10.0.3.0 255.255.255.254",
        "!",
        "interface Ethernet0/3",
        " ip address 10.1.0.1 255.255.255.0",
        "!",
        "router bgp 100",
        " network 10.1.0.0 mask 255.255.255.0",
        " neighbor 10.0.1.1 remote-as 101",
        " neighbor 10.0.2.1 remote-as 102",
        " neighbor 10.0.3.1 remote-as 103",
        "!",
    ]);
    // Spoke i: links to the hub, to spoke i+1 (preferred) and spoke i-1.
    let r1 = cfg(&[
        "hostname b1",
        "!",
        "interface Ethernet0/0",
        " ip address 10.0.1.1 255.255.255.254",
        "!",
        "interface Ethernet0/1",
        " ip address 10.0.12.0 255.255.255.254",
        "!",
        "interface Ethernet0/2",
        " ip address 10.0.31.1 255.255.255.254",
        "!",
        "router bgp 101",
        " neighbor 10.0.1.0 remote-as 100",
        " neighbor 10.0.12.1 remote-as 102",
        " neighbor 10.0.12.1 local-preference 200",
        " neighbor 10.0.31.0 remote-as 103",
        "!",
    ]);
    let r2 = cfg(&[
        "hostname b2",
        "!",
        "interface Ethernet0/0",
        " ip address 10.0.2.1 255.255.255.254",
        "!",
        "interface Ethernet0/1",
        " ip address 10.0.23.0 255.255.255.254",
        "!",
        "interface Ethernet0/2",
        " ip address 10.0.12.1 255.255.255.254",
        "!",
        "router bgp 102",
        " neighbor 10.0.2.0 remote-as 100",
        " neighbor 10.0.23.1 remote-as 103",
        " neighbor 10.0.23.1 local-preference 200",
        " neighbor 10.0.12.0 remote-as 101",
        "!",
    ]);
    let r3 = cfg(&[
        "hostname b3",
        "!",
        "interface Ethernet0/0",
        " ip address 10.0.3.1 255.255.255.254",
        "!",
        "interface Ethernet0/1",
        " ip address 10.0.31.0 255.255.255.254",
        "!",
        "interface Ethernet0/2",
        " ip address 10.0.23.1 255.255.255.254",
        "!",
        "router bgp 103",
        " neighbor 10.0.3.0 remote-as 100",
        " neighbor 10.0.31.1 remote-as 101",
        " neighbor 10.0.31.1 local-preference 200",
        " neighbor 10.0.23.0 remote-as 102",
        "!",
    ]);
    let h0 = "hostname hb0\ninterface eth0\n ip address 10.1.0.100 255.255.255.0\n gateway 10.1.0.1\n";

    NetworkConfigs::new(
        [
            parse_router(&r0).unwrap(),
            parse_router(&r1).unwrap(),
            parse_router(&r2).unwrap(),
            parse_router(&r3).unwrap(),
        ],
        [parse_host(h0).unwrap()],
    )
}

/// The §2.3 case-study network: FatTree-04 with the QoS misconfiguration of
/// Listings 1–2 embedded verbatim (as uninterpreted lines the anonymizer
/// must carry through unchanged).
///
/// The root cause lives on `core2` (marks traffic from the management
/// subnet low-priority) and manifests as congestion on `agg1-1`'s
/// low-priority queue; diagnosing it requires the waypoint
/// `(edge3-1, agg3-1, core2, agg1-1, edge1-0)` to stay visible (Figure 1).
pub fn case_study_network() -> NetworkConfigs {
    let mut net = synthesize(&fattree_spec(4));

    // Listing 1 — QoS-related configuration of router c2 (here: core2).
    {
        let c2 = net.routers.get_mut("core2").expect("fat-tree has core2");
        // The interface toward agg3-1 carries the (mis)marking policy.
        if let Some(iface) = c2
            .interfaces
            .iter_mut()
            .find(|i| i.description.as_deref() == Some("to-agg3-1"))
        {
            iface
                .extra
                .push("traffic-policy mark_agg31_high_priority inbound".to_string());
        }
        c2.extra_lines.extend([
            "traffic classifier is_mgmt_traffic".to_string(),
            " if-match any".to_string(),
            "traffic behavior remark_mgmt_dscp".to_string(),
            " remark dscp af31".to_string(),
            "traffic policy mark_agg31_high_priority".to_string(),
            " classifier is_mgmt_traffic behavior remark_mgmt_dscp".to_string(),
        ]);
    }

    // Listing 2 — QoS-related configuration of router agg1-1.
    {
        let agg = net.routers.get_mut("agg1-1").expect("fat-tree has agg1-1");
        if let Some(iface) = agg
            .interfaces
            .iter_mut()
            .find(|i| i.description.as_deref() == Some("to-edge1-0"))
        {
            iface.extra.extend([
                "trust dscp".to_string(),
                "qos schedule-profile default".to_string(),
                "qos wrr 1 to 7".to_string(),
                "qos queue 2 wrr weight 10".to_string(),
                "qos queue 7 wrr weight 90".to_string(),
            ]);
        }
    }

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize;

    #[test]
    fn table2_small_net_sizes() {
        for (spec, r, h, e) in [
            (enterprise(), 10, 8, 26),
            (university(), 13, 8, 25),
            (backbone(), 11, 9, 22),
        ] {
            assert_eq!(spec.routers.len(), r, "{}", spec.name);
            assert_eq!(spec.hosts.len(), h, "{}", spec.name);
            assert_eq!(spec.links.len() + spec.hosts.len(), e, "{}", spec.name);
        }
    }

    #[test]
    fn rip_network_simulates_fully_reachable() {
        let net = synthesize(&branch_office_rip());
        let sim = confmask_sim::simulate(&net).unwrap();
        for (pair, ps) in sim.dataplane.pairs() {
            assert!(ps.clean(), "{pair:?}");
        }
        // It really is RIP.
        assert!(net.routers["d0"].rip.is_some());
        assert!(net.routers["d0"].ospf.is_none());
    }

    #[test]
    fn small_nets_simulate_fully_reachable() {
        for spec in [enterprise(), university(), backbone()] {
            let net = synthesize(&spec);
            let sim = confmask_sim::simulate(&net)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let bad: Vec<_> = sim
                .dataplane
                .pairs()
                .filter(|(_, ps)| !ps.clean())
                .map(|(p, _)| p.clone())
                .collect();
            assert!(bad.is_empty(), "{}: unreachable pairs {bad:?}", spec.name);
        }
    }

    #[test]
    fn example_network_has_the_paper_path() {
        let net = example_network();
        let sim = confmask_sim::simulate(&net).unwrap();
        let ps = sim.dataplane.between("h1", "h4").unwrap();
        assert_eq!(
            ps.paths,
            vec![vec![
                "h1".to_string(),
                "r1".into(),
                "r3".into(),
                "r2".into(),
                "r4".into(),
                "h4".into()
            ]],
            "the only h1→h4 path runs through r3 and r2"
        );
    }

    #[test]
    fn case_study_keeps_qos_lines_and_waypoint() {
        let net = case_study_network();
        let c2_text = net.routers["core2"].emit();
        assert!(c2_text.contains("traffic-policy mark_agg31_high_priority inbound"));
        assert!(c2_text.contains("remark dscp af31"));
        let agg_text = net.routers["agg1-1"].emit();
        assert!(agg_text.contains("qos queue 2 wrr weight 10"));
        // QoS lines survive a parse/emit round-trip.
        let back = confmask_config::parse_router(&c2_text).unwrap();
        assert_eq!(back, net.routers["core2"]);

        // The management-to-user path crosses a core (the waypoint class the
        // case study cares about).
        let sim = confmask_sim::simulate(&net).unwrap();
        let ps = sim.dataplane.between("h3-1-0", "h1-0-0").unwrap();
        assert!(ps.clean());
        assert!(
            ps.paths.iter().all(|p| p.iter().any(|n| n.starts_with("core"))),
            "inter-pod traffic waypoints through a core: {:?}",
            ps.paths
        );
    }
}
