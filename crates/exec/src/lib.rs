//! Shared scoped thread pool for indexed parallel work.
//!
//! ConfMask's hot loops are embarrassingly parallel over *indexed* items —
//! destination prefixes, host pairs, failure scenarios, k-degree probing
//! attempts. This crate gives them one zero-dependency executor in the
//! spirit of `crates/obs`:
//!
//! * **Global sizing** — the worker count defaults to
//!   [`std::thread::available_parallelism`], overridable by the
//!   `CONFMASK_THREADS` environment variable and at runtime via
//!   [`configure_threads`] (the CLI's `--threads` flag).
//! * **Dynamic load balancing** — workers claim chunks of the index space
//!   from a shared atomic cursor instead of a static `chunks()` split, so
//!   one slow item cannot strand the rest of a pre-assigned chunk: an idle
//!   worker "steals" directly from the unclaimed remainder.
//! * **Determinism** — results are merged by item index, never completion
//!   order, so the output of [`par_map`] is byte-identical for any worker
//!   count (including one).
//! * **Panic containment** — a panicking task stops further claims, every
//!   sibling worker is still joined, and the first payload is surfaced:
//!   [`par_map`] resumes it on the caller, [`try_par_map`] returns it as a
//!   [`RegionPanic`].
//! * **No nested fan-out** — a parallel call issued from inside a worker
//!   runs inline on that worker (no thread explosion, no deadlock).
//!
//! Workers are scoped threads spawned per region ([`std::thread::scope`]):
//! the workspace forbids `unsafe`, and persistent workers cannot execute
//! borrowed closures without lifetime erasure. Spawning costs a few
//! microseconds per worker, so call sites guard with a minimum-items
//! threshold and tiny inputs stay inline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Runtime override of the worker count (0 = not set). Takes precedence
/// over the environment and the detected parallelism, and is re-settable:
/// tests and the determinism harness flip it mid-process.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The environment/hardware default, resolved once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set while this thread is executing tasks for a parallel region, so
    /// nested parallel calls run inline instead of fanning out again.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker count for every subsequent parallel region
/// (`0` restores the `CONFMASK_THREADS` / detected-parallelism default).
pub fn configure_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
    confmask_obs::gauge_set("exec.workers", thread_count() as f64);
}

/// The number of workers a parallel region may use: the
/// [`configure_threads`] override if set, else `CONFMASK_THREADS` (when a
/// positive integer), else [`std::thread::available_parallelism`].
pub fn thread_count() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *DEFAULT.get_or_init(|| {
        match std::env::var("CONFMASK_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Registers every `exec.*` metric at zero so scrapes and reports see the
/// keys before the first parallel region runs (the register-at-zero rule
/// the rest of the pipeline follows).
pub fn register_metrics() {
    confmask_obs::counter_add("exec.tasks", 0);
    confmask_obs::counter_add("exec.steals", 0);
    confmask_obs::counter_add("exec.regions", 0);
    confmask_obs::gauge_set("exec.workers", thread_count() as f64);
    confmask_obs::histogram_register("exec.utilization_pct");
}

/// The surfaced payload of a task that panicked inside a parallel region.
///
/// Every sibling worker was joined before this was returned; the payload
/// is the first panic observed (by completion order — which task panicked
/// first is inherently racy, but whether *any* panicked is not).
pub struct RegionPanic {
    payload: Box<dyn Any + Send + 'static>,
}

impl RegionPanic {
    /// Best-effort rendering of the payload (matches what `std` prints
    /// for `panic!` with a string message).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The raw panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }

    /// Re-raises the contained panic on the calling thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for RegionPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegionPanic({:?})", self.message())
    }
}

impl std::fmt::Display for RegionPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message())
    }
}

/// Maps `f` over `items` in parallel; `out[i] == f(&items[i])` exactly as
/// if mapped sequentially. A task panic is resumed on the caller after all
/// sibling workers have joined.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match region(items, || (), |(), _i, item| f(item)) {
        Ok(out) => out,
        Err(p) => p.resume(),
    }
}

/// [`par_map`], returning a contained task panic as [`RegionPanic`]
/// instead of resuming it.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, RegionPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    region(items, || (), |(), _i, item| f(item))
}

/// Runs `f(index, &items[index])` for every item, in parallel, for its
/// side effects. A task panic is resumed on the caller after all sibling
/// workers have joined.
pub fn par_for_indexed<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    if let Err(p) = region(items, || (), |(), i, item| f(i, item)) {
        p.resume()
    }
}

/// [`par_map`] with per-worker scratch state: `init` runs once on each
/// worker (and once for an inline run) and the resulting state is threaded
/// through every task that worker claims — the shape fault sweeps need for
/// reusable scratch configurations. The scratch must not influence results
/// (it is a cache, not an accumulator), or determinism is forfeit.
pub fn par_map_init<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    match region(items, init, f) {
        Ok(out) => out,
        Err(p) => p.resume(),
    }
}

/// Streaming fan-out over a lazily-produced sequence: pulls `window` items
/// at a time from the iterator, maps them in parallel with per-worker
/// scratch state (as [`par_map_init`]), and hands each result to `sink` in
/// **global item order** before the next window is pulled. At most one
/// window of items and results is ever materialized, so a multi-million
/// item sweep runs in memory bounded by `window` — the map-reduce shape
/// the streaming fault sweep is built on.
///
/// `task` receives the item's global index (its position in the overall
/// sequence), and `sink(i, r)` observes `i` strictly increasing from 0.
/// Worker scratch state is re-initialized per window (windows are
/// independent regions), so `init` should stay cheap relative to `window`
/// tasks. A task panic is resumed on the caller after the window's
/// sibling workers have joined; previously sunk windows stay sunk.
///
/// With one worker (or inside a nested region) the windowing serves no
/// purpose, so the stream runs inline: a single scratch state for the
/// whole sequence, each result sunk as soon as it is produced, and no
/// window buffers at all — byte-identical output, strictly less work and
/// memory than the windowed path it replaces.
pub fn par_stream_init<T, R, S, I, F, K>(
    items: impl IntoIterator<Item = T>,
    window: usize,
    init: I,
    task: F,
    mut sink: K,
) where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    K: FnMut(usize, R),
{
    if thread_count() <= 1 || IN_REGION.with(Cell::get) {
        return stream_inline(items, init, task, sink);
    }
    let window = window.max(1);
    let mut it = items.into_iter();
    let mut base = 0usize;
    loop {
        let chunk: Vec<T> = it.by_ref().take(window).collect();
        if chunk.is_empty() {
            return;
        }
        let results = match region(&chunk, &init, |s, i, item| task(s, base + i, item)) {
            Ok(out) => out,
            Err(p) => p.resume(),
        };
        for (i, r) in results.into_iter().enumerate() {
            sink(base + i, r);
        }
        base += chunk.len();
    }
}

/// The single-worker body of [`par_stream_init`]: item in, result sunk,
/// nothing buffered. Tasks completed before a panic are still counted and
/// stay sunk (matching the windowed path's containment contract) before
/// the payload is resumed.
fn stream_inline<T, R, S, I, F, K>(items: impl IntoIterator<Item = T>, init: I, task: F, mut sink: K)
where
    I: Fn() -> S,
    F: Fn(&mut S, usize, &T) -> R,
    K: FnMut(usize, R),
{
    let mut state = init();
    let mut completed = 0u64;
    for (i, item) in items.into_iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| task(&mut state, i, &item))) {
            Ok(r) => {
                completed += 1;
                sink(i, r);
            }
            Err(payload) => {
                confmask_obs::counter_add("exec.tasks", completed);
                std::panic::resume_unwind(payload);
            }
        }
    }
    confmask_obs::counter_add("exec.tasks", completed);
}

/// The region core shared by every public entry point.
fn region<T, R, S, I, F>(items: &[T], init: I, task: F) -> Result<Vec<R>, RegionPanic>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = thread_count().min(n);
    let nested = IN_REGION.with(Cell::get);
    if workers <= 1 || n == 1 || nested {
        return run_inline(items, &init, &task);
    }
    run_parallel(items, workers, &init, &task)
}

/// Sequential fallback (one worker, one item, or a nested call). Panics
/// are still contained so `try_par_map` behaves identically at every
/// worker count.
fn run_inline<T, R, S>(
    items: &[T],
    init: &(impl Fn() -> S + Sync),
    task: &(impl Fn(&mut S, usize, &T) -> R + Sync),
) -> Result<Vec<R>, RegionPanic> {
    let mut state = init();
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| task(&mut state, i, item))) {
            Ok(r) => out.push(r),
            Err(payload) => {
                confmask_obs::counter_add("exec.tasks", i as u64);
                return Err(RegionPanic { payload });
            }
        }
    }
    confmask_obs::counter_add("exec.tasks", items.len() as u64);
    Ok(out)
}

/// One parallel region: scoped workers pulling index chunks off a shared
/// cursor, results stitched back together by index.
fn run_parallel<T, R, S>(
    items: &[T],
    workers: usize,
    init: &(impl Fn() -> S + Sync),
    task: &(impl Fn(&mut S, usize, &T) -> R + Sync),
) -> Result<Vec<R>, RegionPanic>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    // Small chunks keep the load balanced (a worker stuck on a pathological
    // item claims nothing else); the cursor costs one `fetch_add` per chunk,
    // so chunks of a few items amortize it away on large inputs.
    let chunk = (n / (workers * 8)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let started = Instant::now();

    // Each worker returns its (index, result) rows plus busy time and how
    // many chunks it claimed; rows are merged by index below, so completion
    // order never leaks into the output.
    type WorkerYield<R> = (Vec<(usize, R)>, u64, u64);
    let mut per_worker: Vec<WorkerYield<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_REGION.with(|c| c.set(true));
                    let t0 = Instant::now();
                    let mut state = init();
                    let mut rows: Vec<(usize, R)> = Vec::new();
                    let mut claims = 0u64;
                    'claim: while !abort.load(Ordering::Relaxed) {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        claims += 1;
                        for (i, item) in items.iter().enumerate().take((start + chunk).min(n)).skip(start) {
                            match catch_unwind(AssertUnwindSafe(|| task(&mut state, i, item))) {
                                Ok(r) => rows.push((i, r)),
                                Err(payload) => {
                                    abort.store(true, Ordering::Relaxed);
                                    let mut slot = first_panic
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    slot.get_or_insert(payload);
                                    break 'claim;
                                }
                            }
                        }
                    }
                    (rows, t0.elapsed().as_nanos() as u64, claims)
                })
            })
            .collect();
        // Join every worker before inspecting anything: a handle left
        // unjoined would re-raise its panic when the scope closes, and the
        // containment contract is "all siblings join, then one payload".
        for h in handles {
            per_worker.push(h.join().expect("exec worker bodies do not panic"));
        }
    });

    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut completed = 0u64;
    let mut busy_ns = 0u64;
    let mut steals = 0u64;
    for (rows, busy, claims) in &per_worker {
        completed += rows.len() as u64;
        busy_ns += busy;
        steals += claims.saturating_sub(1);
    }
    confmask_obs::counter_add("exec.tasks", completed);
    confmask_obs::counter_add("exec.steals", steals);
    confmask_obs::counter_add("exec.regions", 1);
    if wall_ns > 0 {
        let pct = (busy_ns as f64 / (wall_ns as f64 * workers as f64) * 100.0).round();
        confmask_obs::observe("exec.utilization_pct", pct.clamp(0.0, 100.0) as u64);
    }

    let panicked = first_panic
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(payload) = panicked {
        return Err(RegionPanic { payload });
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (rows, _, _) in per_worker {
        for (i, r) in rows {
            slots[i] = Some(r);
        }
    }
    Ok(slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        configure_threads(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        configure_threads(0);
    }

    #[test]
    fn streams_in_global_order_with_bounded_windows() {
        configure_threads(4);
        let mut seen = Vec::new();
        let mut max_window_spread = 0usize;
        let mut window_first = 0usize;
        // 103 items through windows of 10: indices arrive 0..103 in order,
        // and each window's indices stay within the window bounds.
        par_stream_init(
            0..103usize,
            10,
            || 0usize,
            |scratch, i, &x| {
                *scratch += 1; // per-worker scratch is usable
                (i, x * 3)
            },
            |i, (ti, r)| {
                assert_eq!(i, ti, "task saw the global index");
                assert_eq!(r, i * 3);
                if i % 10 == 0 {
                    window_first = i;
                }
                max_window_spread = max_window_spread.max(i - window_first);
                seen.push(i);
            },
        );
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
        assert!(max_window_spread < 10);
        // Empty input: sink never fires.
        par_stream_init(
            std::iter::empty::<usize>(),
            10,
            || (),
            |_, _, &x| x,
            |_, _| panic!("no items"),
        );
        configure_threads(0);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn override_wins_and_resets() {
        let default = thread_count();
        configure_threads(3);
        assert_eq!(thread_count(), 3);
        configure_threads(0);
        assert_eq!(thread_count(), default);
    }
}
