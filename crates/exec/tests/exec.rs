//! Behavioural contract of the shared executor: determinism, panic
//! containment, degenerate inputs, and nested regions.
//!
//! Worker counts are set via `configure_threads` (not `CONFMASK_THREADS`)
//! so each case controls its own fan-out; tests that change the count are
//! serialized behind a lock because the override is process-global.

use confmask_exec::{configure_threads, par_for_indexed, par_map, par_map_init, try_par_map};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that touch the process-global worker-count override.
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default worker count even when the test body panics.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        configure_threads(0);
    }
}

#[test]
fn empty_input_yields_empty_output() {
    let _guard = threads_lock();
    let _restore = Restore;
    for threads in [1, 4] {
        configure_threads(threads);
        let out: Vec<u64> = par_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
        assert!(try_par_map(&[] as &[u64], |&x| x).unwrap().is_empty());
        par_for_indexed(&[] as &[u64], |_, _| panic!("must not run"));
    }
}

#[test]
fn single_worker_degenerate_case_matches_serial() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(1);
    let items: Vec<u64> = (0..100).collect();
    let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
    assert_eq!(par_map(&items, |&x| x * x), expected);
}

#[test]
fn output_is_identical_across_worker_counts() {
    let _guard = threads_lock();
    let _restore = Restore;
    let items: Vec<u64> = (0..503).collect();
    let mut outputs = Vec::new();
    for threads in [1, 2, 8] {
        configure_threads(threads);
        outputs.push(par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(13)));
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

#[test]
fn panic_containment_joins_all_siblings_and_surfaces_payload() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(4);
    let items: Vec<usize> = (0..64).collect();
    let completed = AtomicUsize::new(0);
    let err = try_par_map(&items, |&i| {
        if i == 7 {
            panic!("boom at {i}");
        }
        completed.fetch_add(1, Ordering::Relaxed);
        i
    })
    .expect_err("the panicking task must surface");
    // Sibling workers were joined (the scope returned), their completed
    // tasks observed, and the payload's message survived intact.
    assert_eq!(err.message(), "boom at 7");
    assert!(completed.load(Ordering::Relaxed) < items.len());
}

#[test]
fn panic_is_contained_inline_too() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(1);
    let err = try_par_map(&[1, 2, 3], |&i: &i32| {
        if i == 2 {
            panic!("inline boom");
        }
        i
    })
    .expect_err("inline panics must also be contained");
    assert_eq!(err.message(), "inline boom");
}

#[test]
fn par_map_resumes_the_panic() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(4);
    let result = std::panic::catch_unwind(|| {
        par_map(&(0..32).collect::<Vec<usize>>(), |&i| {
            if i == 3 {
                panic!("resumed");
            }
            i
        })
    });
    let payload = result.expect_err("par_map must re-raise the task panic");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"resumed"));
}

#[test]
fn nested_par_map_does_not_deadlock() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(4);
    let outer: Vec<usize> = (0..16).collect();
    let out = par_map(&outer, |&i| {
        let inner: Vec<usize> = (0..32).collect();
        // Runs inline on the worker: same results, no second fan-out.
        par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
    });
    let expected: Vec<usize> = outer
        .iter()
        .map(|&i| (0..32).map(|j| i * 100 + j).sum())
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn par_for_indexed_sees_every_index_once() {
    let _guard = threads_lock();
    let _restore = Restore;
    configure_threads(4);
    let seen: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
    let items: Vec<usize> = (0..200).collect();
    par_for_indexed(&items, |i, &item| {
        assert_eq!(i, item, "index must match the item's position");
        seen[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
}

#[test]
fn par_map_init_threads_worker_state_without_affecting_results() {
    let _guard = threads_lock();
    let _restore = Restore;
    let items: Vec<u64> = (0..300).collect();
    let mut outputs = Vec::new();
    for threads in [1, 6] {
        configure_threads(threads);
        // The scratch counts tasks per worker; results must not depend on it.
        outputs.push(par_map_init(
            &items,
            || 0u64,
            |scratch, i, &x| {
                *scratch += 1;
                debug_assert!(*scratch as usize <= items.len());
                x * 3 + i as u64
            },
        ));
    }
    assert_eq!(outputs[0], outputs[1]);
}
