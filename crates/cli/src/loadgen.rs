//! Closed-loop load generator for the serve daemon.
//!
//! Each worker repeatedly submits a job and polls it to a terminal state
//! before submitting the next — classic closed-loop load, so offered
//! concurrency is exactly `--concurrency` and the daemon is never buried
//! under an unbounded open-loop backlog. After `--duration-secs` the
//! workers stop submitting and drain their in-flight jobs, so every
//! accepted job is followed to its terminal state and the accounting is
//! lossless by construction:
//!
//! ```text
//! submitted == done + degraded + failed + rejected_429
//! ```
//!
//! Latency is measured end-to-end per job (just before the submit POST
//! until the poll that observed the terminal state) and reported as exact
//! percentiles over the full sorted sample — no histogram buckets, no
//! interpolation error.

use confmask::Params;
use confmask_config::NetworkConfigs;
use confmask_serve::{client, wire};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to run: where, how hard, for how long, and with which payload.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Closed-loop workers submitting concurrently.
    pub concurrency: usize,
    /// Submission window; in-flight jobs are drained past it.
    pub duration: Duration,
    /// The network sent as every job's payload.
    pub net: NetworkConfigs,
    /// Label for the payload in the bench report (e.g. `"A"`).
    pub net_label: String,
    /// Pipeline parameters; request `i` runs with seed `seed + i`.
    pub params: Params,
    /// Base seed.
    pub seed: u64,
    /// Job status poll interval.
    pub poll_ms: u64,
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenSummary {
    /// Submit POSTs issued (every one is accounted for below).
    pub submitted: u64,
    /// Jobs that finished `done`.
    pub done: u64,
    /// Jobs that finished `degraded` (healed after retries).
    pub degraded: u64,
    /// Jobs that finished `failed`.
    pub failed: u64,
    /// Submissions rejected with 429 (queue full).
    pub rejected_429: u64,
    /// Highest numeric job id the daemon accepted (the wire id parsed
    /// from each 202), so consumers can query the newest job — e.g. its
    /// `/trace` — without reconstructing ids from counts (rejected
    /// submissions consume store ids too, so counts under-estimate).
    pub last_accepted: Option<u64>,
    /// Wall time of the whole run including the drain.
    pub elapsed: Duration,
    /// Sorted end-to-end latency (µs) of every accepted job.
    pub latencies_us: Vec<u64>,
}

impl LoadgenSummary {
    /// Accepted jobs (everything submitted that was not turned away).
    pub fn accepted(&self) -> u64 {
        self.done + self.degraded + self.failed
    }

    /// True when every submission is accounted for — the invariant the CI
    /// smoke gate checks.
    pub fn lossless(&self) -> bool {
        self.submitted == self.accepted() + self.rejected_429
    }

    /// Completed jobs per second over the whole run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.accepted() as f64 / secs
    }

    /// Wire id (`"jN"`) of the highest-numbered accepted job, `None` when
    /// every submission was rejected.
    pub fn last_job_id(&self) -> Option<String> {
        self.last_accepted.map(|id| format!("j{id}"))
    }

    /// Exact nearest-rank percentile (`q` in 0..=1) of the latency
    /// sample, in milliseconds. `None` when no job was accepted.
    pub fn latency_ms(&self, q: f64) -> Option<f64> {
        let n = self.latencies_us.len();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.latencies_us[rank - 1] as f64 / 1_000.0)
    }
}

/// One worker's slice of the run, merged into the summary at the end.
#[derive(Debug, Default)]
struct WorkerTally {
    submitted: u64,
    done: u64,
    degraded: u64,
    failed: u64,
    rejected_429: u64,
    max_accepted: Option<u64>,
    latencies_us: Vec<u64>,
}

/// How long a worker backs off after a 429 before retrying. Long enough
/// not to hammer a full queue, short enough to refill it promptly.
const REJECT_BACKOFF: Duration = Duration::from_millis(25);

/// Runs the closed loop until the deadline, then drains. Any transport or
/// protocol error aborts the run with a message (a half-dead daemon would
/// otherwise produce a silently misleading benchmark).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    let body_for = |seq: u64| {
        wire::encode_submit(&cfg.net, &cfg.params.clone().with_seed(cfg.seed + seq), confmask::Vendor::Ios, confmask::Strategy::ConfMask)
    };
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let seq = Arc::new(AtomicU64::new(0));
    let tallies: Vec<Result<WorkerTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|_| {
                let seq = Arc::clone(&seq);
                let body_for = &body_for;
                scope.spawn(move || worker_loop(cfg, deadline, &seq, body_for))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let mut summary = LoadgenSummary::default();
    for tally in tallies {
        let t = tally?;
        summary.submitted += t.submitted;
        summary.done += t.done;
        summary.degraded += t.degraded;
        summary.failed += t.failed;
        summary.rejected_429 += t.rejected_429;
        summary.last_accepted = summary.last_accepted.max(t.max_accepted);
        summary.latencies_us.extend(t.latencies_us);
    }
    summary.elapsed = started.elapsed();
    summary.latencies_us.sort_unstable();
    debug_assert!(summary.lossless(), "{summary:?}");
    Ok(summary)
}

fn worker_loop(
    cfg: &LoadgenConfig,
    deadline: Instant,
    seq: &AtomicU64,
    body_for: &impl Fn(u64) -> String,
) -> Result<WorkerTally, String> {
    let mut tally = WorkerTally::default();
    while Instant::now() < deadline {
        let body = body_for(seq.fetch_add(1, Ordering::Relaxed));
        let job_start = Instant::now();
        let resp = client::post(&cfg.addr, "/v1/jobs", &body)
            .map_err(|e| format!("cannot reach {}: {e}", cfg.addr))?;
        tally.submitted += 1;
        match resp.status {
            202 => {
                let id = wire::decode_job_created(&resp.body)
                    .map_err(|e| format!("malformed submit response: {e}"))?;
                let numeric = confmask_serve::store::JobStore::parse_wire_id(&id)
                    .ok_or_else(|| format!("unparseable job id '{id}'"))?;
                tally.max_accepted = tally.max_accepted.max(Some(numeric));
                // Closed loop: follow this job to the end (even past the
                // deadline — that is the drain) before submitting again.
                let state = poll_terminal(cfg, &id)?;
                tally.latencies_us.push(job_start.elapsed().as_micros() as u64);
                match state.as_str() {
                    "done" => tally.done += 1,
                    "degraded" => tally.degraded += 1,
                    "failed" => tally.failed += 1,
                    other => return Err(format!("job {id}: unexpected terminal state '{other}'")),
                }
            }
            429 => {
                tally.rejected_429 += 1;
                std::thread::sleep(REJECT_BACKOFF);
            }
            other => {
                return Err(format!(
                    "submit failed ({other}): {}",
                    resp.text().trim()
                ));
            }
        }
    }
    Ok(tally)
}

fn poll_terminal(cfg: &LoadgenConfig, id: &str) -> Result<String, String> {
    loop {
        let resp = client::get(&cfg.addr, &format!("/v1/jobs/{id}"))
            .map_err(|e| format!("cannot poll {}: {e}", cfg.addr))?;
        if resp.status != 200 {
            return Err(format!("poll of {id} failed ({})", resp.status));
        }
        let status = wire::decode_status(&resp.body)
            .map_err(|e| format!("malformed status for {id}: {e}"))?;
        if status.is_terminal() {
            return Ok(status.state);
        }
        std::thread::sleep(Duration::from_millis(cfg.poll_ms));
    }
}

/// Renders the benchmark JSON written to `--output` (the file CI uploads
/// as `BENCH_serve.json` and gates on).
pub fn bench_json(cfg: &LoadgenConfig, summary: &LoadgenSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"serve_loadgen\",");
    let _ = writeln!(out, "  \"network\": \"{}\",", cfg.net_label);
    let _ = writeln!(out, "  \"concurrency\": {},", cfg.concurrency);
    let _ = writeln!(out, "  \"duration_secs\": {},", cfg.duration.as_secs());
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"elapsed_secs\": {:.3},", summary.elapsed.as_secs_f64());
    let _ = writeln!(out, "  \"submitted\": {},", summary.submitted);
    let _ = writeln!(out, "  \"done\": {},", summary.done);
    let _ = writeln!(out, "  \"degraded\": {},", summary.degraded);
    let _ = writeln!(out, "  \"failed\": {},", summary.failed);
    let _ = writeln!(out, "  \"rejected_429\": {},", summary.rejected_429);
    match summary.last_job_id() {
        Some(id) => {
            let _ = writeln!(out, "  \"last_job_id\": \"{id}\",");
        }
        None => {
            let _ = writeln!(out, "  \"last_job_id\": null,");
        }
    }
    let _ = writeln!(out, "  \"lossless\": {},", summary.lossless());
    let _ = writeln!(
        out,
        "  \"throughput_jobs_per_sec\": {:.3},",
        summary.throughput()
    );
    let quantile = |q: f64| summary.latency_ms(q).unwrap_or(0.0);
    let _ = writeln!(out, "  \"latency_ms\": {{");
    let _ = writeln!(out, "    \"p50\": {:.3},", quantile(0.50));
    let _ = writeln!(out, "    \"p90\": {:.3},", quantile(0.90));
    let _ = writeln!(out, "    \"p99\": {:.3},", quantile(0.99));
    let _ = writeln!(out, "    \"min\": {:.3},", quantile(0.0));
    let _ = writeln!(out, "    \"max\": {:.3}", quantile(1.0));
    let _ = writeln!(out, "  }}");
    let _ = write!(out, "}}");
    out
}

/// One-line human summary printed to stdout alongside the JSON file.
pub fn render(summary: &LoadgenSummary) -> String {
    format!(
        "loadgen: {} submitted in {:.1}s — {} done, {} degraded, {} failed, {} rejected (429)\n\
         throughput {:.2} jobs/s; latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms\n",
        summary.submitted,
        summary.elapsed.as_secs_f64(),
        summary.done,
        summary.degraded,
        summary.failed,
        summary.rejected_429,
        summary.throughput(),
        summary.latency_ms(0.50).unwrap_or(0.0),
        summary.latency_ms(0.90).unwrap_or(0.0),
        summary.latency_ms(0.99).unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_obs::json::{parse, Json};

    fn sample_summary() -> LoadgenSummary {
        LoadgenSummary {
            submitted: 12,
            done: 8,
            degraded: 1,
            failed: 1,
            rejected_429: 2,
            // Rejected submissions consume store ids too, so the last
            // accepted id can exceed the accepted count.
            last_accepted: Some(12),
            elapsed: Duration::from_secs(5),
            latencies_us: (1..=10).map(|i| i * 1_000).collect(),
        }
    }

    fn sample_config() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:0".into(),
            concurrency: 4,
            duration: Duration::from_secs(5),
            net: confmask_netgen::smallnets::example_network(),
            net_label: "example".into(),
            params: Params::new(3, 2),
            seed: 7,
            poll_ms: 10,
        }
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let s = sample_summary();
        // 10 samples of 1..=10 ms: nearest-rank p50 is the 5th (5 ms).
        assert_eq!(s.latency_ms(0.50), Some(5.0));
        assert_eq!(s.latency_ms(0.90), Some(9.0));
        assert_eq!(s.latency_ms(0.99), Some(10.0));
        assert_eq!(s.latency_ms(0.0), Some(1.0), "min clamps to rank 1");
        assert_eq!(s.latency_ms(1.0), Some(10.0));
        assert_eq!(LoadgenSummary::default().latency_ms(0.5), None);
    }

    #[test]
    fn accounting_invariant_detects_loss() {
        let mut s = sample_summary();
        assert!(s.lossless());
        assert_eq!(s.accepted(), 10);
        assert!((s.throughput() - 2.0).abs() < 1e-9);
        s.failed = 0; // a job vanished
        assert!(!s.lossless());
    }

    #[test]
    fn bench_json_is_valid_and_carries_the_accounting() {
        let json = bench_json(&sample_config(), &sample_summary());
        let doc = parse(&json).expect("bench json parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("serve_loadgen"));
        assert_eq!(doc.get("submitted").and_then(Json::as_u64), Some(12));
        assert_eq!(doc.get("rejected_429").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("last_job_id").and_then(Json::as_str), Some("j12"));
        assert_eq!(doc.get("lossless"), Some(&Json::Bool(true)));
        let empty = parse(&bench_json(&sample_config(), &LoadgenSummary::default()))
            .expect("empty bench json parses");
        assert_eq!(empty.get("last_job_id"), Some(&Json::Null));
        let lat = doc.get("latency_ms").expect("latency object");
        assert!(lat.get("p50").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(lat.get("p99").and_then(Json::as_f64).unwrap() >= lat.get("p50").and_then(Json::as_f64).unwrap());
    }

    #[test]
    fn a_short_run_against_a_live_daemon_is_lossless() {
        let server = confmask_serve::Server::bind(&confmask_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 4,
            ..confmask_serve::ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let cfg = LoadgenConfig {
            addr: addr.clone(),
            concurrency: 2,
            duration: Duration::from_millis(600),
            ..sample_config()
        };
        let summary = run(&cfg).expect("loadgen run");
        assert!(summary.submitted >= 1, "{summary:?}");
        assert!(summary.lossless(), "{summary:?}");
        assert_eq!(summary.failed, 0, "example network jobs succeed: {summary:?}");
        assert_eq!(
            summary.latencies_us.len() as u64,
            summary.accepted(),
            "one latency sample per accepted job"
        );
        assert!(summary.latency_ms(0.99).unwrap() > 0.0);

        // The CI smoke gate's path: the bench report names the last
        // accepted job, and that job serves a single-rooted trace stitched
        // across the queue hop. The worker span closes shortly *after* the
        // job turns terminal, so poll briefly for a settled tree.
        let last = summary.last_job_id().expect("at least one accepted job");
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let resp = client::get(&addr, &format!("/v1/jobs/{last}/trace")).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
            let doc = parse(&resp.text()).expect("trace json");
            let roots = doc.get("spans").and_then(Json::as_arr).expect("spans");
            assert_eq!(roots.len(), 1, "trace must be single-rooted");
            assert_eq!(
                roots[0].get("name").and_then(Json::as_str),
                Some("serve.request")
            );
            let has_worker = roots[0]
                .get("children")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .any(|c| c.get("name").and_then(Json::as_str) == Some("serve.worker"));
            if has_worker {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "trace for {last} never settled"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        client::post(&addr, "/v1/shutdown", "").unwrap();
        daemon.join().unwrap();
    }

    #[test]
    fn render_mentions_throughput_and_tail_latency() {
        let out = render(&sample_summary());
        assert!(out.contains("12 submitted"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("2 rejected (429)"), "{out}");
    }
}
