//! The `confmask` command-line tool.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match confmask_cli::args::parse(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(confmask_cli::commands::EXIT_USAGE);
        }
    };
    match confmask_cli::commands::run(cmd) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
