//! The `confmask` command-line tool.

use confmask_cli::args::ObsOptions;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, obs) = match confmask_cli::args::parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(confmask_cli::commands::EXIT_USAGE);
        }
    };

    confmask_obs::set_verbosity(match obs.verbosity {
        0 => confmask_obs::Level::Warn,
        1 => confmask_obs::Level::Info,
        _ => confmask_obs::Level::Debug,
    });
    // The executor is sized before any parallel region runs: --threads
    // beats CONFMASK_THREADS beats available parallelism.
    confmask_exec::configure_threads(obs.threads);
    // Collection costs memory and a mutex per span, so it is only switched
    // on when a report was actually requested. Registering the simulator,
    // cache, and executor metric sets at zero up front keeps the report's
    // keys stable whether or not the command ever touched them.
    confmask_obs::set_enabled(obs.metrics_out.is_some());
    if obs.metrics_out.is_some() {
        confmask_config::register_metrics();
        confmask_sim_delta::register_metrics();
        confmask_exec::register_metrics();
        confmask::register_strategy_metrics();
    }

    let outcome = confmask_cli::commands::run(cmd);
    // The metrics report is written even when the command failed — a failed
    // run's spans are exactly what one wants to look at.
    write_metrics(&obs);
    match outcome {
        Ok(report) => print!("{report}"),
        Err(e) => {
            confmask_obs::error!("cli", "{e}");
            std::process::exit(e.code);
        }
    }
}

/// Writes the collected metrics to `--metrics-out`, if requested. Report
/// failures are diagnostics, not command failures: the exit code stays the
/// command's own.
fn write_metrics(obs: &ObsOptions) {
    let Some(path) = &obs.metrics_out else {
        return;
    };
    let json = confmask_obs::report().to_json();
    match std::fs::write(path, json) {
        Ok(()) => confmask_obs::info!("cli", "metrics report written to {}", path.display()),
        Err(e) => {
            confmask_obs::error!("cli", "cannot write metrics to {}: {e}", path.display());
        }
    }
}
