//! Library backing the `confmask` command-line tool.
//!
//! The CLI works on *configuration directories* with the layout a network
//! operator would naturally have:
//!
//! ```text
//! mynet/
//!   routers/   r1.cfg  r2.cfg  …
//!   hosts/     h1.cfg  h2.cfg  …
//! ```
//!
//! Subcommands:
//!
//! * `confmask anonymize --input mynet --output shared [--k-r 6] [--k-h 2]
//!   [--noise 0.1] [--seed 0] [--mode confmask|strawman1|strawman2] [--pii]`
//! * `confmask simulate --input mynet [--trace SRC DST]`
//! * `confmask inspect --input mynet`
//! * `confmask generate --network A..H --output mynet`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod io;
pub mod loadgen;
