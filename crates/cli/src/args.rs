//! Hand-rolled argument parsing (no external dependencies).

use confmask::{EquivalenceMode, Params, Strategy, Vendor};
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Anonymize a configuration directory.
    Anonymize {
        /// Input directory.
        input: PathBuf,
        /// Output directory (created if missing).
        output: PathBuf,
        /// Pipeline parameters.
        params: Params,
        /// Also run the PII add-on on the result.
        pii: bool,
        /// Verify equivalence under failure up to this k after anonymizing.
        verify_failures: Option<usize>,
        /// Configuration dialect (`None` = auto-detect).
        vendor: Option<Vendor>,
        /// Anonymization strategy (default: `confmask`).
        strategy: Strategy,
    },
    /// Sweep failure scenarios; optionally verify equivalence under failure.
    Failures {
        /// Input directory (the bundled university network when absent).
        input: Option<PathBuf>,
        /// Pipeline parameters (used when `--verify-failures` anonymizes).
        params: Params,
        /// Max simultaneous faults for the plain sweep (k = 1 default).
        k: usize,
        /// Anonymize and verify equivalence under failure up to this k.
        verify: Option<usize>,
        /// How many k = 2 scenarios to sample when k ≥ 2.
        k2_sample: usize,
        /// Bypass the incremental simulation engine: every scenario runs a
        /// full cold simulation (the pre-delta behaviour).
        cold_sim: bool,
        /// Configuration dialect (`None` = auto-detect).
        vendor: Option<Vendor>,
        /// Anonymization strategy used by `--verify-failures` (default:
        /// `confmask`).
        strategy: Strategy,
    },
    /// Simulate a configuration directory and report the data plane.
    Simulate {
        /// Input directory.
        input: PathBuf,
        /// Optional single traceroute (src host, dst host).
        trace: Option<(String, String)>,
    },
    /// Summarize a configuration directory (topology + metrics).
    Inspect {
        /// Input directory.
        input: PathBuf,
    },
    /// Write one of the evaluation networks to disk.
    Generate {
        /// Evaluation network id (`A`–`H` Table 2, `I`–`K` extended).
        network: char,
        /// Output directory.
        output: PathBuf,
        /// Dialect to emit the fixture in (`None` = IOS, the canonical
        /// default — there is nothing to auto-detect when generating).
        vendor: Option<Vendor>,
    },
    /// Pretty-print a metrics report written by `--metrics-out`.
    ObsReport {
        /// The JSON report file (`-` reads stdin).
        input: PathBuf,
        /// Emit Chrome trace-event JSON (loadable in Perfetto /
        /// `chrome://tracing`) instead of the human-readable rendering.
        chrome_trace: bool,
    },
    /// Run the anonymization daemon.
    Serve {
        /// Bind address (`host:port`).
        addr: String,
        /// Worker threads (0 = available parallelism).
        workers: usize,
        /// Job queue capacity; beyond it submissions get 429.
        queue_cap: usize,
        /// Per-stage deadline applied to jobs without their own.
        job_timeout_secs: Option<u64>,
        /// Durable state directory (WAL + snapshots); jobs survive
        /// crashes and restarts when set.
        state_dir: Option<PathBuf>,
        /// Times a crash-interrupted job is re-admitted before failing.
        requeue_budget: u32,
    },
    /// Benchmark a running daemon with closed-loop load.
    Loadgen {
        /// Daemon address (`host:port`).
        addr: String,
        /// Closed-loop client workers submitting concurrently.
        concurrency: usize,
        /// How long to keep submitting before draining in-flight jobs.
        duration_secs: u64,
        /// Evaluation network id (`A`–`K`) used as the job payload.
        network: char,
        /// Base seed; request `i` is submitted with seed `base + i`.
        seed: u64,
        /// Where to write the benchmark JSON.
        output: PathBuf,
        /// Poll interval for job status in milliseconds.
        poll_ms: u64,
    },
    /// Submit a job to (or drain) a running daemon.
    Submit {
        /// Daemon address (`host:port`).
        addr: String,
        /// Input directory (required unless `--shutdown`).
        input: Option<PathBuf>,
        /// Pipeline parameters sent with the job.
        params: Params,
        /// Poll until the job reaches a terminal state.
        wait: bool,
        /// Fetch the artifacts into this directory (implies `wait`).
        output: Option<PathBuf>,
        /// Poll interval in milliseconds.
        poll_ms: u64,
        /// Ask the daemon to drain and exit instead of submitting.
        shutdown: bool,
        /// Configuration dialect (`None` = auto-detect).
        vendor: Option<Vendor>,
        /// Anonymization strategy sent with the job (default: `confmask`).
        strategy: Strategy,
    },
    /// Print usage.
    Help,
}

/// Observability flags, accepted anywhere on the command line for any
/// subcommand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Diagnostic verbosity: 0 = warnings, 1 (`-v`) = info, 2+ (`-vv`) =
    /// debug. Diagnostics go to stderr; stdout stays machine-readable.
    pub verbosity: u8,
    /// Write a JSON metrics report (span tree + counters + histograms)
    /// here after the command finishes, even on failure.
    pub metrics_out: Option<PathBuf>,
    /// Worker threads for the shared executor (0 = `CONFMASK_THREADS` env
    /// var if set, else available parallelism). Independent of `serve
    /// --workers`, which sizes the daemon's job workers.
    pub threads: usize,
}

/// Argument parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text.
pub const USAGE: &str = "\
confmask — privacy-preserving network configuration sharing

USAGE:
  confmask anonymize --input <dir> --output <dir>
                     [--k-r N] [--k-h N] [--noise P] [--seed N]
                     [--fake-routers N] [--max-retries N]
                     [--stage-deadline-secs S] [--verify-failures K]
                     [--mode confmask|strawman1|strawman2] [--pii]
                     [--vendor auto|ios|junos-set|eos]
                     [--strategy confmask|nethide|netcloak]
  confmask failures  [--input <dir>] [--k N] [--verify-failures K]
                     [--k2-sample N] [--seed N] [--k-r N] [--k-h N]
                     [--fake-routers N] [--max-retries N]
                     [--stage-deadline-secs S] [--cold-sim]
                     [--vendor auto|ios|junos-set|eos]
                     [--strategy confmask|nethide|netcloak]
  confmask simulate  --input <dir> [--trace <src> <dst>]
  confmask inspect   --input <dir>
  confmask generate  --network <A..K> --output <dir>
                     [--vendor ios|junos-set|eos]   (alias: netgen)
  confmask obs-report <metrics.json | -> [--chrome-trace]
  confmask serve     [--addr H:P] [--workers N] [--queue-cap N]
                     [--job-timeout-secs S] [--state-dir <dir>]
                     [--requeue-budget N]
  confmask loadgen   [--addr H:P] [--concurrency N]
                     [--duration-secs S] [--network <A..K>]
                     [--seed N] [--output <bench.json>] [--poll-ms N]
  confmask submit    [--addr H:P] --input <dir> [--wait]
                     [--output <dir>] [--poll-ms N]
                     [--seed N] [--k-r N] [--k-h N] [--noise P]
                     [--fake-routers N] [--max-retries N]
                     [--stage-deadline-secs S] [--mode ...]
                     [--vendor auto|ios|junos-set|eos]
                     [--strategy confmask|nethide|netcloak]
  confmask submit    [--addr H:P] --shutdown
  confmask help

Directories contain routers/*.cfg and hosts/*.cfg, in any supported
configuration dialect: Cisco IOS (`ios`, the canonical default),
Juniper flat set-statements (`junos-set`), or Arista EOS (`eos`).
`--vendor auto` (the default) sniffs the dialect per bundle; outputs
are written in the same dialect the input arrived in, and `generate
--vendor` emits any evaluation network in any dialect.

`--strategy` selects the anonymization algorithm: `confmask` (the
default) keeps every real forwarding path bit-identical; `nethide`
shares only an obfuscated topology (paths may shift to defaults);
`netcloak` grows the topology with cloak routers whose generated
configs keep all real host-pair routes intact. `anonymize`,
`failures --verify-failures`, and `submit` all accept it; the daemon
echoes the strategy in job status and artifact listings.

`failures` sweeps the
input network itself, or — with --verify-failures — anonymizes it first
and checks that original and anonymized degrade identically; it uses the
bundled university network when --input is omitted. Sweeps reuse the
converged baseline and recompute only what each fault touched (results
are byte-identical to cold simulation); --cold-sim fully re-simulates
every scenario instead.

`serve` runs the anonymization-as-a-service daemon (default address
127.0.0.1:7077): POST /v1/jobs, GET /v1/jobs/{id}[/artifacts],
GET /healthz, GET /metrics (Prometheus), GET /metrics-json, and
POST /v1/shutdown for a graceful drain. With --state-dir every job
transition is journaled to a write-ahead log before it is acknowledged:
after a crash or kill the daemon replays the log, keeps finished jobs
(artifacts included), and re-runs interrupted ones with backoff — at
most --requeue-budget times (default 3) before they are failed.
`submit` is the matching client; `--output` fetches the anonymized
configs once the job finishes, and polling retries transparently
through a daemon restart.
`obs-report -` reads the JSON report from stdin, so
`curl .../metrics-json | confmask obs-report -` works; `--chrome-trace`
converts the report's span tree to Chrome trace-event JSON for Perfetto
or chrome://tracing instead of rendering it.
`loadgen` drives a running daemon with closed-loop workers (each
submits a job, polls it to a terminal state, then submits the next) for
--duration-secs, then drains in-flight jobs and writes throughput,
latency percentiles (p50/p90/p99), and the 429 rate to --output
(default BENCH_serve.json). Accounting is lossless by construction:
submitted == done + degraded + failed + rejected_429.

Observability (any subcommand):
  -v / -vv             info / debug diagnostics on stderr
  --metrics-out <path> write a JSON metrics report (span tree, counters,
                       histograms) after the command, even on failure;
                       render it with `confmask obs-report`
  --threads <N>        worker threads for parallel simulation, sweeps,
                       and mining (default: CONFMASK_THREADS env var if
                       set, else available parallelism; results are
                       identical at any thread count). Independent of
                       `serve --workers`, which sizes job concurrency

Exit codes: 0 success, 1 fatal error, 2 usage error, 3 anonymization
retries exhausted, 4 equivalence-under-failure violation.";

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, ArgError> {
    args.next()
        .ok_or_else(|| ArgError(format!("{flag} requires a value")))
}

fn parse_value<'a, T: std::str::FromStr>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
    expects: &str,
) -> Result<T, ArgError> {
    take_value(args, flag)?
        .parse()
        .map_err(|_| ArgError(format!("{flag} expects {expects}")))
}

/// Parses a `--vendor` value: `auto` means sniff the input.
fn vendor_value<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Option<Vendor>, ArgError> {
    match take_value(it, "--vendor")? {
        "auto" => Ok(None),
        other => other.parse().map(Some).map_err(ArgError),
    }
}

/// Parses a `--strategy` value (`confmask`, `nethide`, or `netcloak`).
fn strategy_value<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<Strategy, ArgError> {
    take_value(it, "--strategy")?.parse().map_err(ArgError)
}

/// Handles the [`Params`]-tweaking flags shared by `anonymize` and
/// `failures`. Returns `Ok(true)` when `flag` was one of them.
fn params_flag<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
    params: &mut Params,
) -> Result<bool, ArgError> {
    match flag {
        "--k-r" => params.k_r = parse_value(it, flag, "an integer")?,
        "--k-h" => params.k_h = parse_value(it, flag, "an integer")?,
        "--noise" => params.noise_p = parse_value(it, flag, "a float")?,
        "--seed" => params.seed = parse_value(it, flag, "an integer")?,
        "--fake-routers" => params.fake_routers = parse_value(it, flag, "an integer")?,
        "--max-retries" => params.max_retries = parse_value(it, flag, "an integer")?,
        "--stage-deadline-secs" => {
            let secs: u64 = parse_value(it, flag, "a number of seconds")?;
            params.stage_deadline = Some(std::time::Duration::from_secs(secs));
        }
        "--mode" => {
            params.mode = match take_value(it, flag)? {
                "confmask" => EquivalenceMode::ConfMask,
                "strawman1" => EquivalenceMode::Strawman1,
                "strawman2" => EquivalenceMode::Strawman2,
                other => return Err(ArgError(format!("unknown mode '{other}'"))),
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses `argv[1..]` into the command plus the cross-cutting
/// observability options ([`ObsOptions`] flags are accepted anywhere).
pub fn parse(argv: &[String]) -> Result<(Command, ObsOptions), ArgError> {
    let mut obs = ObsOptions::default();
    let mut rest: Vec<&str> = Vec::with_capacity(argv.len());
    let mut it0 = argv.iter().map(String::as_str);
    while let Some(arg) = it0.next() {
        match arg {
            "-v" | "--verbose" => obs.verbosity = obs.verbosity.saturating_add(1),
            "-vv" => obs.verbosity = obs.verbosity.saturating_add(2),
            "--metrics-out" => {
                obs.metrics_out = Some(PathBuf::from(take_value(&mut it0, arg)?));
            }
            "--threads" => {
                obs.threads = parse_value(&mut it0, arg, "an integer")?;
            }
            other => rest.push(other),
        }
    }
    Ok((parse_command(&rest)?, obs))
}

/// Parses the non-observability arguments.
fn parse_command(argv: &[&str]) -> Result<Command, ArgError> {
    let mut it = argv.iter().copied();
    let sub = it.next().unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "anonymize" => {
            let mut input = None;
            let mut output = None;
            let mut params = Params::default();
            let mut pii = false;
            let mut verify_failures = None;
            let mut vendor = None;
            let mut strategy = Strategy::ConfMask;
            while let Some(flag) = it.next() {
                if params_flag(flag, &mut it, &mut params)? {
                    continue;
                }
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--output" => output = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--pii" => pii = true,
                    "--verify-failures" => {
                        verify_failures = Some(parse_value(&mut it, flag, "an integer")?)
                    }
                    "--vendor" => vendor = vendor_value(&mut it)?,
                    "--strategy" => strategy = strategy_value(&mut it)?,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Anonymize {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
                output: output.ok_or_else(|| ArgError("--output is required".into()))?,
                params,
                pii,
                verify_failures,
                vendor,
                strategy,
            })
        }
        "failures" => {
            let mut input = None;
            let mut params = Params::default();
            let mut k = 1;
            let mut verify = None;
            let mut k2_sample = 5;
            let mut cold_sim = false;
            let mut vendor = None;
            let mut strategy = Strategy::ConfMask;
            while let Some(flag) = it.next() {
                if params_flag(flag, &mut it, &mut params)? {
                    continue;
                }
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--k" => k = parse_value(&mut it, flag, "an integer")?,
                    "--verify-failures" => {
                        verify = Some(parse_value(&mut it, flag, "an integer")?)
                    }
                    "--k2-sample" => k2_sample = parse_value(&mut it, flag, "an integer")?,
                    "--cold-sim" => cold_sim = true,
                    "--vendor" => vendor = vendor_value(&mut it)?,
                    "--strategy" => strategy = strategy_value(&mut it)?,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Failures {
                input,
                params,
                k,
                verify,
                k2_sample,
                cold_sim,
                vendor,
                strategy,
            })
        }
        "simulate" => {
            let mut input = None;
            let mut trace = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--trace" => {
                        let src = take_value(&mut it, flag)?.to_string();
                        let dst = take_value(&mut it, flag)?.to_string();
                        trace = Some((src, dst));
                    }
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Simulate {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
                trace,
            })
        }
        "inspect" => {
            let mut input = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Inspect {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
            })
        }
        "generate" | "netgen" => {
            let mut network = None;
            let mut output = None;
            let mut vendor = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--network" => {
                        let v = take_value(&mut it, flag)?;
                        let c = v.chars().next().unwrap_or(' ').to_ascii_uppercase();
                        if !('A'..='K').contains(&c) || v.len() != 1 {
                            return Err(ArgError(format!("--network expects A..K, got '{v}'")));
                        }
                        network = Some(c);
                    }
                    "--output" => output = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--vendor" => vendor = vendor_value(&mut it)?,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Generate {
                network: network.ok_or_else(|| ArgError("--network is required".into()))?,
                output: output.ok_or_else(|| ArgError("--output is required".into()))?,
                vendor,
            })
        }
        "obs-report" => {
            let mut input = None;
            let mut chrome_trace = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--chrome-trace" => chrome_trace = true,
                    // A bare path (or `-` for stdin) is accepted positionally
                    // so `curl … | confmask obs-report -` works.
                    path if !path.starts_with("--") => input = Some(PathBuf::from(path)),
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::ObsReport {
                input: input
                    .ok_or_else(|| ArgError("obs-report needs a file path or '-'".into()))?,
                chrome_trace,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut workers = 0usize;
            let mut queue_cap = 64usize;
            let mut job_timeout_secs = None;
            let mut state_dir = None;
            let mut requeue_budget = 3u32;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => addr = take_value(&mut it, flag)?.to_string(),
                    "--workers" => workers = parse_value(&mut it, flag, "an integer")?,
                    "--queue-cap" => {
                        queue_cap = parse_value(&mut it, flag, "an integer")?;
                        if queue_cap == 0 {
                            return Err(ArgError("--queue-cap must be at least 1".into()));
                        }
                    }
                    "--job-timeout-secs" => {
                        job_timeout_secs =
                            Some(parse_value(&mut it, flag, "a number of seconds")?)
                    }
                    "--state-dir" => {
                        state_dir = Some(PathBuf::from(take_value(&mut it, flag)?))
                    }
                    "--requeue-budget" => {
                        requeue_budget = parse_value(&mut it, flag, "an integer")?
                    }
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue_cap,
                job_timeout_secs,
                state_dir,
                requeue_budget,
            })
        }
        "loadgen" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut concurrency = 4usize;
            let mut duration_secs = 10u64;
            let mut network = 'A';
            let mut seed = 0u64;
            let mut output = PathBuf::from("BENCH_serve.json");
            let mut poll_ms = 20u64;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => addr = take_value(&mut it, flag)?.to_string(),
                    "--concurrency" => {
                        concurrency = parse_value(&mut it, flag, "an integer")?;
                        if concurrency == 0 {
                            return Err(ArgError("--concurrency must be at least 1".into()));
                        }
                    }
                    "--duration-secs" => {
                        duration_secs = parse_value(&mut it, flag, "a number of seconds")?
                    }
                    "--network" => {
                        let v = take_value(&mut it, flag)?;
                        let c = v.chars().next().unwrap_or(' ').to_ascii_uppercase();
                        if !('A'..='K').contains(&c) || v.len() != 1 {
                            return Err(ArgError(format!("--network expects A..K, got '{v}'")));
                        }
                        network = c;
                    }
                    "--seed" => seed = parse_value(&mut it, flag, "an integer")?,
                    "--output" => output = PathBuf::from(take_value(&mut it, flag)?),
                    "--poll-ms" => poll_ms = parse_value(&mut it, flag, "an integer")?,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Loadgen {
                addr,
                concurrency,
                duration_secs,
                network,
                seed,
                output,
                poll_ms,
            })
        }
        "submit" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut input = None;
            let mut params = Params::default();
            let mut wait = false;
            let mut output = None;
            let mut poll_ms = 200;
            let mut shutdown = false;
            let mut vendor = None;
            let mut strategy = Strategy::ConfMask;
            while let Some(flag) = it.next() {
                if params_flag(flag, &mut it, &mut params)? {
                    continue;
                }
                match flag {
                    "--addr" => addr = take_value(&mut it, flag)?.to_string(),
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--wait" => wait = true,
                    "--output" => output = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--poll-ms" => poll_ms = parse_value(&mut it, flag, "an integer")?,
                    "--shutdown" => shutdown = true,
                    "--vendor" => vendor = vendor_value(&mut it)?,
                    "--strategy" => strategy = strategy_value(&mut it)?,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            if input.is_none() && !shutdown {
                return Err(ArgError("--input is required (unless --shutdown)".into()));
            }
            Ok(Command::Submit {
                addr,
                input,
                params,
                // Fetching artifacts requires the job to be finished.
                wait: wait || output.is_some(),
                output,
                poll_ms,
                shutdown,
                vendor,
                strategy,
            })
        }
        other => Err(ArgError(format!("unknown subcommand '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    /// Parse, discarding the observability options.
    fn parse_cmd(argv: &[String]) -> Result<Command, ArgError> {
        parse(argv).map(|(cmd, _)| cmd)
    }

    #[test]
    fn parses_anonymize_with_all_flags() {
        let cmd = parse_cmd(&argv(
            "anonymize --input in --output out --k-r 10 --k-h 4 --noise 0.2 --seed 7 --fake-routers 3 --max-retries 5 --stage-deadline-secs 30 --mode strawman1 --pii --verify-failures 1",
        ))
        .unwrap();
        match cmd {
            Command::Anonymize {
                input,
                output,
                params,
                pii,
                verify_failures,
                ..
            } => {
                assert_eq!(input, PathBuf::from("in"));
                assert_eq!(output, PathBuf::from("out"));
                assert_eq!((params.k_r, params.k_h, params.seed), (10, 4, 7));
                assert_eq!(params.fake_routers, 3);
                assert!((params.noise_p - 0.2).abs() < 1e-12);
                assert_eq!(params.max_retries, 5);
                assert_eq!(params.stage_deadline, Some(std::time::Duration::from_secs(30)));
                assert_eq!(params.mode, EquivalenceMode::Strawman1);
                assert!(pii);
                assert_eq!(verify_failures, Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_failures_with_defaults_and_flags() {
        match parse_cmd(&argv("failures")).unwrap() {
            Command::Failures {
                input,
                k,
                verify,
                k2_sample,
                cold_sim,
                ..
            } => {
                assert_eq!(input, None);
                assert_eq!((k, verify, k2_sample), (1, None, 5));
                assert!(!cold_sim, "incremental engine is the default");
            }
            other => panic!("{other:?}"),
        }
        match parse_cmd(&argv(
            "failures --input net --verify-failures 2 --k2-sample 3 --seed 9 --max-retries 0 --cold-sim",
        ))
        .unwrap()
        {
            Command::Failures {
                input,
                params,
                verify,
                k2_sample,
                cold_sim,
                ..
            } => {
                assert_eq!(input, Some(PathBuf::from("net")));
                assert_eq!(verify, Some(2));
                assert_eq!(k2_sample, 3);
                assert_eq!(params.seed, 9);
                assert_eq!(params.max_retries, 0);
                assert!(cold_sim);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cmd(&argv("failures --verify-failures")).is_err());
        assert!(parse_cmd(&argv("failures --k nope")).is_err());
    }

    #[test]
    fn anonymize_requires_io_flags() {
        assert!(parse_cmd(&argv("anonymize --input in")).is_err());
        assert!(parse_cmd(&argv("anonymize --output out")).is_err());
    }

    #[test]
    fn parses_simulate_with_trace() {
        let cmd = parse_cmd(&argv("simulate --input net --trace h1 h2")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                input: PathBuf::from("net"),
                trace: Some(("h1".into(), "h2".into())),
            }
        );
    }

    #[test]
    fn parses_generate_and_validates_network() {
        assert!(matches!(
            parse_cmd(&argv("generate --network G --output o")).unwrap(),
            Command::Generate { network: 'G', .. }
        ));
        // The extended suite (I–K: FatTree16 and the scaling WANs) parses.
        assert!(matches!(
            parse_cmd(&argv("generate --network K --output o")).unwrap(),
            Command::Generate { network: 'K', .. }
        ));
        assert!(matches!(
            parse_cmd(&argv("loadgen --network i")).unwrap(),
            Command::Loadgen { network: 'I', .. }
        ));
        assert!(parse_cmd(&argv("generate --network X --output o")).is_err());
        assert!(parse_cmd(&argv("generate --network AB --output o")).is_err());
    }

    #[test]
    fn netgen_is_an_alias_for_generate() {
        assert!(matches!(
            parse_cmd(&argv("netgen --network D --output o --vendor junos-set")).unwrap(),
            Command::Generate {
                network: 'D',
                vendor: Some(Vendor::JunosSet),
                ..
            }
        ));
    }

    #[test]
    fn vendor_flag_parses_on_every_command_that_takes_it() {
        assert!(matches!(
            parse_cmd(&argv("anonymize --input i --output o --vendor eos")).unwrap(),
            Command::Anonymize {
                vendor: Some(Vendor::Eos),
                ..
            }
        ));
        // `auto` is the default and means "sniff the input".
        assert!(matches!(
            parse_cmd(&argv("anonymize --input i --output o --vendor auto")).unwrap(),
            Command::Anonymize { vendor: None, .. }
        ));
        assert!(matches!(
            parse_cmd(&argv("anonymize --input i --output o")).unwrap(),
            Command::Anonymize { vendor: None, .. }
        ));
        assert!(matches!(
            parse_cmd(&argv("failures --vendor ios")).unwrap(),
            Command::Failures {
                vendor: Some(Vendor::Ios),
                ..
            }
        ));
        assert!(matches!(
            parse_cmd(&argv("submit --input i --vendor junos-set")).unwrap(),
            Command::Submit {
                vendor: Some(Vendor::JunosSet),
                ..
            }
        ));
        // Unknown dialects are usage errors that name the expected set.
        let e = parse_cmd(&argv("submit --input i --vendor nxos")).unwrap_err();
        assert!(e.0.contains("unknown vendor 'nxos'"), "{}", e.0);
        assert!(parse_cmd(&argv("submit --input i --vendor")).is_err());
    }

    #[test]
    fn strategy_flag_parses_on_every_command_that_takes_it() {
        assert!(matches!(
            parse_cmd(&argv("anonymize --input i --output o --strategy netcloak")).unwrap(),
            Command::Anonymize {
                strategy: Strategy::NetCloak,
                ..
            }
        ));
        // ConfMask is the default.
        assert!(matches!(
            parse_cmd(&argv("anonymize --input i --output o")).unwrap(),
            Command::Anonymize {
                strategy: Strategy::ConfMask,
                ..
            }
        ));
        assert!(matches!(
            parse_cmd(&argv("failures --strategy nethide")).unwrap(),
            Command::Failures {
                strategy: Strategy::NetHide,
                ..
            }
        ));
        assert!(matches!(
            parse_cmd(&argv("submit --input i --strategy netcloak --vendor eos")).unwrap(),
            Command::Submit {
                strategy: Strategy::NetCloak,
                vendor: Some(Vendor::Eos),
                ..
            }
        ));
        // Unknown strategies are usage errors naming the expected set.
        let e = parse_cmd(&argv("submit --input i --strategy netmask")).unwrap_err();
        assert!(e.0.contains("unknown strategy 'netmask'"), "{}", e.0);
        assert!(parse_cmd(&argv("anonymize --input i --output o --strategy")).is_err());
    }

    #[test]
    fn obs_flags_are_accepted_anywhere() {
        let (cmd, obs) = parse(&argv("-v anonymize --input in --metrics-out m.json --output out")).unwrap();
        assert!(matches!(cmd, Command::Anonymize { .. }));
        assert_eq!(obs.verbosity, 1);
        assert_eq!(obs.metrics_out, Some(PathBuf::from("m.json")));

        let (_, obs) = parse(&argv("inspect --input in -vv")).unwrap();
        assert_eq!(obs.verbosity, 2);
        let (_, obs) = parse(&argv("inspect --input in -v -v")).unwrap();
        assert_eq!(obs.verbosity, 2);
        let (_, obs) = parse(&argv("inspect --input in")).unwrap();
        assert_eq!(obs, ObsOptions::default());

        assert!(parse(&argv("inspect --input in --metrics-out")).is_err());
    }

    #[test]
    fn threads_flag_is_accepted_anywhere() {
        let (_, obs) = parse(&argv("--threads 4 inspect --input in")).unwrap();
        assert_eq!(obs.threads, 4);
        let (_, obs) = parse(&argv("failures --threads 2")).unwrap();
        assert_eq!(obs.threads, 2);
        let (_, obs) = parse(&argv("inspect --input in")).unwrap();
        assert_eq!(obs.threads, 0, "default is auto");
        assert!(parse(&argv("inspect --input in --threads nope")).is_err());
        assert!(parse(&argv("inspect --input in --threads")).is_err());
    }

    #[test]
    fn parses_obs_report() {
        assert_eq!(
            parse_cmd(&argv("obs-report --input metrics.json")).unwrap(),
            Command::ObsReport {
                input: PathBuf::from("metrics.json"),
                chrome_trace: false,
            }
        );
        // Positional form, including `-` for stdin.
        assert_eq!(
            parse_cmd(&argv("obs-report metrics.json")).unwrap(),
            Command::ObsReport {
                input: PathBuf::from("metrics.json"),
                chrome_trace: false,
            }
        );
        assert_eq!(
            parse_cmd(&argv("obs-report - --chrome-trace")).unwrap(),
            Command::ObsReport {
                input: PathBuf::from("-"),
                chrome_trace: true,
            }
        );
        assert!(parse_cmd(&argv("obs-report")).is_err());
        assert!(parse_cmd(&argv("obs-report --frobnicate")).is_err());
    }

    #[test]
    fn parses_loadgen_with_defaults_and_flags() {
        match parse_cmd(&argv("loadgen")).unwrap() {
            Command::Loadgen {
                addr,
                concurrency,
                duration_secs,
                network,
                seed,
                output,
                poll_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:7077");
                assert_eq!((concurrency, duration_secs), (4, 10));
                assert_eq!((network, seed), ('A', 0));
                assert_eq!(output, PathBuf::from("BENCH_serve.json"));
                assert_eq!(poll_ms, 20);
            }
            other => panic!("{other:?}"),
        }
        match parse_cmd(&argv(
            "loadgen --addr 127.0.0.1:9000 --concurrency 8 --duration-secs 3 \
             --network c --seed 42 --output out.json --poll-ms 5",
        ))
        .unwrap()
        {
            Command::Loadgen {
                addr,
                concurrency,
                duration_secs,
                network,
                seed,
                output,
                poll_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:9000");
                assert_eq!((concurrency, duration_secs), (8, 3));
                assert_eq!((network, seed), ('C', 42), "network id is upcased");
                assert_eq!(output, PathBuf::from("out.json"));
                assert_eq!(poll_ms, 5);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cmd(&argv("loadgen --concurrency 0")).is_err());
        assert!(parse_cmd(&argv("loadgen --network X")).is_err());
        assert!(parse_cmd(&argv("loadgen --duration-secs nope")).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        match parse_cmd(&argv("serve")).unwrap() {
            Command::Serve {
                addr,
                workers,
                queue_cap,
                job_timeout_secs,
                state_dir,
                requeue_budget,
            } => {
                assert_eq!(addr, "127.0.0.1:7077");
                assert_eq!((workers, queue_cap, job_timeout_secs), (0, 64, None));
                assert_eq!(state_dir, None, "ephemeral store by default");
                assert_eq!(requeue_budget, 3);
            }
            other => panic!("{other:?}"),
        }
        match parse_cmd(&argv(
            "serve --addr 0.0.0.0:8080 --workers 4 --queue-cap 8 --job-timeout-secs 30 \
             --state-dir /var/lib/confmask --requeue-budget 5",
        ))
        .unwrap()
        {
            Command::Serve {
                addr,
                workers,
                queue_cap,
                job_timeout_secs,
                state_dir,
                requeue_budget,
            } => {
                assert_eq!(addr, "0.0.0.0:8080");
                assert_eq!((workers, queue_cap, job_timeout_secs), (4, 8, Some(30)));
                assert_eq!(state_dir, Some(PathBuf::from("/var/lib/confmask")));
                assert_eq!(requeue_budget, 5);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cmd(&argv("serve --queue-cap 0")).is_err());
        assert!(parse_cmd(&argv("serve --workers nope")).is_err());
        assert!(parse_cmd(&argv("serve --state-dir")).is_err());
        assert!(parse_cmd(&argv("serve --requeue-budget nope")).is_err());
    }

    #[test]
    fn parses_submit_variants() {
        match parse_cmd(&argv("submit --input net --seed 5")).unwrap() {
            Command::Submit {
                addr,
                input,
                params,
                wait,
                output,
                poll_ms,
                shutdown,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:7077");
                assert_eq!(input, Some(PathBuf::from("net")));
                assert_eq!(params.seed, 5);
                assert!(!wait && !shutdown);
                assert_eq!((output, poll_ms), (None, 200));
            }
            other => panic!("{other:?}"),
        }
        // --output implies --wait.
        match parse_cmd(&argv("submit --input net --output anon --poll-ms 50")).unwrap() {
            Command::Submit { wait, output, poll_ms, .. } => {
                assert!(wait);
                assert_eq!(output, Some(PathBuf::from("anon")));
                assert_eq!(poll_ms, 50);
            }
            other => panic!("{other:?}"),
        }
        // --shutdown needs no input.
        match parse_cmd(&argv("submit --addr 127.0.0.1:9999 --shutdown")).unwrap() {
            Command::Submit { addr, input, shutdown, .. } => {
                assert_eq!(addr, "127.0.0.1:9999");
                assert_eq!(input, None);
                assert!(shutdown);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cmd(&argv("submit")).is_err());
        assert!(parse_cmd(&argv("submit --wait")).is_err());
    }

    #[test]
    fn unknown_flags_and_subcommands_error() {
        assert!(parse_cmd(&argv("anonymize --frobnicate")).is_err());
        assert!(parse_cmd(&argv("explode")).is_err());
        assert_eq!(parse_cmd(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_cmd(&[]).unwrap(), Command::Help);
    }
}
