//! Hand-rolled argument parsing (no external dependencies).

use confmask::{EquivalenceMode, Params};
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Anonymize a configuration directory.
    Anonymize {
        /// Input directory.
        input: PathBuf,
        /// Output directory (created if missing).
        output: PathBuf,
        /// Pipeline parameters.
        params: Params,
        /// Also run the PII add-on on the result.
        pii: bool,
    },
    /// Simulate a configuration directory and report the data plane.
    Simulate {
        /// Input directory.
        input: PathBuf,
        /// Optional single traceroute (src host, dst host).
        trace: Option<(String, String)>,
    },
    /// Summarize a configuration directory (topology + metrics).
    Inspect {
        /// Input directory.
        input: PathBuf,
    },
    /// Write one of the evaluation networks to disk.
    Generate {
        /// Table 2 network id (`A`–`H`).
        network: char,
        /// Output directory.
        output: PathBuf,
    },
    /// Print usage.
    Help,
}

/// Argument parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Usage text.
pub const USAGE: &str = "\
confmask — privacy-preserving network configuration sharing

USAGE:
  confmask anonymize --input <dir> --output <dir>
                     [--k-r N] [--k-h N] [--noise P] [--seed N]
                     [--fake-routers N]
                     [--mode confmask|strawman1|strawman2] [--pii]
  confmask simulate  --input <dir> [--trace <src> <dst>]
  confmask inspect   --input <dir>
  confmask generate  --network <A..H> --output <dir>
  confmask help

Directories contain routers/*.cfg and hosts/*.cfg.";

fn take_value<'a>(
    args: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<&'a str, ArgError> {
    args.next()
        .ok_or_else(|| ArgError(format!("{flag} requires a value")))
}

/// Parses `argv[1..]`.
pub fn parse(argv: &[String]) -> Result<Command, ArgError> {
    let mut it = argv.iter().map(String::as_str);
    let sub = it.next().unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "anonymize" => {
            let mut input = None;
            let mut output = None;
            let mut params = Params::default();
            let mut pii = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--output" => output = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--k-r" => {
                        params.k_r = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ArgError("--k-r expects an integer".into()))?
                    }
                    "--k-h" => {
                        params.k_h = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ArgError("--k-h expects an integer".into()))?
                    }
                    "--noise" => {
                        params.noise_p = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ArgError("--noise expects a float".into()))?
                    }
                    "--seed" => {
                        params.seed = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ArgError("--seed expects an integer".into()))?
                    }
                    "--fake-routers" => {
                        params.fake_routers = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| ArgError("--fake-routers expects an integer".into()))?
                    }
                    "--mode" => {
                        params.mode = match take_value(&mut it, flag)? {
                            "confmask" => EquivalenceMode::ConfMask,
                            "strawman1" => EquivalenceMode::Strawman1,
                            "strawman2" => EquivalenceMode::Strawman2,
                            other => {
                                return Err(ArgError(format!("unknown mode '{other}'")))
                            }
                        }
                    }
                    "--pii" => pii = true,
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Anonymize {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
                output: output.ok_or_else(|| ArgError("--output is required".into()))?,
                params,
                pii,
            })
        }
        "simulate" => {
            let mut input = None;
            let mut trace = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    "--trace" => {
                        let src = take_value(&mut it, flag)?.to_string();
                        let dst = take_value(&mut it, flag)?.to_string();
                        trace = Some((src, dst));
                    }
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Simulate {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
                trace,
            })
        }
        "inspect" => {
            let mut input = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--input" => input = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Inspect {
                input: input.ok_or_else(|| ArgError("--input is required".into()))?,
            })
        }
        "generate" => {
            let mut network = None;
            let mut output = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--network" => {
                        let v = take_value(&mut it, flag)?;
                        let c = v.chars().next().unwrap_or(' ').to_ascii_uppercase();
                        if !('A'..='H').contains(&c) || v.len() != 1 {
                            return Err(ArgError(format!("--network expects A..H, got '{v}'")));
                        }
                        network = Some(c);
                    }
                    "--output" => output = Some(PathBuf::from(take_value(&mut it, flag)?)),
                    other => return Err(ArgError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Generate {
                network: network.ok_or_else(|| ArgError("--network is required".into()))?,
                output: output.ok_or_else(|| ArgError("--output is required".into()))?,
            })
        }
        other => Err(ArgError(format!("unknown subcommand '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_anonymize_with_all_flags() {
        let cmd = parse(&argv(
            "anonymize --input in --output out --k-r 10 --k-h 4 --noise 0.2 --seed 7 --fake-routers 3 --mode strawman1 --pii",
        ))
        .unwrap();
        match cmd {
            Command::Anonymize {
                input,
                output,
                params,
                pii,
            } => {
                assert_eq!(input, PathBuf::from("in"));
                assert_eq!(output, PathBuf::from("out"));
                assert_eq!((params.k_r, params.k_h, params.seed), (10, 4, 7));
                assert_eq!(params.fake_routers, 3);
                assert!((params.noise_p - 0.2).abs() < 1e-12);
                assert_eq!(params.mode, EquivalenceMode::Strawman1);
                assert!(pii);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn anonymize_requires_io_flags() {
        assert!(parse(&argv("anonymize --input in")).is_err());
        assert!(parse(&argv("anonymize --output out")).is_err());
    }

    #[test]
    fn parses_simulate_with_trace() {
        let cmd = parse(&argv("simulate --input net --trace h1 h2")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                input: PathBuf::from("net"),
                trace: Some(("h1".into(), "h2".into())),
            }
        );
    }

    #[test]
    fn parses_generate_and_validates_network() {
        assert!(matches!(
            parse(&argv("generate --network G --output o")).unwrap(),
            Command::Generate { network: 'G', .. }
        ));
        assert!(parse(&argv("generate --network X --output o")).is_err());
        assert!(parse(&argv("generate --network AB --output o")).is_err());
    }

    #[test]
    fn unknown_flags_and_subcommands_error() {
        assert!(parse(&argv("anonymize --frobnicate")).is_err());
        assert!(parse(&argv("explode")).is_err());
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }
}
