//! Subcommand implementations. Each returns its textual report so the
//! logic is testable without capturing stdout.

use crate::args::Command;
use crate::io::{load_dir, store_dir};
use confmask::pii::{apply_pii, PiiOptions};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::{clustering_coefficient, min_same_degree};
use std::fmt::Write as _;

/// Runs a parsed command, returning the report to print.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Anonymize {
            input,
            output,
            params,
            pii,
        } => {
            let net = load_dir(&input).map_err(|e| e.to_string())?;
            let result = confmask::anonymize(&net, &params).map_err(|e| e.to_string())?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "anonymized {} routers / {} hosts (k_R={}, k_H={}, seed={})",
                net.routers.len(),
                net.hosts.len(),
                params.k_r,
                params.k_h,
                params.seed
            );
            let _ = writeln!(
                report,
                "  fake links: {}, fake hosts: {}, fake routers: {}, filters: {} lines",
                result.fake_links.len(),
                result.route_anon.fake_hosts.len(),
                result.scale.fake_routers.len(),
                result.ledger.filter_lines
            );
            let _ = writeln!(
                report,
                "  functional equivalence: {} | U_C = {:.3} | N_r avg = {:.2}",
                result.functionally_equivalent(),
                result.config_utility(),
                result.route_anonymity().avg()
            );
            let final_configs = if pii {
                let (shared, pii_report) = apply_pii(&result.configs, &PiiOptions::default());
                let _ = writeln!(
                    report,
                    "  PII add-on: {} addresses rewritten, {} devices renamed, {} secrets scrubbed",
                    pii_report.addresses_rewritten,
                    pii_report.devices_renamed,
                    pii_report.secrets_scrubbed
                );
                shared
            } else {
                result.configs
            };
            store_dir(&final_configs, &output).map_err(|e| e.to_string())?;
            let _ = writeln!(report, "wrote {}", output.display());
            Ok(report)
        }
        Command::Simulate { input, trace } => {
            let net = load_dir(&input).map_err(|e| e.to_string())?;
            let sim = confmask::simulate(&net).map_err(|e| e.to_string())?;
            let mut report = String::new();
            match trace {
                Some((src, dst)) => {
                    let ps = sim
                        .dataplane
                        .between(&src, &dst)
                        .ok_or_else(|| format!("no such host pair {src} -> {dst}"))?;
                    let _ = writeln!(report, "traceroute {src} -> {dst}:");
                    for p in &ps.paths {
                        let _ = writeln!(report, "  {}", p.join(" -> "));
                    }
                    if ps.blackhole {
                        let _ = writeln!(report, "  (some branch black-holes)");
                    }
                    if ps.has_loop {
                        let _ = writeln!(report, "  (some branch loops)");
                    }
                }
                None => {
                    let total = sim.dataplane.len();
                    let clean = sim.dataplane.pairs().filter(|(_, ps)| ps.clean()).count();
                    let blackholes =
                        sim.dataplane.pairs().filter(|(_, ps)| ps.blackhole).count();
                    let loops = sim.dataplane.pairs().filter(|(_, ps)| ps.has_loop).count();
                    let _ = writeln!(
                        report,
                        "data plane: {total} host pairs — {clean} clean, {blackholes} with black holes, {loops} with loops"
                    );
                }
            }
            Ok(report)
        }
        Command::Inspect { input } => {
            let net = load_dir(&input).map_err(|e| e.to_string())?;
            let topo = extract_topology(&net);
            let errors = confmask_config::validate(&net);
            let mut report = String::new();
            let _ = writeln!(
                report,
                "routers: {}  hosts: {}  links: {}  config lines: {}",
                net.routers.len(),
                net.hosts.len(),
                topo.edge_count(),
                net.total_lines()
            );
            let _ = writeln!(
                report,
                "k_d (min same-degree): {}  clustering coefficient: {:.3}",
                min_same_degree(&topo),
                clustering_coefficient(&topo)
            );
            if errors.is_empty() {
                let _ = writeln!(report, "validation: clean");
            } else {
                let _ = writeln!(report, "validation: {} finding(s)", errors.len());
                for e in errors.iter().take(10) {
                    let _ = writeln!(report, "  - {e}");
                }
            }
            Ok(report)
        }
        Command::Generate { network, output } => {
            let suite = confmask_netgen::full_suite();
            let net = suite
                .iter()
                .find(|n| n.id == network)
                .ok_or_else(|| format!("no evaluation network '{network}'"))?;
            store_dir(&net.configs, &output).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote net {} ({}) to {}\n",
                net.id,
                net.name,
                output.display()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask::Params;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("confmask-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn generate_inspect_anonymize_simulate_workflow() {
        let src = tmp("wf-src");
        let dst = tmp("wf-dst");

        let out = run(Command::Generate {
            network: 'A',
            output: src.clone(),
        })
        .unwrap();
        assert!(out.contains("Enterprise"));

        let out = run(Command::Inspect { input: src.clone() }).unwrap();
        assert!(out.contains("routers: 10"));
        assert!(out.contains("validation: clean"));

        let out = run(Command::Anonymize {
            input: src.clone(),
            output: dst.clone(),
            params: Params::new(4, 2),
            pii: true,
        })
        .unwrap();
        assert!(out.contains("functional equivalence: true"));
        assert!(out.contains("PII add-on"));

        let out = run(Command::Simulate {
            input: dst.clone(),
            trace: None,
        })
        .unwrap();
        assert!(out.contains("0 with black holes"), "{out}");
        assert!(out.contains("0 with loops"), "{out}");

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn simulate_trace_prints_paths() {
        let dir = tmp("trace");
        run(Command::Generate {
            network: 'A',
            output: dir.clone(),
        })
        .unwrap();
        let out = run(Command::Simulate {
            input: dir.clone(),
            trace: Some(("ha0".into(), "ha7".into())),
        })
        .unwrap();
        assert!(out.contains("traceroute ha0 -> ha7"));
        assert!(out.contains(" -> "), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(Command::Inspect {
            input: PathBuf::from("/definitely/not/here"),
        })
        .is_err());
        let dir = tmp("badtrace");
        run(Command::Generate {
            network: 'A',
            output: dir.clone(),
        })
        .unwrap();
        assert!(run(Command::Simulate {
            input: dir.clone(),
            trace: Some(("nope".into(), "also-nope".into())),
        })
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
