//! Subcommand implementations. Each returns its textual report so the
//! logic is testable without capturing stdout.

use crate::args::Command;
use crate::io::{load_dir, load_dir_as, store_dir_as};
use confmask::pii::{apply_pii, PiiOptions};
use confmask::resilience::FailureEquivalenceReport;
use confmask_sim::fault::enumerate_scenarios;
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::{clustering_coefficient, min_same_degree};
use std::fmt::Write as _;

/// Exit code for fatal errors (I/O, bad configs, non-retryable pipeline
/// failures).
pub const EXIT_FATAL: i32 = 1;
/// Exit code for argument errors (used by `main`, reserved here).
pub const EXIT_USAGE: i32 = 2;
/// Exit code when the self-healing pipeline exhausted its retries.
pub const EXIT_RETRIES_EXHAUSTED: i32 = 3;
/// Exit code for an equivalence-under-failure violation.
pub const EXIT_FAILURE_EQUIVALENCE: i32 = 4;

/// A command failure carrying the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdError {
    /// Process exit code (never 0).
    pub code: i32,
    /// User-facing message.
    pub message: String,
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError {
            code: EXIT_FATAL,
            message,
        }
    }
}

/// Maps a configuration-directory I/O failure to its exit code: a file
/// that exists but does not parse is a usage error (exit 2, like a bad
/// flag — the user handed us input we cannot accept, and the message
/// names the offending file), while missing paths and OS failures stay
/// fatal (exit 1).
fn load_err(e: std::io::Error) -> CmdError {
    let code = if e.kind() == std::io::ErrorKind::InvalidData {
        EXIT_USAGE
    } else {
        EXIT_FATAL
    };
    CmdError {
        code,
        message: e.to_string(),
    }
}

/// Maps an anonymization failure to its exit code: exhausted retries get
/// their own code so scripts can distinguish "gave up after healing
/// attempts" from outright fatal errors.
fn anonymize_err(e: confmask::Error) -> CmdError {
    let code = if matches!(e, confmask::Error::RetriesExhausted { .. }) {
        EXIT_RETRIES_EXHAUSTED
    } else {
        EXIT_FATAL
    };
    CmdError {
        code,
        message: e.to_string(),
    }
}

/// Renders the self-healing audit trail when the run needed retries.
fn write_degradation(report: &mut String, d: &confmask::DegradationReport) {
    if !d.healed() {
        return;
    }
    let _ = writeln!(
        report,
        "  self-healing: {} failed attempt(s) before the outcome",
        d.failures()
    );
    for a in &d.attempts {
        let _ = writeln!(
            report,
            "    attempt {} (seed {}, +{} equiv iterations, {:.2?}): {}",
            a.attempt,
            a.seed,
            a.budget_boost,
            a.duration,
            a.error.as_deref().unwrap_or("ok")
        );
    }
}

/// Renders a per-scenario failure-equivalence report.
fn write_failure_report(report: &mut String, fr: &FailureEquivalenceReport) {
    let _ = writeln!(
        report,
        "equivalence under failure: {} real-element + {} fake-element scenario(s)",
        fr.real.len(),
        fr.fake.len()
    );
    for s in &fr.real {
        let verdict = if s.holds() {
            "classes match".to_string()
        } else {
            format!("{} MISMATCH(ES)", s.mismatches.len())
        };
        let worst = s
            .worst
            .map(|w| w.to_string())
            .or_else(|| s.original_error.clone())
            .unwrap_or_else(|| "?".into());
        let _ = writeln!(report, "  {}: worst={worst} — {verdict}", s.scenario);
    }
    for s in &fr.fake {
        let verdict = if s.holds() {
            "inert".to_string()
        } else if let Some(e) = &s.error {
            format!("SIMULATION FAILED: {e}")
        } else {
            format!("CHANGED {} real pair(s)", s.changed_pairs.len())
        };
        let _ = writeln!(report, "  {}: {verdict}", s.scenario);
    }
    let _ = writeln!(
        report,
        "verdict: {}",
        if fr.holds() { "HOLDS" } else { "VIOLATED" }
    );
}

/// Errors out with [`EXIT_FAILURE_EQUIVALENCE`] when the report has
/// violations, folding the rendered report into the message so nothing is
/// lost on the error path.
fn require_holds(report: String, fr: &FailureEquivalenceReport) -> Result<String, CmdError> {
    if fr.holds() {
        return Ok(report);
    }
    let mut message = report;
    for v in fr.violations() {
        let _ = writeln!(message, "violation: {v}");
    }
    Err(CmdError {
        code: EXIT_FAILURE_EQUIVALENCE,
        message,
    })
}

/// Post-anonymization verification for `--verify-failures`. ConfMask
/// results carry the full per-scenario machinery (exact degradation-class
/// equivalence, exit 4 on violation). The other strategies never promise
/// per-scenario equivalence — only reachability on the real host pairs —
/// so for them the guarantee they *do* claim is what gets checked.
fn verify_after_anonymize(
    mut report: String,
    net: &confmask::NetworkConfigs,
    result: &confmask::AnonymizedNetwork,
    k: usize,
    k2_sample: usize,
) -> Result<String, CmdError> {
    match result.confmask.as_deref() {
        Some(detail) => {
            let fr = confmask::verify_failure_equivalence(net, detail, k, k2_sample);
            write_failure_report(&mut report, &fr);
            require_holds(report, &fr)
        }
        None => {
            let ok = result.reachability_preserved();
            let _ = writeln!(
                report,
                "verification ({} strategy): reachability on {} real host pair(s) {}",
                result.strategy,
                result.real_hosts.len() * result.real_hosts.len().saturating_sub(1),
                if ok { "preserved" } else { "VIOLATED" }
            );
            let _ = writeln!(
                report,
                "  (per-scenario failure equivalence is a confmask-only guarantee; \
                 this strategy claims reachability preservation)"
            );
            if ok {
                Ok(report)
            } else {
                Err(CmdError {
                    code: EXIT_FAILURE_EQUIVALENCE,
                    message: report,
                })
            }
        }
    }
}

/// Runs a parsed command, returning the report to print.
pub fn run(cmd: Command) -> Result<String, CmdError> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Anonymize {
            input,
            output,
            params,
            pii,
            verify_failures,
            vendor,
            strategy,
        } => {
            let (net, vendor) = load_dir_as(&input, vendor).map_err(load_err)?;
            confmask_obs::info!(
                "cli.anonymize",
                "anonymizing {} ({} routers, {} hosts, dialect {vendor}) with {strategy}, k_R={}, k_H={}",
                input.display(),
                net.routers.len(),
                net.hosts.len(),
                params.k_r,
                params.k_h
            );
            let result = confmask::anonymizer_for(strategy)
                .anonymize(&net, &params)
                .map_err(anonymize_err)?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "anonymized {} routers / {} hosts ({strategy} strategy, k_R={}, k_H={}, seed={}, dialect {vendor})",
                net.routers.len(),
                net.hosts.len(),
                params.k_r,
                params.k_h,
                params.seed
            );
            match result.confmask.as_deref() {
                Some(detail) => {
                    let _ = writeln!(
                        report,
                        "  fake links: {}, fake hosts: {}, fake routers: {}, filters: {} lines",
                        detail.fake_links.len(),
                        detail.route_anon.fake_hosts.len(),
                        detail.scale.fake_routers.len(),
                        detail.ledger.filter_lines
                    );
                    let _ = writeln!(
                        report,
                        "  functional equivalence: {} | U_C = {:.3} | N_r avg = {:.2}",
                        detail.functionally_equivalent(),
                        detail.config_utility(),
                        detail.route_anonymity().avg()
                    );
                    write_degradation(&mut report, &detail.degradation);
                }
                None => {
                    let _ = writeln!(
                        report,
                        "  fake links: {}, fake hosts: {}, fake routers: {}",
                        result.fake_links,
                        result.fake_hosts,
                        result.fake_routers
                    );
                    let _ = writeln!(
                        report,
                        "  paths preserved: {} | reachability preserved: {} | kept-path ratio: {:.3}",
                        result.paths_preserved(),
                        result.reachability_preserved(),
                        result.kept_path_ratio()
                    );
                }
            }
            let final_configs = if pii {
                let (shared, pii_report) = apply_pii(&result.configs, &PiiOptions::default());
                let _ = writeln!(
                    report,
                    "  PII add-on: {} addresses rewritten, {} devices renamed, {} secrets scrubbed",
                    pii_report.addresses_rewritten,
                    pii_report.devices_renamed,
                    pii_report.secrets_scrubbed
                );
                shared
            } else {
                result.configs.clone()
            };
            store_dir_as(&final_configs, &output, vendor).map_err(|e| e.to_string())?;
            let _ = writeln!(report, "wrote {} ({} dialect)", output.display(), vendor);
            match verify_failures {
                None => Ok(report),
                Some(k) => verify_after_anonymize(report, &net, &result, k, 5),
            }
        }
        Command::Failures {
            input,
            params,
            k,
            verify,
            k2_sample,
            cold_sim,
            vendor,
            strategy,
        } => {
            let (net, label) = match &input {
                Some(dir) => (
                    load_dir_as(dir, vendor).map_err(load_err)?.0,
                    dir.display().to_string(),
                ),
                None => (
                    confmask_netgen::synthesize(&confmask_netgen::smallnets::university()),
                    "bundled university network".to_string(),
                ),
            };
            let mut report = String::new();
            match verify {
                // Plain sweep: degrade the input network itself. The sweep
                // converges the healthy network once and folds each scenario
                // into a compact digest incrementally (byte-identical
                // classifications) unless `--cold-sim` asked for a full
                // simulation per scenario. Either way the scenarios stream
                // through the shared executor in bounded windows, and only
                // the report lines are retained — never the simulations.
                None => {
                    let base = if cold_sim {
                        None
                    } else {
                        confmask_sim_delta::DeltaEngine::global().converged(&net).ok()
                    };
                    let baseline = match &base {
                        Some(conv) => conv.sim.dataplane.clone(),
                        None => confmask::simulate(&net).map_err(|e| e.to_string())?.dataplane,
                    };
                    let scenarios = enumerate_scenarios(&net, k, params.seed, k2_sample);
                    let _ = writeln!(
                        report,
                        "failure sweep of {label}: {} scenario(s) at k<={k}",
                        scenarios.len()
                    );
                    // Digests arrive at the reducer in scenario order, so
                    // the report reads identically at any thread count —
                    // and identically on the warm and cold paths.
                    struct ReportReducer<'a> {
                        report: &'a mut String,
                        scenarios: &'a [confmask_sim::FailureScenario],
                    }
                    impl confmask_sim::SweepReducer for ReportReducer<'_> {
                        fn fold(&mut self, i: usize, digest: confmask_sim::ScenarioDigest) {
                            confmask_obs::info!(
                                "cli.failures",
                                "scenario {}/{}: {}",
                                i + 1,
                                self.scenarios.len(),
                                self.scenarios[i]
                            );
                            let hist: Vec<String> = digest
                                .histogram_nonzero()
                                .map(|(class, n)| format!("{n} {class}"))
                                .collect();
                            let _ = writeln!(
                                self.report,
                                "  {}: worst={} [{}]",
                                self.scenarios[i],
                                digest.worst,
                                hist.join(", ")
                            );
                        }
                        fn fold_err(&mut self, i: usize, error: confmask_sim::SimError) {
                            confmask_obs::info!(
                                "cli.failures",
                                "scenario {}/{}: {}",
                                i + 1,
                                self.scenarios.len(),
                                self.scenarios[i]
                            );
                            let _ = writeln!(
                                self.report,
                                "  {}: simulation failed: {error}",
                                self.scenarios[i]
                            );
                        }
                    }
                    let mut reducer = ReportReducer {
                        report: &mut report,
                        scenarios: &scenarios,
                    };
                    match &base {
                        Some(conv) => {
                            let engine = confmask_sim_delta::DeltaEngine::global();
                            let sweep = engine.sweep(conv, &baseline);
                            sweep.run(scenarios.iter(), &mut reducer);
                        }
                        None => {
                            let table = confmask_sim::PairTable::from_baseline(&baseline);
                            confmask_sim::sweep::stream_scenarios(
                                &net,
                                &baseline,
                                &table,
                                scenarios.iter(),
                                &mut reducer,
                            );
                        }
                    }
                    Ok(report)
                }
                // Anonymize, then verify equivalence under failure.
                Some(vk) => {
                    let result = confmask::anonymizer_for(strategy)
                        .anonymize(&net, &params)
                        .map_err(anonymize_err)?;
                    let _ = writeln!(
                        report,
                        "anonymized {label} ({strategy} strategy, k_R={}, k_H={}, seed={}): {} fake links, {} fake routers",
                        params.k_r,
                        params.k_h,
                        params.seed,
                        result.fake_links,
                        result.fake_routers
                    );
                    if let Some(detail) = result.confmask.as_deref() {
                        write_degradation(&mut report, &detail.degradation);
                    }
                    verify_after_anonymize(report, &net, &result, vk, k2_sample)
                }
            }
        }
        Command::Simulate { input, trace } => {
            let net = load_dir(&input).map_err(|e| e.to_string())?;
            let sim = confmask::simulate(&net).map_err(|e| e.to_string())?;
            let mut report = String::new();
            match trace {
                Some((src, dst)) => {
                    let ps = sim
                        .dataplane
                        .between(&src, &dst)
                        .ok_or_else(|| format!("no such host pair {src} -> {dst}"))?;
                    let _ = writeln!(report, "traceroute {src} -> {dst}:");
                    for p in &ps.paths {
                        let _ = writeln!(report, "  {}", p.join(" -> "));
                    }
                    if ps.blackhole {
                        let _ = writeln!(report, "  (some branch black-holes)");
                    }
                    if ps.has_loop {
                        let _ = writeln!(report, "  (some branch loops)");
                    }
                }
                None => {
                    let total = sim.dataplane.len();
                    let clean = sim.dataplane.pairs().filter(|(_, ps)| ps.clean()).count();
                    let blackholes =
                        sim.dataplane.pairs().filter(|(_, ps)| ps.blackhole).count();
                    let loops = sim.dataplane.pairs().filter(|(_, ps)| ps.has_loop).count();
                    let _ = writeln!(
                        report,
                        "data plane: {total} host pairs — {clean} clean, {blackholes} with black holes, {loops} with loops"
                    );
                }
            }
            Ok(report)
        }
        Command::Inspect { input } => {
            let net = load_dir(&input).map_err(|e| e.to_string())?;
            let topo = extract_topology(&net);
            let errors = confmask_config::validate(&net);
            let mut report = String::new();
            let _ = writeln!(
                report,
                "routers: {}  hosts: {}  links: {}  config lines: {}",
                net.routers.len(),
                net.hosts.len(),
                topo.edge_count(),
                net.total_lines()
            );
            let _ = writeln!(
                report,
                "k_d (min same-degree): {}  clustering coefficient: {:.3}",
                min_same_degree(&topo),
                clustering_coefficient(&topo)
            );
            if errors.is_empty() {
                let _ = writeln!(report, "validation: clean");
            } else {
                let _ = writeln!(report, "validation: {} finding(s)", errors.len());
                for e in errors.iter().take(10) {
                    let _ = writeln!(report, "  - {e}");
                }
            }
            Ok(report)
        }
        Command::ObsReport {
            input,
            chrome_trace,
        } => {
            // `-` reads the report from stdin, so the daemon's JSON metrics
            // endpoint can be piped straight in:
            // `curl …/metrics-json | confmask obs-report -`.
            let (text, label) = if input.as_os_str() == "-" {
                let mut text = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                (text, "stdin".to_string())
            } else {
                (
                    std::fs::read_to_string(&input)
                        .map_err(|e| format!("cannot read {}: {e}", input.display()))?,
                    input.display().to_string(),
                )
            };
            let report = confmask_obs::Report::from_json(&text)
                .map_err(|e| format!("{label} is not a metrics report: {e}"))?;
            if chrome_trace {
                // Chrome trace-event JSON for Perfetto / chrome://tracing.
                Ok(report.to_chrome_trace())
            } else {
                Ok(report.render())
            }
        }
        Command::Serve {
            addr,
            workers,
            queue_cap,
            job_timeout_secs,
            state_dir,
            requeue_budget,
        } => {
            let server = confmask_serve::Server::bind(&confmask_serve::ServeOptions {
                addr: addr.clone(),
                workers,
                queue_cap,
                job_timeout: job_timeout_secs.map(std::time::Duration::from_secs),
                state_dir,
                requeue_budget,
            })
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            // Announce readiness immediately (scripts wait for this line);
            // `run` blocks until POST /v1/shutdown.
            println!(
                "confmask-serve listening on {} ({} worker(s), queue capacity {})",
                server.local_addr(),
                server.workers(),
                queue_cap
            );
            let _ = std::io::Write::flush(&mut std::io::stdout());
            let counts = server.run().map_err(|e| e.to_string())?;
            Ok(format!(
                "drained: {} done, {} degraded, {} failed\n",
                counts.done, counts.degraded, counts.failed
            ))
        }
        Command::Loadgen {
            addr,
            concurrency,
            duration_secs,
            network,
            seed,
            output,
            poll_ms,
        } => {
            let suite = confmask_netgen::extended_suite();
            let net = suite
                .iter()
                .find(|n| n.id == network)
                .ok_or_else(|| format!("no evaluation network '{network}'"))?;
            let cfg = crate::loadgen::LoadgenConfig {
                addr: addr.clone(),
                concurrency,
                duration: std::time::Duration::from_secs(duration_secs),
                net: net.configs.clone(),
                net_label: network.to_string(),
                params: confmask::Params::default(),
                seed,
                poll_ms,
            };
            confmask_obs::info!(
                "cli.loadgen",
                "driving {addr} with {concurrency} closed-loop worker(s) for {duration_secs}s (network {network}, seed {seed})"
            );
            let summary = crate::loadgen::run(&cfg)?;
            let json = crate::loadgen::bench_json(&cfg, &summary);
            std::fs::write(&output, &json)
                .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
            let mut report = crate::loadgen::render(&summary);
            let _ = writeln!(report, "wrote {}", output.display());
            if !summary.lossless() {
                return Err(CmdError {
                    code: EXIT_FATAL,
                    message: format!("{report}loadgen accounting lost jobs: {summary:?}"),
                });
            }
            Ok(report)
        }
        Command::Submit {
            addr,
            input,
            params,
            wait,
            output,
            poll_ms,
            shutdown,
            vendor,
            strategy,
        } => {
            use confmask_serve::{client, wire};
            if shutdown {
                let resp = client::post(&addr, "/v1/shutdown", "")
                    .map_err(|e| format!("cannot reach {addr}: {e}"))?;
                if resp.status != 202 {
                    return Err(format!(
                        "shutdown refused ({}): {}",
                        resp.status,
                        resp.text().trim()
                    )
                    .into());
                }
                return Ok(format!("daemon at {addr} is draining\n"));
            }
            let input = input.expect("parser requires --input without --shutdown");
            let (net, vendor) = load_dir_as(&input, vendor).map_err(load_err)?;
            let body = wire::encode_submit(&net, &params, vendor, strategy);
            let resp = client::post(&addr, "/v1/jobs", &body)
                .map_err(|e| format!("cannot reach {addr}: {e}"))?;
            if resp.status != 202 {
                return Err(format!(
                    "submission refused ({}): {}",
                    resp.status,
                    resp.text().trim()
                )
                .into());
            }
            let id = wire::decode_job_created(&resp.body)
                .map_err(|e| format!("malformed daemon response: {e}"))?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "submitted job {id} to {addr} ({vendor} dialect, {strategy} strategy)"
            );
            if !wait {
                return Ok(report);
            }
            let status = loop {
                let resp = client::get(&addr, &format!("/v1/jobs/{id}"))
                    .map_err(|e| format!("cannot poll {addr}: {e}"))?;
                if resp.status != 200 {
                    return Err(format!(
                        "poll failed ({}): {}",
                        resp.status,
                        resp.text().trim()
                    )
                    .into());
                }
                let status = wire::decode_status(&resp.body)
                    .map_err(|e| format!("malformed status: {e}"))?;
                if status.is_terminal() {
                    break status;
                }
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            };
            let _ = writeln!(
                report,
                "job {id}: {} after {} attempt(s), {} ms",
                status.state,
                status.attempts,
                status.wall_ms.unwrap_or(0)
            );
            if status.state == "failed" {
                let mut message = report;
                let _ = writeln!(
                    message,
                    "error: {}",
                    status.error.as_deref().unwrap_or("unknown")
                );
                return Err(message.into());
            }
            if let Some(out) = output {
                let resp = client::get(&addr, &format!("/v1/jobs/{id}/artifacts"))
                    .map_err(|e| format!("cannot fetch artifacts: {e}"))?;
                if resp.status != 200 {
                    return Err(format!(
                        "artifact fetch failed ({}): {}",
                        resp.status,
                        resp.text().trim()
                    )
                    .into());
                }
                let files = wire::decode_artifacts(&resp.body)
                    .map_err(|e| format!("malformed artifacts: {e}"))?;
                for f in &files {
                    let path = out.join(&f.path);
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
                    }
                    std::fs::write(&path, &f.text)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                }
                let _ = writeln!(report, "wrote {} file(s) to {}", files.len(), out.display());
            }
            Ok(report)
        }
        Command::Generate {
            network,
            output,
            vendor,
        } => {
            let suite = confmask_netgen::extended_suite();
            let net = suite
                .iter()
                .find(|n| n.id == network)
                .ok_or_else(|| format!("no evaluation network '{network}'"))?;
            // Nothing to sniff when generating: default to the canonical
            // IOS dialect.
            let vendor = vendor.unwrap_or(confmask::Vendor::Ios);
            store_dir_as(&net.configs, &output, vendor).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote net {} ({}) to {} ({} dialect)\n",
                net.id,
                net.name,
                output.display(),
                vendor
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::store_dir;
    use confmask::Params;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("confmask-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn generate_inspect_anonymize_simulate_workflow() {
        let src = tmp("wf-src");
        let dst = tmp("wf-dst");

        let out = run(Command::Generate {
            network: 'A',
            output: src.clone(),
            vendor: None,
        })
        .unwrap();
        assert!(out.contains("Enterprise"));

        let out = run(Command::Inspect { input: src.clone() }).unwrap();
        assert!(out.contains("routers: 10"));
        assert!(out.contains("validation: clean"));

        let out = run(Command::Anonymize {
            input: src.clone(),
            output: dst.clone(),
            params: Params::new(4, 2),
            pii: true,
            verify_failures: None,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert!(out.contains("functional equivalence: true"));
        assert!(out.contains("PII add-on"));

        let out = run(Command::Simulate {
            input: dst.clone(),
            trace: None,
        })
        .unwrap();
        assert!(out.contains("0 with black holes"), "{out}");
        assert!(out.contains("0 with loops"), "{out}");

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn anonymize_dispatches_non_confmask_strategies() {
        let src = tmp("strat-src");
        let dst = tmp("strat-dst");
        run(Command::Generate {
            network: 'A',
            output: src.clone(),
            vendor: None,
        })
        .unwrap();
        let out = run(Command::Anonymize {
            input: src.clone(),
            output: dst.clone(),
            params: Params::new(4, 2),
            pii: false,
            verify_failures: Some(1),
            vendor: None,
            strategy: confmask::Strategy::NetCloak,
        })
        .unwrap();
        assert!(out.contains("netcloak strategy"), "{out}");
        assert!(out.contains("paths preserved: true"), "{out}");
        assert!(out.contains("reachability preserved: preserved") || out.contains("preserved"), "{out}");
        // The emitted bundle is a loadable configuration directory with
        // more routers than the input (cloak expansion).
        let expanded = load_dir(&dst).unwrap();
        let original = load_dir(&src).unwrap();
        assert!(expanded.routers.len() > original.routers.len());
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn simulate_trace_prints_paths() {
        let dir = tmp("trace");
        run(Command::Generate {
            network: 'A',
            output: dir.clone(),
            vendor: None,
        })
        .unwrap();
        let out = run(Command::Simulate {
            input: dir.clone(),
            trace: Some(("ha0".into(), "ha7".into())),
        })
        .unwrap();
        assert!(out.contains("traceroute ha0 -> ha7"));
        assert!(out.contains(" -> "), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failures_sweep_reports_every_single_link_scenario() {
        let dir = tmp("fail-sweep");
        store_dir(&confmask_netgen::smallnets::example_network(), &dir).unwrap();
        let out = run(Command::Failures {
            input: Some(dir.clone()),
            params: Params::default(),
            k: 1,
            verify: None,
            k2_sample: 0,
            cold_sim: false,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert!(out.contains("failure sweep"), "{out}");
        assert!(out.contains("link-down"), "{out}");
        // The cold path must produce the identical report.
        let cold = run(Command::Failures {
            input: Some(dir.clone()),
            params: Params::default(),
            k: 1,
            verify: None,
            k2_sample: 0,
            cold_sim: true,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert_eq!(out, cold, "incremental and cold sweeps must agree");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failures_verify_holds_on_example_network() {
        let dir = tmp("fail-verify");
        store_dir(&confmask_netgen::smallnets::example_network(), &dir).unwrap();
        let out = run(Command::Failures {
            input: Some(dir.clone()),
            params: Params::new(3, 2),
            k: 1,
            verify: Some(1),
            k2_sample: 0,
            cold_sim: false,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert!(out.contains("classes match"), "{out}");
        assert!(out.contains("verdict: HOLDS"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn obs_report_renders_a_written_report() {
        let dir = tmp("obs-report");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        // A hand-built report: rendering must work on any valid file, not
        // just one this process collected.
        let json = r#"{
          "version": 1,
          "dropped_spans": 0,
          "spans": [{"name": "pipeline.anonymize", "id": 1, "thread": 0,
                     "start_us": 0, "duration_us": 10, "children": [
                       {"name": "pipeline.stage.verify", "id": 2, "thread": 0,
                        "start_us": 1, "duration_us": 5, "children": []}]}],
          "counters": {"sim.simulations": 3},
          "gauges": {},
          "histograms": {"sim.fib.size": {"count": 2, "sum": 10, "min": 4,
                         "max": 6, "p50": 4, "p90": 6, "p99": 6}},
          "events": []
        }"#;
        std::fs::write(&path, json).unwrap();
        let out = run(Command::ObsReport {
            input: path.clone(),
            chrome_trace: false,
        })
        .unwrap();
        assert!(out.contains("pipeline.anonymize"), "{out}");
        assert!(out.contains("pipeline.stage.verify"), "{out}");
        assert!(out.contains("sim.simulations"), "{out}");
        assert!(out.contains("sim.fib.size"), "{out}");

        // The same report converts to Chrome trace-event JSON.
        let out = run(Command::ObsReport {
            input: path,
            chrome_trace: true,
        })
        .unwrap();
        let doc = confmask_obs::json::parse(&out).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(confmask_obs::json::Json::as_arr)
            .expect("traceEvents");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(confmask_obs::json::Json::as_str)
                    == Some("pipeline.stage.verify")
            }),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).unwrap();

        let err = run(Command::ObsReport {
            input: PathBuf::from("/definitely/not/here.json"),
            chrome_trace: false,
        })
        .unwrap_err();
        assert_eq!(err.code, EXIT_FATAL);
    }

    #[test]
    fn submit_runs_a_job_and_fetches_artifacts() {
        let src = tmp("submit-src");
        let dst = tmp("submit-dst");
        run(Command::Generate {
            network: 'A',
            output: src.clone(),
            vendor: None,
        })
        .unwrap();

        let server = confmask_serve::Server::bind(&confmask_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_cap: 4,
            ..confmask_serve::ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let out = run(Command::Submit {
            addr: addr.clone(),
            input: Some(src.clone()),
            params: Params::new(4, 2),
            wait: true,
            output: Some(dst.clone()),
            poll_ms: 10,
            shutdown: false,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert!(out.contains("submitted job j1"), "{out}");
        assert!(out.contains("job j1: done") || out.contains("job j1: degraded"), "{out}");
        assert!(out.contains("file(s) to"), "{out}");
        // The fetched bundle is a loadable configuration directory.
        let fetched = load_dir(&dst).unwrap();
        assert!(!fetched.routers.is_empty());

        let out = run(Command::Submit {
            addr: addr.clone(),
            input: None,
            params: Params::default(),
            wait: false,
            output: None,
            poll_ms: 10,
            shutdown: true,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap();
        assert!(out.contains("draining"), "{out}");
        let counts = daemon.join().unwrap();
        assert_eq!(counts.done + counts.degraded, 1);

        // An unreachable daemon is a fatal error, not a panic.
        let err = run(Command::Submit {
            addr: addr.clone(),
            input: Some(src.clone()),
            params: Params::default(),
            wait: false,
            output: None,
            poll_ms: 10,
            shutdown: false,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap_err();
        assert_eq!(err.code, EXIT_FATAL);

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn fatal_errors_carry_exit_code_one() {
        let err = run(Command::Inspect {
            input: PathBuf::from("/definitely/not/here"),
        })
        .unwrap_err();
        assert_eq!(err.code, EXIT_FATAL);
    }

    #[test]
    fn unparseable_config_is_a_usage_error_naming_the_file() {
        let dir = tmp("parse-exit");
        std::fs::create_dir_all(dir.join("routers")).unwrap();
        std::fs::write(dir.join("routers/ok.cfg"), "hostname ok\n!\n").unwrap();
        std::fs::write(
            dir.join("routers/broken.cfg"),
            "hostname x\n!\nrouter ospf 1\n garbage here\n",
        )
        .unwrap();
        let err = run(Command::Anonymize {
            input: dir.clone(),
            output: dir.join("out"),
            params: Params::default(),
            pii: false,
            verify_failures: None,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap_err();
        // A file that exists but cannot be parsed is exit 2 (bad input),
        // and the message pinpoints file and line — not exit 1 with a
        // bare line number.
        assert_eq!(err.code, EXIT_USAGE, "{}", err.message);
        assert!(err.message.contains("broken.cfg"), "{}", err.message);
        assert!(err.message.contains("line 4"), "{}", err.message);
        // A missing directory stays fatal (exit 1).
        let err = run(Command::Anonymize {
            input: PathBuf::from("/definitely/not/here"),
            output: dir.join("out"),
            params: Params::default(),
            pii: false,
            verify_failures: None,
            vendor: None,
            strategy: confmask::Strategy::ConfMask,
        })
        .unwrap_err();
        assert_eq!(err.code, EXIT_FATAL);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(Command::Inspect {
            input: PathBuf::from("/definitely/not/here"),
        })
        .is_err());
        let dir = tmp("badtrace");
        run(Command::Generate {
            network: 'A',
            output: dir.clone(),
            vendor: None,
        })
        .unwrap();
        assert!(run(Command::Simulate {
            input: dir.clone(),
            trace: Some(("nope".into(), "also-nope".into())),
        })
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
