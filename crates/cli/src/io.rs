//! Loading and storing configuration directories.
//!
//! Layout: `<dir>/routers/*.cfg` and `<dir>/hosts/*.cfg` (hosts optional
//! but a network without hosts has an empty data plane).

use confmask_config::{parse_host_as, parse_router_as, NetworkConfigs, Vendor};
use std::fs;
use std::io;
use std::path::Path;

/// Loads a configuration directory, auto-detecting the dialect (shorthand
/// for [`load_dir_as`] with `None`).
pub fn load_dir(dir: &Path) -> io::Result<NetworkConfigs> {
    load_dir_as(dir, None).map(|(net, _)| net)
}

/// Loads a configuration directory in the given dialect (`None` sniffs the
/// bundle via [`Vendor::sniff_all`]) and reports which dialect was used.
///
/// Parse failures carry the offending file's path (via
/// [`confmask_config::ParseError::with_file`]) and surface as
/// [`io::ErrorKind::InvalidData`], which the CLI maps to exit code 2 — a
/// broken file inside a 100-router directory names itself.
pub fn load_dir_as(
    dir: &Path,
    vendor: Option<Vendor>,
) -> io::Result<(NetworkConfigs, Vendor)> {
    let routers_dir = dir.join("routers");
    if !routers_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no routers/ subdirectory", dir.display()),
        ));
    }

    // Two passes: read every file first so auto-detection can vote over
    // the whole bundle before any parser runs.
    let mut router_texts = Vec::new();
    for entry in sorted_cfg_files(&routers_dir)? {
        let text = fs::read_to_string(&entry)?;
        router_texts.push((entry, text));
    }
    let mut host_texts = Vec::new();
    let hosts_dir = dir.join("hosts");
    if hosts_dir.is_dir() {
        for entry in sorted_cfg_files(&hosts_dir)? {
            let text = fs::read_to_string(&entry)?;
            host_texts.push((entry, text));
        }
    }

    let vendor = vendor
        .unwrap_or_else(|| Vendor::sniff_all(router_texts.iter().map(|(_, t)| t.as_str())));

    let mut routers = Vec::new();
    for (entry, text) in &router_texts {
        let rc = parse_router_as(vendor, text).map_err(|e| {
            let e = e.with_file(entry.display().to_string());
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        })?;
        routers.push(rc);
    }
    let mut hosts = Vec::new();
    for (entry, text) in &host_texts {
        let hc = parse_host_as(vendor, text).map_err(|e| {
            let e = e.with_file(entry.display().to_string());
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        })?;
        hosts.push(hc);
    }

    Ok((NetworkConfigs::new(routers, hosts), vendor))
}

/// Writes a network in the canonical IOS dialect (shorthand for
/// [`store_dir_as`] with [`Vendor::Ios`]).
pub fn store_dir(net: &NetworkConfigs, dir: &Path) -> io::Result<()> {
    store_dir_as(net, dir, Vendor::Ios)
}

/// Writes a network to a configuration directory in the given dialect
/// (created if missing; refuses to write into a directory that already
/// contains `routers/`).
pub fn store_dir_as(net: &NetworkConfigs, dir: &Path, vendor: Vendor) -> io::Result<()> {
    let routers_dir = dir.join("routers");
    if routers_dir.exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("{} already exists — refusing to overwrite", routers_dir.display()),
        ));
    }
    fs::create_dir_all(&routers_dir)?;
    let hosts_dir = dir.join("hosts");
    fs::create_dir_all(&hosts_dir)?;
    for (name, rc) in &net.routers {
        fs::write(
            routers_dir.join(format!("{}.cfg", sanitize(name))),
            rc.emit_as(vendor),
        )?;
    }
    for (name, hc) in &net.hosts {
        fs::write(
            hosts_dir.join(format!("{}.cfg", sanitize(name))),
            hc.emit_as(vendor),
        )?;
    }
    Ok(())
}

/// File names come from hostnames; keep them filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' })
        .collect()
}

fn sorted_cfg_files(dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    let mut files: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cfg"))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "confmask-cli-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_round_trip() {
        let net = confmask_netgen::smallnets::example_network();
        let dir = tmpdir("roundtrip");
        store_dir(&net, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(net, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_to_overwrite() {
        let net = confmask_netgen::smallnets::example_network();
        let dir = tmpdir("overwrite");
        store_dir(&net, &dir).unwrap();
        assert!(store_dir(&net, &dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_routers_dir_is_an_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_config_reports_file_name() {
        let dir = tmpdir("badcfg");
        fs::create_dir_all(dir.join("routers")).unwrap();
        fs::write(
            dir.join("routers/broken.cfg"),
            "hostname x\n!\nrouter ospf 1\n garbage here\n",
        )
        .unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The message names the broken file, its line, and the problem —
        // not just a bare line number in an unnamed file.
        let msg = err.to_string();
        assert!(msg.contains("broken.cfg"), "{msg}");
        assert!(msg.contains("line 4"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_host_config_reports_file_name() {
        let dir = tmpdir("badhost");
        let net = confmask_netgen::smallnets::example_network();
        store_dir(&net, &dir).unwrap();
        fs::write(dir.join("hosts/evil.cfg"), "hostname h\n!\ninterface eth0\n ip address nope 255.255.255.0\n!\n").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("evil.cfg"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_trips_in_every_dialect() {
        let net = confmask_netgen::smallnets::example_network();
        for vendor in Vendor::ALL {
            let dir = tmpdir(&format!("dialect-{vendor}"));
            store_dir_as(&net, &dir, vendor).unwrap();
            // Explicit dialect and auto-detection load the same model.
            let (explicit, v) = load_dir_as(&dir, Some(vendor)).unwrap();
            assert_eq!(v, vendor);
            assert_eq!(explicit, net, "explicit {vendor} round-trip");
            let (sniffed, v) = load_dir_as(&dir, None).unwrap();
            assert_eq!(v, vendor, "auto-detection picks {vendor}");
            assert_eq!(sniffed, net, "sniffed {vendor} round-trip");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn sanitizes_hostnames() {
        assert_eq!(sanitize("rtr/0:1"), "rtr_0_1");
        assert_eq!(sanitize("plain-name_0.x"), "plain-name_0.x");
    }
}
