//! Loading and storing configuration directories.
//!
//! Layout: `<dir>/routers/*.cfg` and `<dir>/hosts/*.cfg` (hosts optional
//! but a network without hosts has an empty data plane).

use confmask_config::{parse_host, parse_router, NetworkConfigs};
use std::fs;
use std::io;
use std::path::Path;

/// Loads a configuration directory.
pub fn load_dir(dir: &Path) -> io::Result<NetworkConfigs> {
    let mut routers = Vec::new();
    let mut hosts = Vec::new();

    let routers_dir = dir.join("routers");
    if !routers_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no routers/ subdirectory", dir.display()),
        ));
    }
    for entry in sorted_cfg_files(&routers_dir)? {
        let text = fs::read_to_string(&entry)?;
        let rc = parse_router(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", entry.display()),
            )
        })?;
        routers.push(rc);
    }

    let hosts_dir = dir.join("hosts");
    if hosts_dir.is_dir() {
        for entry in sorted_cfg_files(&hosts_dir)? {
            let text = fs::read_to_string(&entry)?;
            let hc = parse_host(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", entry.display()),
                )
            })?;
            hosts.push(hc);
        }
    }

    Ok(NetworkConfigs::new(routers, hosts))
}

/// Writes a network to a configuration directory (created if missing;
/// refuses to write into a directory that already contains `routers/`).
pub fn store_dir(net: &NetworkConfigs, dir: &Path) -> io::Result<()> {
    let routers_dir = dir.join("routers");
    if routers_dir.exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!("{} already exists — refusing to overwrite", routers_dir.display()),
        ));
    }
    fs::create_dir_all(&routers_dir)?;
    let hosts_dir = dir.join("hosts");
    fs::create_dir_all(&hosts_dir)?;
    for (name, rc) in &net.routers {
        fs::write(routers_dir.join(format!("{}.cfg", sanitize(name))), rc.emit())?;
    }
    for (name, hc) in &net.hosts {
        fs::write(hosts_dir.join(format!("{}.cfg", sanitize(name))), hc.emit())?;
    }
    Ok(())
}

/// File names come from hostnames; keep them filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' })
        .collect()
}

fn sorted_cfg_files(dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    let mut files: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cfg"))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "confmask-cli-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_round_trip() {
        let net = confmask_netgen::smallnets::example_network();
        let dir = tmpdir("roundtrip");
        store_dir(&net, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(net, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_to_overwrite() {
        let net = confmask_netgen::smallnets::example_network();
        let dir = tmpdir("overwrite");
        store_dir(&net, &dir).unwrap();
        assert!(store_dir(&net, &dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_routers_dir_is_an_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(load_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_config_reports_file_name() {
        let dir = tmpdir("badcfg");
        fs::create_dir_all(dir.join("routers")).unwrap();
        fs::write(
            dir.join("routers/broken.cfg"),
            "hostname x\n!\nrouter ospf 1\n garbage here\n",
        )
        .unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("broken.cfg"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitizes_hostnames() {
        assert_eq!(sanitize("rtr/0:1"), "rtr_0_1");
        assert_eq!(sanitize("plain-name_0.x"), "plain-name_0.x");
    }
}
