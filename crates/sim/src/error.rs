//! Simulator error type.

use std::fmt;

/// Errors produced by model extraction or protocol computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configurations are structurally unusable for simulation.
    BadConfig(String),
    /// BGP failed to reach a stable state within the iteration budget
    /// (a routing oscillation — Griffin's stable-paths problem has no
    /// solution for this instance).
    BgpDiverged {
        /// Rounds executed before giving up.
        rounds: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            SimError::BgpDiverged { rounds } => {
                write!(f, "BGP did not converge within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}
