//! Simulator error type.

use std::fmt;

/// Errors produced by model extraction or protocol computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configurations are structurally unusable for simulation.
    BadConfig(String),
    /// BGP failed to reach a stable state within the iteration budget
    /// (a routing oscillation — Griffin's stable-paths problem has no
    /// solution for this instance).
    BgpDiverged {
        /// Rounds executed before giving up.
        rounds: usize,
    },
    /// A worker thread of the data-plane extractor panicked. The panic is
    /// contained to the offending host chunk and surfaced as an error so
    /// one poisoned trace cannot abort a whole simulation sweep.
    TracePanic(String),
    /// A failure scenario referenced a device or link the network does not
    /// have.
    UnknownElement(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            SimError::BgpDiverged { rounds } => {
                write!(f, "BGP did not converge within {rounds} rounds")
            }
            SimError::TracePanic(m) => {
                write!(f, "data-plane trace thread panicked: {m}")
            }
            SimError::UnknownElement(m) => {
                write!(f, "failure scenario references unknown element: {m}")
            }
        }
    }
}

impl std::error::Error for SimError {}
