//! Native control-plane simulator — the Batfish substitute.
//!
//! The original ConfMask prototype delegates all network simulation to an
//! external Batfish service. This crate replaces it with a self-contained
//! simulator implementing exactly the capabilities ConfMask uses:
//!
//! 1. **Model extraction** ([`SimNetwork`]): configurations → routers,
//!    interfaces, links, protocol sessions, and resolved route filters.
//! 2. **Control-plane computation**:
//!    * [`ospf`] — link-state SPF with ECMP and Cisco-style RIB filtering
//!      (a `distribute-list in` removes candidate next-hops *after* the SPF,
//!      which is the behaviour ConfMask's route-equivalence algorithm
//!      relies on for link-state protocols);
//!    * [`rip`] — distance-vector Bellman–Ford to a fixpoint with inbound
//!      advertisement filtering (filters make routes fall back to the
//!      next-best neighbor — the distance-vector behaviour of §5.1);
//!    * [`bgp`] — router-level path-vector with eBGP sessions, an implicit
//!      iBGP full mesh, AS-path loop prevention, shortest-AS-path selection
//!      and deterministic tie-breaking; iterated to a stable state (BGP
//!      converges to a *local equilibrium*, which is why ConfMask must
//!      re-simulate after adding filters, §4.3).
//! 3. **Data-plane extraction** ([`dataplane`]): per-router FIBs with
//!    longest-prefix match and administrative distance, exhaustive
//!    host-to-host forwarding-path enumeration with ECMP branching, loop and
//!    black-hole detection, and traceroute.
//!
//! The entry point is [`simulate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod dataplane;
mod error;
pub mod fault;
mod fib;
mod network;
pub mod ospf;
pub mod rip;

pub use dataplane::{DataPlane, PathSet};
pub use fault::{DegradationClass, FailureScenario, Fault, ScenarioOutcome};
pub use error::SimError;
pub use fib::{AdminDistance, Fib, FibEntry, Fibs, NextHop, RouteSource};
pub use network::{BgpSession, HostNode, IfaceNode, Peer, RouterNode, SimNetwork};

use confmask_config::NetworkConfigs;

/// A complete simulation result: the extracted model, every router's FIB,
/// and the host-to-host data plane.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// The extracted network model.
    pub net: SimNetwork,
    /// Per-router forwarding tables.
    pub fibs: Fibs,
    /// All host-to-host forwarding paths (the paper's `DP`).
    pub dataplane: DataPlane,
}

/// Simulates a network: extracts the model, runs every configured protocol,
/// merges RIBs into FIBs by administrative distance, and enumerates the
/// data plane.
pub fn simulate(configs: &NetworkConfigs) -> Result<Simulation, SimError> {
    let (net, fibs) = simulate_control_plane(configs)?;
    let sp = confmask_obs::span("sim.dataplane");
    let dataplane = dataplane::extract_dataplane(&net, &fibs)?;
    sp.finish();
    if confmask_obs::enabled() {
        confmask_obs::counter_add("sim.dataplane.pairs", dataplane.len() as u64);
        for (_, ps) in dataplane.pairs() {
            confmask_obs::observe("sim.dataplane.paths_per_pair", ps.paths.len() as u64);
        }
    }
    Ok(Simulation { net, fibs, dataplane })
}

/// Control-plane-only simulation: model extraction and FIB computation
/// without the (comparatively expensive) exhaustive data-plane enumeration.
/// The anonymization pipeline's inner fixpoint loops only inspect FIBs, so
/// they use this entry point and reserve [`simulate`] for verification.
pub fn simulate_control_plane(configs: &NetworkConfigs) -> Result<(SimNetwork, Fibs), SimError> {
    let sp = confmask_obs::span("sim.control_plane");
    confmask_obs::counter_add("sim.simulations", 1);
    // Register the protocol counters at zero so the metric set is stable
    // across protocol mixes (an OSPF-only network still reports
    // `sim.bgp.rounds` = 0 rather than omitting the key).
    for name in ["sim.ospf.spf_runs", "sim.rip.rounds", "sim.bgp.rounds"] {
        confmask_obs::counter_add(name, 0);
    }
    let net = SimNetwork::build(configs)?;
    let fibs = fib::compute_fibs(&net)?;
    sp.finish();
    if confmask_obs::enabled() {
        for fib in &fibs.per_router {
            confmask_obs::observe("sim.fib.size", fib.len() as u64);
        }
    }
    Ok((net, fibs))
}
