//! Native control-plane simulator — the Batfish substitute.
//!
//! The original ConfMask prototype delegates all network simulation to an
//! external Batfish service. This crate replaces it with a self-contained
//! simulator implementing exactly the capabilities ConfMask uses:
//!
//! 1. **Model extraction** ([`SimNetwork`]): configurations → routers,
//!    interfaces, links, protocol sessions, and resolved route filters.
//! 2. **Control-plane computation**:
//!    * [`ospf`] — link-state SPF with ECMP and Cisco-style RIB filtering
//!      (a `distribute-list in` removes candidate next-hops *after* the SPF,
//!      which is the behaviour ConfMask's route-equivalence algorithm
//!      relies on for link-state protocols);
//!    * [`rip`] — distance-vector Bellman–Ford to a fixpoint with inbound
//!      advertisement filtering (filters make routes fall back to the
//!      next-best neighbor — the distance-vector behaviour of §5.1);
//!    * [`bgp`] — router-level path-vector with eBGP sessions, an implicit
//!      iBGP full mesh, AS-path loop prevention, shortest-AS-path selection
//!      and deterministic tie-breaking; iterated to a stable state (BGP
//!      converges to a *local equilibrium*, which is why ConfMask must
//!      re-simulate after adding filters, §4.3).
//! 3. **Data-plane extraction** ([`dataplane`]): per-router FIBs with
//!    longest-prefix match and administrative distance, exhaustive
//!    host-to-host forwarding-path enumeration with ECMP branching, loop and
//!    black-hole detection, and traceroute.
//!
//! The entry point is [`simulate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod dataplane;
mod error;
pub mod fault;
mod fib;
mod network;
pub mod ospf;
pub mod rip;
pub mod sweep;

pub use bgp::BgpFibRoute;
pub use dataplane::{DataPlane, PairBits, PathArena, PathSet};
pub use error::SimError;
pub use fault::{DegradationClass, FailureScenario, Fault, ScenarioOutcome};
pub use sweep::{
    DigestList, PairTable, ScenarioDigest, SweepReducer, SweepStats, SweepSummary,
};
pub use fib::{
    merge_fibs, merge_router_fib, AdminDistance, Fib, FibEntry, Fibs, NextHop, RouteSource,
};
pub use network::{BgpSession, HostNode, IfaceNode, Peer, RouterNode, SimNetwork};
pub use ospf::{IgpRoutes, OspfDist, RouterPaths};
pub use rip::{RipDist, RipRoutes};

use confmask_config::NetworkConfigs;
use confmask_net_types::Ipv4Prefix;
use std::collections::BTreeMap;

/// Per-router BGP RIB contributions (one map per [`confmask_net_types::RouterId`]).
pub type BgpRoutes = Vec<BTreeMap<Ipv4Prefix, BgpFibRoute>>;

/// A complete simulation result: the extracted model, every router's FIB,
/// and the host-to-host data plane.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// The extracted network model.
    pub net: SimNetwork,
    /// Per-router forwarding tables.
    pub fibs: Fibs,
    /// All host-to-host forwarding paths (the paper's `DP`).
    pub dataplane: DataPlane,
}

/// Simulates a network: extracts the model, runs every configured protocol,
/// merges RIBs into FIBs by administrative distance, and enumerates the
/// data plane.
pub fn simulate(configs: &NetworkConfigs) -> Result<Simulation, SimError> {
    let (net, fibs) = simulate_control_plane(configs)?;
    let sp = confmask_obs::span("sim.dataplane");
    let dataplane = dataplane::extract_dataplane(&net, &fibs)?;
    sp.finish();
    emit_dataplane_metrics(&dataplane);
    Ok(Simulation {
        net,
        fibs,
        dataplane,
    })
}

/// Records the data-plane size metrics every full simulation reports,
/// regardless of which entry point produced it.
fn emit_dataplane_metrics(dataplane: &DataPlane) {
    if confmask_obs::enabled() {
        confmask_obs::counter_add("sim.dataplane.pairs", dataplane.len() as u64);
        for (_, ps) in dataplane.pairs() {
            confmask_obs::observe("sim.dataplane.paths_per_pair", ps.paths.len() as u64);
        }
    }
}

/// Registers every `sim.*` metric the simulator emits at zero, so scrapes
/// and reports taken before the first simulation already carry the full
/// key set (the register-at-zero rule the rest of the pipeline follows).
pub fn register_metrics() {
    for name in [
        "sim.simulations",
        "sim.ospf.spf_runs",
        "sim.rip.rounds",
        "sim.bgp.rounds",
        "sim.dataplane.pairs",
        "sim.fault.scenarios",
    ] {
        confmask_obs::counter_add(name, 0);
    }
    confmask_obs::histogram_register("sim.dataplane.paths_per_pair");
    confmask_obs::histogram_register("sim.fib.size");
    sweep::register_metrics();
}

/// The converged per-protocol control-plane state behind a [`Simulation`].
///
/// [`simulate_with_state`] returns it alongside the result so the
/// incremental engine (`confmask-sim-delta`) can cache what each protocol
/// converged *to* — per-prefix OSPF/RIP distance vectors, the IGP
/// router-to-router matrix, and the BGP RIB contributions — and later
/// recompute only what a perturbation actually touched.
#[derive(Debug, Clone)]
pub struct ControlState {
    /// OSPF candidate next-hops per (router, prefix).
    pub ospf_routes: IgpRoutes,
    /// Converged OSPF distance vectors per prefix.
    pub ospf_dist: OspfDist,
    /// RIP candidate next-hops per (router, prefix).
    pub rip_routes: RipRoutes,
    /// Converged RIP distance vectors per prefix.
    pub rip_dist: RipDist,
    /// Router-to-router IGP shortest paths (computed only when some router
    /// speaks BGP — it exists solely to resolve iBGP egresses).
    pub router_paths: Option<RouterPaths>,
    /// BGP RIB contributions per router.
    pub bgp_routes: BgpRoutes,
}

/// Like [`simulate`], but also returns the converged [`ControlState`].
///
/// The `Simulation` half is byte-identical to what [`simulate`] produces:
/// both run the same protocol implementations and the same
/// [`merge_fibs`] / dataplane extraction.
pub fn simulate_with_state(
    configs: &NetworkConfigs,
) -> Result<(Simulation, ControlState), SimError> {
    let sp = confmask_obs::span("sim.control_plane");
    confmask_obs::counter_add("sim.simulations", 1);
    for name in ["sim.ospf.spf_runs", "sim.rip.rounds", "sim.bgp.rounds"] {
        confmask_obs::counter_add(name, 0);
    }
    let net = SimNetwork::build(configs)?;
    let (ospf_routes, ospf_dist) = ospf::compute_with_state(&net);
    let (rip_routes, rip_dist) = rip::compute_with_state(&net, None);
    let any_bgp = net.routers.iter().any(|r| r.asn.is_some());
    let (router_paths, bgp_routes) = if any_bgp {
        let rp = ospf::router_paths(&net);
        let routes = bgp::compute(&net, &rp)?;
        (Some(rp), routes)
    } else {
        (None, vec![BTreeMap::new(); net.router_count()])
    };
    let fibs = merge_fibs(&net, &ospf_routes, &rip_routes, &bgp_routes);
    sp.finish();
    let sp = confmask_obs::span("sim.dataplane");
    let dataplane = dataplane::extract_dataplane(&net, &fibs)?;
    sp.finish();
    emit_dataplane_metrics(&dataplane);
    let sim = Simulation {
        net,
        fibs,
        dataplane,
    };
    let state = ControlState {
        ospf_routes,
        ospf_dist,
        rip_routes,
        rip_dist,
        router_paths,
        bgp_routes,
    };
    Ok((sim, state))
}

/// Control-plane-only simulation: model extraction and FIB computation
/// without the (comparatively expensive) exhaustive data-plane enumeration.
/// The anonymization pipeline's inner fixpoint loops only inspect FIBs, so
/// they use this entry point and reserve [`simulate`] for verification.
pub fn simulate_control_plane(configs: &NetworkConfigs) -> Result<(SimNetwork, Fibs), SimError> {
    let sp = confmask_obs::span("sim.control_plane");
    confmask_obs::counter_add("sim.simulations", 1);
    // Register the protocol counters at zero so the metric set is stable
    // across protocol mixes (an OSPF-only network still reports
    // `sim.bgp.rounds` = 0 rather than omitting the key).
    for name in ["sim.ospf.spf_runs", "sim.rip.rounds", "sim.bgp.rounds"] {
        confmask_obs::counter_add(name, 0);
    }
    let net = SimNetwork::build(configs)?;
    let fibs = fib::compute_fibs(&net)?;
    sp.finish();
    if confmask_obs::enabled() {
        for fib in &fibs.per_router {
            confmask_obs::observe("sim.fib.size", fib.len() as u64);
        }
    }
    Ok((net, fibs))
}
