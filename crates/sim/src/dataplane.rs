//! Data-plane extraction: host-to-host forwarding paths, traceroute,
//! reachability, loop and black-hole detection.
//!
//! The data plane `DP` of §3.1 is "the collection of all host-to-host
//! routing paths in the network"; each path is a node sequence
//! `(h_s, r_1, …, r_n, h_d)`. Paths are enumerated by walking FIBs with
//! ECMP branching, which is exactly what Batfish's traceroute question does
//! for the original prototype.

use crate::error::SimError;
use crate::fib::{Fibs, NextHop};
use crate::network::SimNetwork;
use confmask_net_types::{HostId, RouterId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cap on enumerated paths per host pair (ECMP explosion guard; far above
/// anything the evaluation networks produce).
pub const MAX_PATHS_PER_PAIR: usize = 256;

/// A fixed-width bitset over the pair indices of an interned host-pair
/// table: one bit per ordered host pair, packed 64 per word. The streaming
/// fault sweep uses it as the violated-pair bitmap of a scenario digest —
/// a network with 3 000 pairs costs 376 bytes per retained scenario
/// instead of a `BTreeMap` keyed by `(String, String)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairBits {
    bits: Vec<u64>,
    len: usize,
}

impl PairBits {
    /// An all-zero bitset over `len` pair indices.
    pub fn new(len: usize) -> Self {
        PairBits {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of pair indices covered (bit capacity, not popcount).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset covers zero pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "pair index {i} out of range {}", self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i` (`false` when out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// The packed words, least-significant pair first (canonical encoding).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Heap bytes retained by this bitset.
    pub fn retained_bytes(&self) -> usize {
        self.bits.capacity() * std::mem::size_of::<u64>()
    }
}

/// The forwarding behaviour between one (src, dst) host pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSet {
    /// Complete forwarding paths, each `[h_s, r_1, …, r_n, h_d]` by device
    /// name, sorted and deduplicated.
    pub paths: Vec<Vec<String>>,
    /// Some branch dropped traffic (no FIB entry / undeliverable).
    pub blackhole: bool,
    /// Some branch entered a forwarding loop.
    pub has_loop: bool,
}

impl PathSet {
    /// Fully reachable: at least one path and no anomalous branch.
    pub fn clean(&self) -> bool {
        !self.paths.is_empty() && !self.blackhole && !self.has_loop
    }
}

/// All host-to-host forwarding paths (the paper's `DP`).
///
/// Path sets are stored behind [`Arc`] so that cloning a data plane — or
/// splicing unaffected pairs from a cached one into an incremental result —
/// shares the (potentially large) path vectors instead of deep-copying
/// them. Equality stays structural: two data planes compare equal iff their
/// pairs and path sets do, shared or not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataPlane {
    pairs: BTreeMap<(String, String), Arc<PathSet>>,
}

impl DataPlane {
    /// The path set between two hosts (by name).
    pub fn between(&self, src: &str, dst: &str) -> Option<&PathSet> {
        self.shared_between(src, dst).map(|ps| ps.as_ref())
    }

    /// The shared handle for a pair — lets callers reuse a path set in
    /// another data plane for the cost of a reference-count bump.
    pub fn shared_between(&self, src: &str, dst: &str) -> Option<&Arc<PathSet>> {
        self.pairs.get(&(src.to_string(), dst.to_string()))
    }

    /// Iterates over every `((src, dst), paths)` pair.
    pub fn pairs(&self) -> impl Iterator<Item = (&(String, String), &PathSet)> {
        self.pairs.iter().map(|(k, v)| (k, v.as_ref()))
    }

    /// Like [`DataPlane::pairs`], exposing the shared handles: two data
    /// planes that reuse a path set (the incremental engine's Arc sharing)
    /// yield pointer-equal handles, so a comparer can skip the deep path
    /// comparison for them.
    pub fn shared_pairs(&self) -> impl Iterator<Item = (&(String, String), &Arc<PathSet>)> {
        self.pairs.iter()
    }

    /// Number of host pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The data plane restricted to pairs whose endpoints are both in
    /// `hosts` — used to compare an anonymized network with the original on
    /// the *real* hosts only (fake hosts are outside the equivalence
    /// mapping, Appendix A).
    pub fn restricted_to(&self, hosts: &BTreeSet<String>) -> DataPlane {
        DataPlane {
            pairs: self
                .pairs
                .iter()
                .filter(|((s, d), _)| hosts.contains(s) && hosts.contains(d))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Exact route equivalence on a host subset: identical path sets for
    /// every pair (Definition 3.3's *route equivalence*).
    pub fn equivalent_on(&self, other: &DataPlane, hosts: &BTreeSet<String>) -> bool {
        self.restricted_to(hosts) == other.restricted_to(hosts)
    }

    /// Inserts a pair (used by the extractor and tests).
    pub fn insert(&mut self, src: String, dst: String, paths: PathSet) {
        self.insert_shared(src, dst, Arc::new(paths));
    }

    /// Inserts an already-shared path set without copying it.
    pub fn insert_shared(&mut self, src: String, dst: String, paths: Arc<PathSet>) {
        self.pairs.insert((src, dst), paths);
    }
}

/// Extracts the complete data plane: every ordered host pair.
///
/// Host pairs are independent, so tracing fans out pair-by-pair over the
/// shared executor (dynamic chunk claiming — the dominant cost of repeated
/// simulation in the anonymization pipeline, §5.4). Host names are
/// resolved once into an indexed table instead of `net.host(id).name`
/// lookups inside the hot pair loop, and the table is name-sorted so the
/// traced rows come out already in key order and the map bulk-builds from
/// a sorted sequence instead of rebalancing per insert. Results merge by
/// pair index, so the data plane is byte-identical at any worker count.
///
/// A panic inside one trace is contained: every sibling worker is still
/// joined and the first payload surfaces as [`SimError::TracePanic`]
/// instead of aborting the process.
pub fn extract_dataplane(net: &SimNetwork, fibs: &Fibs) -> Result<DataPlane, SimError> {
    let mut hosts: Vec<HostId> = net.hosts_iter().map(|(id, _)| id).collect();
    hosts.sort_by(|a, b| net.host(*a).name.cmp(&net.host(*b).name));
    let names: Vec<Arc<str>> = hosts
        .iter()
        .map(|&id| Arc::from(net.host(id).name.as_str()))
        .collect();
    // Ordered pairs in (src, dst) index order == (src, dst) name order.
    let mut pair_ids: Vec<(usize, usize)> = Vec::with_capacity(hosts.len() * hosts.len());
    for s in 0..hosts.len() {
        for d in 0..hosts.len() {
            if s != d {
                pair_ids.push((s, d));
            }
        }
    }

    let traced = confmask_exec::try_par_map(&pair_ids, |&(s, d)| {
        trace(net, fibs, hosts[s], hosts[d])
    })
    .map_err(|p| SimError::TracePanic(p.message()))?;

    let rows = pair_ids
        .iter()
        .zip(traced)
        .map(|(&(s, d), ps)| ((names[s].to_string(), names[d].to_string()), Arc::new(ps)));
    Ok(DataPlane {
        pairs: BTreeMap::from_iter(rows),
    })
}

/// An arena-backed path set over router *ids*: every enumerated path is a
/// span into one flat hop vector, so tracing a pair allocates nothing past
/// the first reuse and classifying the result never clones a device name.
///
/// `RouterId`s are assigned in lexicographic hostname order
/// ([`SimNetwork::build`]), so sorting id sequences orders spans exactly as
/// [`trace`] orders its name paths — a materialized arena is byte-identical
/// to the `PathSet` the name-level tracer would have produced. A span of
/// length zero is the same-LAN direct path (`[h_s, h_d]`, no routers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathArena {
    /// Flat hop storage: router ids of every span, back to back.
    hops: Vec<u32>,
    /// One `(start, len)` span into `hops` per path.
    spans: Vec<(u32, u32)>,
    /// Some branch dropped traffic (no FIB entry / undeliverable).
    pub blackhole: bool,
    /// Some branch entered a forwarding loop.
    pub has_loop: bool,
}

impl PathArena {
    /// Resets the arena for the next pair, keeping the allocations.
    pub fn clear(&mut self) {
        self.hops.clear();
        self.spans.clear();
        self.blackhole = false;
        self.has_loop = false;
    }

    /// Number of recorded paths.
    pub fn path_count(&self) -> usize {
        self.spans.len()
    }

    /// Fully reachable: at least one path and no anomalous branch
    /// (mirror of [`PathSet::clean`]).
    pub fn clean(&self) -> bool {
        !self.spans.is_empty() && !self.blackhole && !self.has_loop
    }

    /// Iterates the paths as router-id slices (host endpoints excluded).
    pub fn paths(&self) -> impl Iterator<Item = &[u32]> {
        self.spans
            .iter()
            .map(|&(start, len)| &self.hops[start as usize..(start + len) as usize])
    }

    fn push_walk(&mut self, walk: &[RouterId]) {
        let start = self.hops.len() as u32;
        self.hops.extend(walk.iter().map(|r| r.0));
        self.spans.push((start, walk.len() as u32));
    }

    /// Sorts spans by hop sequence and drops duplicates — the id-level
    /// equivalent of the `sort` + `dedup` the name tracer applies.
    fn sort_dedup(&mut self) {
        let PathArena { hops, spans, .. } = self;
        let seg = |&(start, len): &(u32, u32)| &hops[start as usize..(start + len) as usize];
        spans.sort_by(|a, b| seg(a).cmp(seg(b)));
        spans.dedup_by(|a, b| seg(a) == seg(b));
    }

    /// Materializes the arena into a name-level [`PathSet`] with the given
    /// host endpoints.
    pub fn materialize(&self, net: &SimNetwork, src_name: &str, dst_name: &str) -> PathSet {
        let mut paths = Vec::with_capacity(self.spans.len());
        for hops in self.paths() {
            let mut p = Vec::with_capacity(hops.len() + 2);
            p.push(src_name.to_string());
            p.extend(hops.iter().map(|&r| net.router(RouterId(r)).name.clone()));
            p.push(dst_name.to_string());
            paths.push(p);
        }
        PathSet {
            paths,
            blackhole: self.blackhole,
            has_loop: self.has_loop,
        }
    }

    /// Allocation-free equality against a name-level path set: true iff
    /// [`PathArena::materialize`] would compare equal to `ps`. Host
    /// endpoints are equal by construction (the caller traced the same
    /// pair), so only flags and interior router names are compared.
    pub fn matches(&self, net: &SimNetwork, ps: &PathSet) -> bool {
        if self.blackhole != ps.blackhole
            || self.has_loop != ps.has_loop
            || self.spans.len() != ps.paths.len()
        {
            return false;
        }
        self.paths().zip(ps.paths.iter()).all(|(hops, path)| {
            path.len() == hops.len() + 2
                && hops
                    .iter()
                    .zip(path[1..].iter())
                    .all(|(&r, name)| net.router(RouterId(r)).name == *name)
        })
    }
}

/// Traces all forwarding paths from `src` to `dst` (the paper's
/// `traceroute(h_a, h_b)`).
pub fn trace(net: &SimNetwork, fibs: &Fibs, src: HostId, dst: HostId) -> PathSet {
    let mut arena = PathArena::default();
    trace_into(net, fibs, src, dst, &mut arena);
    let src_node = net.host(src);
    let dst_node = net.host(dst);
    arena.materialize(net, &src_node.name, &dst_node.name)
}

/// Traces `src → dst` into a caller-owned arena — the allocation-free core
/// of [`trace`]. The arena is cleared first, so it can be reused across an
/// entire sweep of pairs.
pub fn trace_into(net: &SimNetwork, fibs: &Fibs, src: HostId, dst: HostId, out: &mut PathArena) {
    out.clear();
    let src_node = net.host(src);
    let dst_node = net.host(dst);

    let Some((gw, _)) = src_node.attachment else {
        out.blackhole = true;
        return;
    };

    // Same-LAN special case: src and dst share a segment — direct delivery
    // (a zero-length span: no interior routers).
    if src_node.prefix == dst_node.prefix && src_node.attachment == dst_node.attachment {
        out.spans.push((out.hops.len() as u32, 0));
        return;
    }

    let mut walk: Vec<RouterId> = vec![gw];
    dfs(net, fibs, dst, &mut walk, out);
    out.sort_dedup();
}

fn dfs(net: &SimNetwork, fibs: &Fibs, dst: HostId, walk: &mut Vec<RouterId>, out: &mut PathArena) {
    if out.spans.len() >= MAX_PATHS_PER_PAIR {
        return;
    }
    let cur = *walk.last().expect("walk non-empty");
    let dst_node = net.host(dst);
    let entry = fibs.of(cur).lookup(dst_node.addr);
    let Some(entry) = entry else {
        out.blackhole = true;
        return;
    };
    for nh in &entry.next_hops {
        match nh {
            NextHop::Deliver { iface } => {
                // Delivery succeeds only if the destination host actually
                // sits on this router+interface.
                if dst_node.attachment == Some((cur, *iface)) {
                    out.push_walk(walk);
                } else {
                    out.blackhole = true;
                }
            }
            NextHop::Forward { router, .. } => {
                if walk.contains(router) {
                    out.has_loop = true;
                    continue;
                }
                walk.push(*router);
                dfs(net, fibs, dst, walk, out);
                walk.pop();
            }
        }
    }
}

/// The set of hosts reachable (cleanly) from a given router — used by the
/// route-anonymization algorithm (Algorithm 2) to check it never breaks
/// reachability.
pub fn reachable_hosts_from_router(net: &SimNetwork, fibs: &Fibs, r: RouterId) -> BTreeSet<HostId> {
    let mut reachable = BTreeSet::new();
    let mut out = PathArena::default();
    for (hid, _h) in net.hosts_iter() {
        out.clear();
        let mut walk = vec![r];
        dfs(net, fibs, hid, &mut walk, &mut out);
        if out.clean() {
            reachable.insert(hid);
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs};

    fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
        HostConfig {
            hostname: name.into(),
            iface_name: "eth0".into(),
            address: (addr.parse().unwrap(), 24),
            gateway: gw.parse().unwrap(),
            extra: vec![],
            added: false,
        }
    }

    /// r1 —— r2, one host each; OSPF everywhere.
    fn two_net() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.2.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let mut cfgs = NetworkConfigs::new(
            [r1, r2],
            [
                host("h1", "10.1.1.100", "10.1.1.1"),
                host("h2", "10.1.2.100", "10.1.2.1"),
            ],
        );
        // Fix the `network 0.0.0.0/0` statements (wildcard form parses as /0 with address 0.0.0.0 — make it explicit).
        for rc in cfgs.routers.values_mut() {
            rc.ospf.as_mut().unwrap().networks[0].prefix = "0.0.0.0/0".parse().unwrap();
        }
        cfgs
    }

    #[test]
    fn end_to_end_two_router_path() {
        let sim = simulate(&two_net()).unwrap();
        let ps = sim.dataplane.between("h1", "h2").unwrap();
        assert!(ps.clean());
        assert_eq!(
            ps.paths,
            vec![vec![
                "h1".to_string(),
                "r1".into(),
                "r2".into(),
                "h2".into()
            ]]
        );
        // And the reverse direction.
        let ps = sim.dataplane.between("h2", "h1").unwrap();
        assert_eq!(
            ps.paths,
            vec![vec![
                "h2".to_string(),
                "r2".into(),
                "r1".into(),
                "h1".into()
            ]]
        );
    }

    #[test]
    fn same_lan_hosts_are_direct() {
        let mut cfgs = two_net();
        cfgs.hosts
            .insert("h1b".into(), host("h1b", "10.1.1.101", "10.1.1.1"));
        let sim = simulate(&cfgs).unwrap();
        let ps = sim.dataplane.between("h1", "h1b").unwrap();
        assert_eq!(ps.paths, vec![vec!["h1".to_string(), "h1b".into()]]);
    }

    #[test]
    fn missing_route_is_blackhole() {
        let mut cfgs = two_net();
        // Withdraw r2's LAN from OSPF.
        let r2 = cfgs.routers.get_mut("r2").unwrap();
        r2.ospf.as_mut().unwrap().networks[0].prefix = "10.0.0.0/31".parse().unwrap();
        let sim = simulate(&cfgs).unwrap();
        let ps = sim.dataplane.between("h1", "h2").unwrap();
        assert!(ps.blackhole);
        assert!(ps.paths.is_empty());
    }

    #[test]
    fn detached_host_is_blackhole() {
        let mut cfgs = two_net();
        cfgs.hosts.get_mut("h1").unwrap().gateway = "10.1.1.9".parse().unwrap();
        let sim = simulate(&cfgs).unwrap();
        assert!(sim.dataplane.between("h1", "h2").unwrap().blackhole);
    }

    #[test]
    fn reachability_from_each_router() {
        let sim = simulate(&two_net()).unwrap();
        for (rid, _) in sim.net.routers_iter() {
            let reach = reachable_hosts_from_router(&sim.net, &sim.fibs, rid);
            assert_eq!(reach.len(), 2, "every router reaches both hosts");
        }
    }

    #[test]
    fn pair_bits_set_get_iter() {
        let mut bits = PairBits::new(130);
        assert_eq!(bits.len(), 130);
        assert_eq!(bits.count_ones(), 0);
        for i in [0usize, 63, 64, 129] {
            bits.set(i);
        }
        assert!(bits.get(0) && bits.get(63) && bits.get(64) && bits.get(129));
        assert!(!bits.get(1) && !bits.get(500));
        assert_eq!(bits.count_ones(), 4);
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(bits.words().len(), 3);
    }

    #[test]
    fn arena_trace_matches_name_trace() {
        let sim = simulate(&two_net()).unwrap();
        let mut arena = PathArena::default();
        let ids: Vec<HostId> = sim.net.hosts_iter().map(|(id, _)| id).collect();
        for &s in &ids {
            for &d in &ids {
                if s == d {
                    continue;
                }
                trace_into(&sim.net, &sim.fibs, s, d, &mut arena);
                let named = trace(&sim.net, &sim.fibs, s, d);
                let (sn, dn) = (&sim.net.host(s).name, &sim.net.host(d).name);
                assert_eq!(arena.materialize(&sim.net, sn, dn), named);
                assert!(arena.matches(&sim.net, &named));
                // And a perturbed path set must NOT match.
                let mut other = named.clone();
                other.blackhole = !other.blackhole;
                assert!(!arena.matches(&sim.net, &other));
            }
        }
    }

    #[test]
    fn arena_same_lan_is_zero_length_span() {
        let mut cfgs = two_net();
        cfgs.hosts
            .insert("h1b".into(), host("h1b", "10.1.1.101", "10.1.1.1"));
        let sim = simulate(&cfgs).unwrap();
        let h1 = sim.net.hosts_iter().find(|(_, h)| h.name == "h1").unwrap().0;
        let h1b = sim
            .net
            .hosts_iter()
            .find(|(_, h)| h.name == "h1b")
            .unwrap()
            .0;
        let mut arena = PathArena::default();
        trace_into(&sim.net, &sim.fibs, h1, h1b, &mut arena);
        assert_eq!(arena.path_count(), 1);
        assert_eq!(arena.paths().next().unwrap().len(), 0);
        assert_eq!(
            arena.materialize(&sim.net, "h1", "h1b").paths,
            vec![vec!["h1".to_string(), "h1b".into()]]
        );
    }

    #[test]
    fn restricted_to_filters_pairs() {
        let sim = simulate(&two_net()).unwrap();
        let only_h1: BTreeSet<String> = ["h1".to_string()].into();
        assert!(sim.dataplane.restricted_to(&only_h1).is_empty());
        let both: BTreeSet<String> = ["h1".to_string(), "h2".to_string()].into();
        assert_eq!(sim.dataplane.restricted_to(&both).len(), 2);
        assert!(sim.dataplane.equivalent_on(&sim.dataplane, &both));
    }
}
