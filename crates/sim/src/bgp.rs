//! BGP: router-level path-vector with eBGP sessions and an implicit iBGP
//! full mesh.
//!
//! Model (the subset ConfMask's networks exercise):
//!
//! * Every router with a `router bgp` block participates; its ASN groups it
//!   into an AS.
//! * A router **originates** a prefix when it has a `network` statement for
//!   it and owns a connected interface on it.
//! * **eBGP**: a session advertises the sender's best route with the
//!   sender's ASN prepended. AS-path loop prevention rejects routes whose
//!   path already contains the receiver's ASN. An inbound per-neighbor
//!   `distribute-list` drops denied prefixes on arrival — this is where
//!   ConfMask's BGP route-equivalence filters act.
//! * **iBGP** (full mesh, implicit): every router sees the best routes of
//!   every same-AS router that originated them or learned them via eBGP
//!   (standard no-re-advertisement rule). Forwarding toward an iBGP route
//!   resolves through the IGP to the egress router.
//! * **Decision process**: locally originated wins; then shortest AS-path;
//!   then eBGP over iBGP; then lowest neighbor/egress id — a deterministic
//!   total order, so the simulation always lands in *one* of the protocol's
//!   stable states (BGP picks a local equilibrium rather than a global
//!   optimum \[18\], which is why ConfMask must re-simulate after each round
//!   of filters, §4.3).
//!
//! Synchronous iteration to a fixpoint; instances with no stable state
//! (Griffin's "bad gadgets") are reported as [`SimError::BgpDiverged`].

use crate::error::SimError;
use crate::fib::RouteSource;
use crate::network::SimNetwork;
use crate::ospf::RouterPaths;
use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// The route BGP contributes to a router's RIB for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpFibRoute {
    /// [`RouteSource::Ebgp`] or [`RouteSource::Ibgp`].
    pub source: RouteSource,
    /// Resolved next hops `(out_iface, neighbor)`.
    pub next_hops: Vec<(usize, RouterId)>,
    /// For eBGP routes, the session peer address (filter attachment point).
    pub session_peer: Option<Ipv4Addr>,
    /// Length of the winning AS path.
    pub as_path_len: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Learned {
    Origin,
    Ebgp { session: usize },
    Ibgp { egress: RouterId },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    as_path: Vec<Asn>,
    /// Local preference (assigned at the eBGP ingress, carried over iBGP).
    local_pref: u32,
    learned: Learned,
}

impl Candidate {
    /// Deterministic preference key (lower wins): locally originated, then
    /// highest local preference, then shortest AS path, then eBGP over
    /// iBGP, then lowest neighbor id.
    fn key(&self) -> (u8, u32, usize, u8, u32) {
        let pref = u32::MAX - self.local_pref;
        match &self.learned {
            Learned::Origin => (0, 0, 0, 0, 0),
            Learned::Ebgp { session } => (1, pref, self.as_path.len(), 0, *session as u32),
            Learned::Ibgp { egress } => (1, pref, self.as_path.len(), 1, egress.0),
        }
    }
}

type BestMap = Vec<BTreeMap<Ipv4Prefix, Candidate>>;

/// Runs BGP to a stable state and returns per-router FIB contributions.
pub fn compute(
    net: &SimNetwork,
    igp: &RouterPaths,
) -> Result<Vec<BTreeMap<Ipv4Prefix, BgpFibRoute>>, SimError> {
    let n = net.router_count();
    let any_bgp = net.routers.iter().any(|r| r.asn.is_some());
    if !any_bgp {
        return Ok(vec![BTreeMap::new(); n]);
    }

    // Origin routes.
    let mut best: BestMap = vec![BTreeMap::new(); n];
    for (rid, r) in net.routers_iter() {
        if r.asn.is_none() {
            continue;
        }
        for p in &r.bgp_networks {
            if r.ifaces.iter().any(|i| i.prefix == *p) {
                best[rid.0 as usize].insert(
                    *p,
                    Candidate {
                        as_path: Vec::new(),
                        local_pref: u32::MAX, // locally originated always wins
                        learned: Learned::Origin,
                    },
                );
            }
        }
    }

    let max_rounds = 2 * n + 20;
    let mut stable = false;
    let mut rounds = 0u64;
    for _round in 0..max_rounds {
        rounds += 1;
        let new_best = step(net, &best, igp);
        if new_best == best {
            stable = true;
            break;
        }
        best = new_best;
    }
    confmask_obs::counter_add("sim.bgp.rounds", rounds);
    if !stable {
        // One extra check: a fixpoint could land exactly on the last step.
        let new_best = step(net, &best, igp);
        if new_best != best {
            return Err(SimError::BgpDiverged { rounds: max_rounds });
        }
    }

    // Resolve bests into FIB contributions.
    let mut out: Vec<BTreeMap<Ipv4Prefix, BgpFibRoute>> = vec![BTreeMap::new(); n];
    for (rid, r) in net.routers_iter() {
        let u = rid.0 as usize;
        for (p, cand) in &best[u] {
            match &cand.learned {
                Learned::Origin => {} // the connected route covers it
                Learned::Ebgp { session } => {
                    let s = &r.sessions[*session];
                    if let (Some(iface), Some((peer, _))) = (s.local_iface, s.peer) {
                        out[u].insert(
                            *p,
                            BgpFibRoute {
                                source: RouteSource::Ebgp,
                                next_hops: vec![(iface, peer)],
                                session_peer: Some(s.peer_addr),
                                as_path_len: cand.as_path.len(),
                            },
                        );
                    }
                }
                Learned::Ibgp { egress } => {
                    // iBGP next hops resolve through the IGP toward the
                    // egress. An inbound IGP distribute-list for the
                    // destination prefix also suppresses the resolved hop at
                    // FIB-installation time (this is the semantics ConfMask's
                    // route-equivalence filters rely on to steer traffic off
                    // fake intra-AS links for BGP-learned destinations; the
                    // fake links are equal-cost by construction, so the
                    // original IGP hops always remain).
                    let mut hops = igp.next_hops[u][egress.0 as usize].clone();
                    hops.retain(|&(ii, _)| !r.ifaces[ii].igp_denies(p));
                    if !hops.is_empty() {
                        out[u].insert(
                            *p,
                            BgpFibRoute {
                                source: RouteSource::Ibgp,
                                next_hops: hops,
                                session_peer: None,
                                as_path_len: cand.as_path.len(),
                            },
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

/// One synchronous round: recompute every router's best from the previous
/// round's bests.
fn step(net: &SimNetwork, prev: &BestMap, igp: &RouterPaths) -> BestMap {
    let n = net.router_count();
    let mut next: BestMap = vec![BTreeMap::new(); n];

    for (rid, r) in net.routers_iter() {
        let u = rid.0 as usize;
        let Some(asn) = r.asn else { continue };
        let mut candidates: BTreeMap<Ipv4Prefix, Vec<Candidate>> = BTreeMap::new();

        // Origins persist.
        for p in &r.bgp_networks {
            if r.ifaces.iter().any(|i| i.prefix == *p) {
                candidates.entry(*p).or_default().push(Candidate {
                    as_path: Vec::new(),
                    local_pref: u32::MAX,
                    learned: Learned::Origin,
                });
            }
        }

        // eBGP: peers advertise their previous-round best, prepending their
        // ASN.
        for (si, s) in r.sessions.iter().enumerate() {
            let Some((peer, _)) = s.peer else { continue };
            let peer_node = net.router(peer);
            let Some(peer_asn) = peer_node.asn else {
                continue;
            };
            if peer_asn == asn {
                continue; // iBGP is modelled implicitly
            }
            // The peer's configured view of us must match for the session to
            // come up (both directions configured).
            let reciprocal = peer_node
                .sessions
                .iter()
                .any(|ps| ps.peer.map(|(q, _)| q) == Some(rid) && ps.remote_as == asn);
            if !reciprocal {
                continue;
            }
            for (p, cand) in &prev[peer.0 as usize] {
                let mut as_path = Vec::with_capacity(cand.as_path.len() + 1);
                as_path.push(peer_asn);
                as_path.extend_from_slice(&cand.as_path);
                if as_path.contains(&asn) {
                    continue; // loop prevention
                }
                if s.denies(p) {
                    continue; // inbound filter
                }
                candidates.entry(*p).or_default().push(Candidate {
                    as_path,
                    local_pref: s.local_pref,
                    learned: Learned::Ebgp { session: si },
                });
            }
        }

        // iBGP full mesh: same-AS routers share eBGP-learned/originated
        // bests. A candidate is only usable (installable and
        // re-advertisable) if at least one IGP next hop toward the egress
        // both exists (real BGP's next-hop validation) and survives this
        // router's inbound filters for the destination — a route that can
        // never be installed must not be selected, or the router would
        // advertise reachability it cannot provide (creating exactly the
        // black holes ConfMask's equivalence checker would reject).
        for (qid, q) in net.routers_iter() {
            if qid == rid || q.asn != Some(asn) {
                continue;
            }
            let hops = &igp.next_hops[u][qid.0 as usize];
            if hops.is_empty() {
                continue; // egress unreachable: next-hop validation fails
            }
            for (p, cand) in &prev[qid.0 as usize] {
                let installable = hops.iter().any(|&(ii, _)| !r.ifaces[ii].igp_denies(p));
                if !installable {
                    continue;
                }
                match cand.learned {
                    Learned::Origin | Learned::Ebgp { .. } => {
                        candidates.entry(*p).or_default().push(Candidate {
                            as_path: cand.as_path.clone(),
                            local_pref: cand.local_pref,
                            learned: Learned::Ibgp { egress: qid },
                        });
                    }
                    Learned::Ibgp { .. } => {}
                }
            }
        }

        for (p, cands) in candidates {
            if let Some(bestc) = cands.into_iter().min_by_key(|c| c.key()) {
                next[u].insert(p, bestc);
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ospf;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs};

    /// Three ASes in a line plus an optional shortcut AS1–AS3:
    /// r1 (AS1, h1) — r2 (AS2) — r3 (AS3, h3); shortcut link r1—r3.
    fn tri_as(shortcut: bool) -> NetworkConfigs {
        let mut r1 = String::from(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.1.1 255.255.255.0\n!\n",
        );
        let mut r3 = String::from(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.23.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.3.1 255.255.255.0\n!\n",
        );
        if shortcut {
            r1.push_str("interface Ethernet0/2\n ip address 10.0.13.0 255.255.255.254\n!\n");
            r3.push_str("interface Ethernet0/2\n ip address 10.0.13.1 255.255.255.254\n!\n");
        }
        r1.push_str(
            "router bgp 1\n network 10.1.1.0 mask 255.255.255.0\n neighbor 10.0.12.1 remote-as 2\n",
        );
        r3.push_str(
            "router bgp 3\n network 10.1.3.0 mask 255.255.255.0\n neighbor 10.0.23.0 remote-as 2\n",
        );
        if shortcut {
            r1.push_str(" neighbor 10.0.13.1 remote-as 3\n");
            r3.push_str(" neighbor 10.0.13.0 remote-as 1\n");
        }
        r1.push_str("!\n");
        r3.push_str("!\n");
        let r2 = "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\nrouter bgp 2\n neighbor 10.0.12.0 remote-as 1\n neighbor 10.0.23.1 remote-as 3\n!\n";

        let h1 = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.1.100".parse().unwrap(), 24),
            gateway: "10.1.1.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let h3 = HostConfig {
            hostname: "h3".into(),
            iface_name: "eth0".into(),
            address: ("10.1.3.100".parse().unwrap(), 24),
            gateway: "10.1.3.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new(
            [
                parse_router(&r1).unwrap(),
                parse_router(r2).unwrap(),
                parse_router(&r3).unwrap(),
            ],
            [h1, h3],
        )
    }

    fn routes_for(cfgs: &NetworkConfigs) -> (SimNetwork, Vec<BTreeMap<Ipv4Prefix, BgpFibRoute>>) {
        let net = SimNetwork::build(cfgs).unwrap();
        let igp = ospf::router_paths(&net);
        let routes = compute(&net, &igp).unwrap();
        (net, routes)
    }

    #[test]
    fn propagates_across_two_hops() {
        let (net, routes) = routes_for(&tri_as(false));
        let r1 = net.router_id("r1").unwrap();
        let r2 = net.router_id("r2").unwrap();
        let lan3: Ipv4Prefix = "10.1.3.0/24".parse().unwrap();
        let route = &routes[r1.0 as usize][&lan3];
        assert_eq!(route.source, RouteSource::Ebgp);
        assert_eq!(route.as_path_len, 2); // via AS2, AS3
        assert_eq!(route.next_hops, vec![(0, r2)]);
    }

    #[test]
    fn prefers_shorter_as_path() {
        let (net, routes) = routes_for(&tri_as(true));
        let r1 = net.router_id("r1").unwrap();
        let r3 = net.router_id("r3").unwrap();
        let lan3: Ipv4Prefix = "10.1.3.0/24".parse().unwrap();
        let route = &routes[r1.0 as usize][&lan3];
        assert_eq!(route.as_path_len, 1, "direct AS3 path wins");
        assert_eq!(route.next_hops[0].1, r3);
    }

    #[test]
    fn session_filter_reverts_to_longer_path() {
        let mut cfgs = tri_as(true);
        // Filter the direct advertisement of lan3 at r1's session to r3.
        {
            let r1 = cfgs.routers.get_mut("r1").unwrap();
            r1.prefix_lists.push(confmask_config::PrefixList {
                name: "F".into(),
                entries: vec![confmask_config::PrefixListEntry {
                    seq: 5,
                    action: confmask_config::FilterAction::Deny,
                    prefix: "10.1.3.0/24".parse().unwrap(),
                    added: false,
                }],
            });
            r1.bgp.as_mut().unwrap().distribute_lists.push(
                confmask_config::DistributeListBinding::Neighbor {
                    list: "F".into(),
                    neighbor: "10.0.13.1".parse().unwrap(),
                    added: false,
                },
            );
        }
        let (net, routes) = routes_for(&cfgs);
        let r1 = net.router_id("r1").unwrap();
        let r2 = net.router_id("r2").unwrap();
        let lan3: Ipv4Prefix = "10.1.3.0/24".parse().unwrap();
        let route = &routes[r1.0 as usize][&lan3];
        assert_eq!(route.as_path_len, 2, "falls back to the AS2 path");
        assert_eq!(route.next_hops[0].1, r2);
    }

    #[test]
    fn loop_prevention_blocks_own_asn() {
        // With the shortcut, r1's own lan1 must never be learned back from
        // r3 (its path would contain AS1).
        let (net, routes) = routes_for(&tri_as(true));
        let r1 = net.router_id("r1").unwrap();
        let lan1: Ipv4Prefix = "10.1.1.0/24".parse().unwrap();
        assert!(!routes[r1.0 as usize].contains_key(&lan1));
    }

    #[test]
    fn one_sided_session_does_not_come_up() {
        let mut cfgs = tri_as(false);
        // Remove r2's neighbor statement toward r3.
        cfgs.routers
            .get_mut("r2")
            .unwrap()
            .bgp
            .as_mut()
            .unwrap()
            .neighbors
            .retain(|n| n.addr != "10.0.23.1".parse::<Ipv4Addr>().unwrap());
        let (net, routes) = routes_for(&cfgs);
        let r1 = net.router_id("r1").unwrap();
        let lan3: Ipv4Prefix = "10.1.3.0/24".parse().unwrap();
        assert!(!routes[r1.0 as usize].contains_key(&lan3));
    }

    #[test]
    fn non_bgp_network_is_empty() {
        let cfgs = NetworkConfigs::new(
            [parse_router(
                "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n!\n",
            )
            .unwrap()],
            [],
        );
        let (_, routes) = routes_for(&cfgs);
        assert!(routes[0].is_empty());
    }
}
