//! Network model extraction from configuration files.
//!
//! Mirrors what Batfish's parsing stage provides to ConfMask: resolved
//! interfaces, links (interface pairs sharing a prefix), protocol activation
//! (Cisco `network`-statement semantics: a statement enables the protocol on
//! every interface whose address it covers), BGP sessions, and route filters
//! resolved to their prefix lists.

use crate::error::SimError;
use confmask_config::{
    DistributeListBinding, HostConfig, NetworkConfigs, PrefixList, RouterConfig, StaticRoute,
    DEFAULT_OSPF_COST,
};
use confmask_net_types::{Asn, HostId, Ipv4Addr, Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// The device on the far side of an interface's L2 segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// Another router (id and its interface index).
    Router {
        /// Peer router.
        router: RouterId,
        /// Index of the peer's interface on the shared segment.
        iface: usize,
    },
    /// A host attached to this interface's LAN.
    Host(HostId),
}

/// A resolved router interface.
#[derive(Debug, Clone)]
pub struct IfaceNode {
    /// Interface name (e.g. `Ethernet0/0`).
    pub name: String,
    /// Interface address.
    pub addr: Ipv4Addr,
    /// Connected prefix.
    pub prefix: Ipv4Prefix,
    /// Effective OSPF cost (explicit or [`DEFAULT_OSPF_COST`]).
    pub cost: u32,
    /// Devices sharing the segment.
    pub peers: Vec<Peer>,
    /// OSPF runs on this interface (covered by a `network ... area`).
    pub ospf_active: bool,
    /// RIP runs on this interface.
    pub rip_active: bool,
    /// Inbound IGP route filters bound to this interface.
    pub igp_filters: Vec<PrefixList>,
    /// Whether this interface was added by anonymization (provenance).
    pub added: bool,
}

impl IfaceNode {
    /// Whether an inbound IGP filter on this interface denies `prefix`.
    pub fn igp_denies(&self, prefix: &Ipv4Prefix) -> bool {
        self.igp_filters
            .iter()
            .any(|l| l.evaluate(prefix) == confmask_config::FilterAction::Deny)
    }
}

/// A resolved (e)BGP session.
#[derive(Debug, Clone)]
pub struct BgpSession {
    /// Index of the local interface carrying the session.
    pub local_iface: Option<usize>,
    /// Configured peer address.
    pub peer_addr: Ipv4Addr,
    /// Resolved peer router and its interface, when the address matches a
    /// modelled device.
    pub peer: Option<(RouterId, usize)>,
    /// Peer AS.
    pub remote_as: Asn,
    /// Local preference assigned to routes learned here (default 100).
    pub local_pref: u32,
    /// Inbound route filters for this session.
    pub in_filters: Vec<PrefixList>,
}

impl BgpSession {
    /// Whether an inbound filter on this session denies `prefix`.
    pub fn denies(&self, prefix: &Ipv4Prefix) -> bool {
        self.in_filters
            .iter()
            .any(|l| l.evaluate(prefix) == confmask_config::FilterAction::Deny)
    }
}

/// A resolved router.
#[derive(Debug, Clone)]
pub struct RouterNode {
    /// Hostname.
    pub name: String,
    /// Local AS (when running BGP).
    pub asn: Option<Asn>,
    /// Interfaces (index = interface id used across the simulator).
    pub ifaces: Vec<IfaceNode>,
    /// Prefixes this router's BGP originates (`network ... mask ...`).
    pub bgp_networks: Vec<Ipv4Prefix>,
    /// BGP sessions.
    pub sessions: Vec<BgpSession>,
    /// Static routes (`ip route ...`), resolved lazily at FIB merge.
    pub static_routes: Vec<StaticRoute>,
    /// Router runs OSPF.
    pub runs_ospf: bool,
    /// Router runs RIP.
    pub runs_rip: bool,
}

/// A resolved host.
#[derive(Debug, Clone)]
pub struct HostNode {
    /// Hostname.
    pub name: String,
    /// Host address.
    pub addr: Ipv4Addr,
    /// LAN prefix.
    pub prefix: Ipv4Prefix,
    /// Configured gateway.
    pub gateway: Ipv4Addr,
    /// The router interface acting as gateway, when resolvable.
    pub attachment: Option<(RouterId, usize)>,
    /// Whether this is an anonymization-added fake host (provenance).
    pub added: bool,
}

/// The fully resolved network model.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    /// Routers, indexed by [`RouterId`].
    pub routers: Vec<RouterNode>,
    /// Hosts, indexed by [`HostId`].
    pub hosts: Vec<HostNode>,
    /// Destination prefixes to route: every host LAN, with its hosts.
    pub destinations: Vec<(Ipv4Prefix, Vec<HostId>)>,
    router_index: BTreeMap<String, RouterId>,
    host_index: BTreeMap<String, HostId>,
}

impl SimNetwork {
    /// Router id by hostname.
    pub fn router_id(&self, name: &str) -> Option<RouterId> {
        self.router_index.get(name).copied()
    }

    /// Host id by hostname.
    pub fn host_id(&self, name: &str) -> Option<HostId> {
        self.host_index.get(name).copied()
    }

    /// The router node for an id.
    pub fn router(&self, id: RouterId) -> &RouterNode {
        &self.routers[id.0 as usize]
    }

    /// The host node for an id.
    pub fn host(&self, id: HostId) -> &HostNode {
        &self.hosts[id.0 as usize]
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Iterator over `(RouterId, &RouterNode)`.
    pub fn routers_iter(&self) -> impl Iterator<Item = (RouterId, &RouterNode)> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, r)| (RouterId(i as u32), r))
    }

    /// Iterator over `(HostId, &HostNode)`.
    pub fn hosts_iter(&self) -> impl Iterator<Item = (HostId, &HostNode)> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| (HostId(i as u32), h))
    }

    /// Whether two routers share at least one link.
    pub fn adjacent(&self, a: RouterId, b: RouterId) -> bool {
        self.router(a).ifaces.iter().any(|i| {
            i.peers
                .iter()
                .any(|p| matches!(p, Peer::Router { router, .. } if *router == b))
        })
    }

    /// Builds the model from configurations.
    pub fn build(configs: &NetworkConfigs) -> Result<Self, SimError> {
        let router_names: Vec<&String> = configs.routers.keys().collect();
        let router_index: BTreeMap<String, RouterId> = router_names
            .iter()
            .enumerate()
            .map(|(i, n)| ((*n).clone(), RouterId(i as u32)))
            .collect();
        let host_index: BTreeMap<String, HostId> = configs
            .hosts
            .keys()
            .enumerate()
            .map(|(i, n)| (n.clone(), HostId(i as u32)))
            .collect();

        // Pass 1: interfaces with protocol activation.
        let mut routers: Vec<RouterNode> = configs
            .routers
            .values()
            .map(build_router)
            .collect::<Result<_, _>>()?;

        // Pass 2: resolve peers — group (router, iface) by exact prefix.
        let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<(RouterId, usize)>> = BTreeMap::new();
        for (ri, r) in routers.iter().enumerate() {
            for (ii, iface) in r.ifaces.iter().enumerate() {
                by_prefix
                    .entry(iface.prefix)
                    .or_default()
                    .push((RouterId(ri as u32), ii));
            }
        }
        for members in by_prefix.values() {
            for &(ra, ia) in members {
                for &(rb, ib) in members {
                    if ra == rb {
                        continue;
                    }
                    routers[ra.0 as usize].ifaces[ia].peers.push(Peer::Router {
                        router: rb,
                        iface: ib,
                    });
                }
            }
        }

        // Pass 3: hosts and their attachments.
        let mut hosts: Vec<HostNode> = Vec::with_capacity(configs.hosts.len());
        for hc in configs.hosts.values() {
            hosts.push(build_host(hc, &routers)?);
        }
        for (hi, h) in hosts.iter().enumerate() {
            if let Some((rid, ii)) = h.attachment {
                routers[rid.0 as usize].ifaces[ii]
                    .peers
                    .push(Peer::Host(HostId(hi as u32)));
            }
        }

        // Pass 4: BGP sessions (needs the global address map).
        let addr_owner: BTreeMap<Ipv4Addr, (RouterId, usize)> = routers
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| {
                r.ifaces
                    .iter()
                    .enumerate()
                    .map(move |(ii, i)| (i.addr, (RouterId(ri as u32), ii)))
            })
            .collect();
        for (name, rc) in &configs.routers {
            let rid = router_index[name];
            let Some(bgp) = &rc.bgp else { continue };
            let mut sessions = Vec::new();
            for nb in &bgp.neighbors {
                let peer = addr_owner.get(&nb.addr).copied();
                let local_iface = routers[rid.0 as usize]
                    .ifaces
                    .iter()
                    .position(|i| i.prefix.contains_addr(nb.addr));
                let in_filters = bgp
                    .distribute_lists
                    .iter()
                    .filter_map(|d| match d {
                        DistributeListBinding::Neighbor { list, neighbor, .. }
                            if *neighbor == nb.addr =>
                        {
                            rc.prefix_list(list).cloned()
                        }
                        _ => None,
                    })
                    .collect();
                sessions.push(BgpSession {
                    local_iface,
                    peer_addr: nb.addr,
                    peer,
                    remote_as: nb.remote_as,
                    local_pref: nb.local_pref.unwrap_or(confmask_config::DEFAULT_LOCAL_PREF),
                    in_filters,
                });
            }
            routers[rid.0 as usize].sessions = sessions;
        }

        // Destinations: host LANs.
        let mut destinations: BTreeMap<Ipv4Prefix, Vec<HostId>> = BTreeMap::new();
        for (hi, h) in hosts.iter().enumerate() {
            destinations
                .entry(h.prefix)
                .or_default()
                .push(HostId(hi as u32));
        }

        Ok(SimNetwork {
            routers,
            hosts,
            destinations: destinations.into_iter().collect(),
            router_index,
            host_index,
        })
    }
}

fn build_router(rc: &RouterConfig) -> Result<RouterNode, SimError> {
    let ospf_nets: Vec<Ipv4Prefix> = rc
        .ospf
        .iter()
        .flat_map(|o| o.networks.iter().map(|n| n.prefix))
        .collect();
    let rip_nets: Vec<Ipv4Prefix> = rc
        .rip
        .iter()
        .flat_map(|r| r.networks.iter().map(|n| n.prefix))
        .collect();

    let igp_bindings: Vec<(&str, &str)> = rc
        .ospf
        .iter()
        .flat_map(|o| o.distribute_lists.iter())
        .chain(rc.rip.iter().flat_map(|r| r.distribute_lists.iter()))
        .filter_map(|d| match d {
            DistributeListBinding::Interface {
                list, interface, ..
            } => Some((list.as_str(), interface.as_str())),
            _ => None,
        })
        .collect();

    let mut ifaces = Vec::new();
    for iface in &rc.interfaces {
        if iface.shutdown {
            continue;
        }
        let Some((addr, len)) = iface.address else {
            continue;
        };
        let prefix = Ipv4Prefix::new(addr, len)
            .map_err(|e| SimError::BadConfig(format!("{}/{}: {e}", rc.hostname, iface.name)))?;
        let covers = |nets: &[Ipv4Prefix]| nets.iter().any(|n| n.contains_addr(addr));
        let igp_filters = igp_bindings
            .iter()
            .filter(|(_, i)| *i == iface.name)
            .filter_map(|(l, _)| rc.prefix_list(l).cloned())
            .collect();
        ifaces.push(IfaceNode {
            name: iface.name.clone(),
            addr,
            prefix,
            cost: iface.ospf_cost.unwrap_or(DEFAULT_OSPF_COST),
            peers: Vec::new(),
            ospf_active: rc.ospf.is_some() && covers(&ospf_nets),
            rip_active: rc.rip.is_some() && covers(&rip_nets),
            igp_filters,
            added: iface.added,
        });
    }

    Ok(RouterNode {
        name: rc.hostname.clone(),
        asn: rc.bgp.as_ref().map(|b| b.asn),
        ifaces,
        bgp_networks: rc
            .bgp
            .iter()
            .flat_map(|b| b.networks.iter().map(|n| n.prefix))
            .collect(),
        sessions: Vec::new(),
        static_routes: rc.static_routes.clone(),
        runs_ospf: rc.ospf.is_some(),
        runs_rip: rc.rip.is_some(),
    })
}

fn build_host(hc: &HostConfig, routers: &[RouterNode]) -> Result<HostNode, SimError> {
    let (addr, len) = hc.address;
    let prefix = Ipv4Prefix::new(addr, len)
        .map_err(|e| SimError::BadConfig(format!("host {}: {e}", hc.hostname)))?;
    let mut attachment = None;
    'outer: for (ri, r) in routers.iter().enumerate() {
        for (ii, iface) in r.ifaces.iter().enumerate() {
            if iface.addr == hc.gateway && iface.prefix == prefix {
                attachment = Some((RouterId(ri as u32), ii));
                break 'outer;
            }
        }
    }
    Ok(HostNode {
        name: hc.hostname.clone(),
        addr,
        prefix,
        gateway: hc.gateway,
        attachment,
        added: hc.added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::parse_router;

    fn net() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n ip ospf cost 5\n!\ninterface Ethernet0/1\n ip address 10.1.0.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n network 10.1.0.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\nrouter bgp 65001\n network 10.1.0.0 mask 255.255.255.0\n neighbor 10.0.0.0 remote-as 65002\n!\n",
        )
        .unwrap();
        let h = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.0.100".parse().unwrap(), 24),
            gateway: "10.1.0.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2], [h])
    }

    #[test]
    fn resolves_router_peers() {
        let sim = SimNetwork::build(&net()).unwrap();
        let r1 = sim.router_id("r1").unwrap();
        let r2 = sim.router_id("r2").unwrap();
        assert!(sim.adjacent(r1, r2));
        assert!(sim.adjacent(r2, r1));
        let iface = &sim.router(r1).ifaces[0];
        assert_eq!(iface.cost, 5);
        assert!(iface.ospf_active);
    }

    #[test]
    fn resolves_host_attachment() {
        let sim = SimNetwork::build(&net()).unwrap();
        let h = sim.host(sim.host_id("h1").unwrap());
        let r1 = sim.router_id("r1").unwrap();
        assert_eq!(h.attachment.map(|(r, _)| r), Some(r1));
        // the LAN iface carries the host as a peer
        let (rid, ii) = h.attachment.unwrap();
        assert!(sim.router(rid).ifaces[ii]
            .peers
            .iter()
            .any(|p| matches!(p, Peer::Host(_))));
    }

    #[test]
    fn resolves_bgp_session() {
        let sim = SimNetwork::build(&net()).unwrap();
        let r2 = sim.router(sim.router_id("r2").unwrap());
        assert_eq!(r2.asn, Some(Asn(65001)));
        assert_eq!(r2.sessions.len(), 1);
        let s = &r2.sessions[0];
        assert_eq!(s.remote_as, Asn(65002));
        assert_eq!(s.peer.map(|(r, _)| r), sim.router_id("r1"));
        assert_eq!(s.local_iface, Some(0));
    }

    #[test]
    fn network_statement_gates_activation() {
        let mut cfgs = net();
        // Remove the r2 network statement: its interface must go inactive.
        cfgs.routers
            .get_mut("r2")
            .unwrap()
            .ospf
            .as_mut()
            .unwrap()
            .networks
            .clear();
        let sim = SimNetwork::build(&cfgs).unwrap();
        let r2 = sim.router(sim.router_id("r2").unwrap());
        assert!(!r2.ifaces[0].ospf_active);
    }

    #[test]
    fn destinations_are_host_lans() {
        let sim = SimNetwork::build(&net()).unwrap();
        assert_eq!(sim.destinations.len(), 1);
        assert_eq!(sim.destinations[0].0, "10.1.0.0/24".parse().unwrap());
        assert_eq!(sim.destinations[0].1.len(), 1);
    }

    #[test]
    fn unattachable_host_is_tolerated() {
        let mut cfgs = net();
        cfgs.hosts.get_mut("h1").unwrap().gateway = "10.1.0.9".parse().unwrap();
        let sim = SimNetwork::build(&cfgs).unwrap();
        assert!(sim.host(HostId(0)).attachment.is_none());
    }

    #[test]
    fn igp_filter_resolution() {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n distribute-list prefix F in Ethernet0/0\n!\nip prefix-list F seq 5 deny 10.9.0.0/24\n!\n",
        )
        .unwrap();
        let cfgs = NetworkConfigs::new([r1], []);
        let sim = SimNetwork::build(&cfgs).unwrap();
        let iface = &sim.routers[0].ifaces[0];
        assert!(iface.igp_denies(&"10.9.0.0/24".parse().unwrap()));
        assert!(!iface.igp_denies(&"10.8.0.0/24".parse().unwrap()));
    }
}
