//! Forwarding tables: RIB merge by administrative distance and
//! longest-prefix-match lookup.

use crate::bgp;
use crate::error::SimError;
use crate::network::SimNetwork;
use crate::ospf;
use crate::rip;
use confmask_net_types::{Ipv4Addr, Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// Which protocol supplied a route (Cisco administrative distances).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum RouteSource {
    /// Directly connected network.
    Connected,
    /// Static route (`ip route ...`).
    Static,
    /// Learned over an eBGP session.
    Ebgp,
    /// OSPF intra-domain route.
    Ospf,
    /// RIP route.
    Rip,
    /// Learned via iBGP (resolved through the IGP toward the egress).
    Ibgp,
}

/// Administrative distance (lower wins), following Cisco defaults.
pub type AdminDistance = u8;

impl RouteSource {
    /// The Cisco default administrative distance of this source.
    pub fn admin_distance(self) -> AdminDistance {
        match self {
            RouteSource::Connected => 0,
            RouteSource::Static => 1,
            RouteSource::Ebgp => 20,
            RouteSource::Ospf => 110,
            RouteSource::Rip => 120,
            RouteSource::Ibgp => 200,
        }
    }
}

/// One forwarding next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NextHop {
    /// The destination prefix is directly connected: deliver on `iface`.
    Deliver {
        /// Index of the LAN interface.
        iface: usize,
    },
    /// Forward to an adjacent router.
    Forward {
        /// Outgoing interface index on this router.
        via_iface: usize,
        /// The adjacent router.
        router: RouterId,
        /// For eBGP-learned routes, the session peer address (where an
        /// inbound filter would be attached).
        session_peer: Option<Ipv4Addr>,
    },
}

impl NextHop {
    /// The adjacent router, when forwarding (not delivering).
    pub fn router(&self) -> Option<RouterId> {
        match self {
            NextHop::Forward { router, .. } => Some(*router),
            NextHop::Deliver { .. } => None,
        }
    }
}

/// A FIB entry: the winning route for one destination prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Protocol that won the RIB race.
    pub source: RouteSource,
    /// ECMP next-hop set (non-empty).
    pub next_hops: Vec<NextHop>,
}

/// One router's forwarding table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fib {
    entries: BTreeMap<Ipv4Prefix, FibEntry>,
}

impl Fib {
    /// Inserts an entry.
    pub fn insert(&mut self, entry: FibEntry) {
        self.entries.insert(entry.prefix, entry);
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&FibEntry> {
        self.entries
            .values()
            .filter(|e| e.prefix.contains_addr(addr))
            .max_by_key(|e| e.prefix.len())
    }

    /// Exact-prefix entry.
    pub fn entry(&self, prefix: &Ipv4Prefix) -> Option<&FibEntry> {
        self.entries.get(prefix)
    }

    /// All entries, ordered by prefix.
    pub fn entries(&self) -> impl Iterator<Item = &FibEntry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// All routers' forwarding tables, indexed by [`RouterId`].
#[derive(Debug, Clone, Default)]
pub struct Fibs {
    /// Per-router tables.
    pub per_router: Vec<Fib>,
}

impl Fibs {
    /// The FIB of a router.
    pub fn of(&self, r: RouterId) -> &Fib {
        &self.per_router[r.0 as usize]
    }
}

/// Runs every protocol and merges RIBs into FIBs by administrative distance.
pub fn compute_fibs(net: &SimNetwork) -> Result<Fibs, SimError> {
    let ospf_routes = ospf::compute(net);
    let rip_routes = rip::compute(net);
    let bgp_routes = compute_bgp_routes(net)?;
    Ok(merge_fibs(net, &ospf_routes, &rip_routes, &bgp_routes))
}

/// Runs BGP (resolving iBGP through the IGP) when any router speaks it.
/// The router-to-router IGP matrix is only needed as BGP input, so pure
/// IGP networks skip its `n` Dijkstras entirely.
pub(crate) fn compute_bgp_routes(
    net: &SimNetwork,
) -> Result<Vec<BTreeMap<Ipv4Prefix, bgp::BgpFibRoute>>, SimError> {
    if net.routers.iter().any(|r| r.asn.is_some()) {
        let igp = ospf::router_paths(net);
        bgp::compute(net, &igp)
    } else {
        Ok(vec![BTreeMap::new(); net.router_count()])
    }
}

/// Merges per-protocol RIB contributions into FIBs by administrative
/// distance. This is the *only* merge implementation — the incremental
/// engine feeds it spliced (partly reused, partly recomputed) protocol
/// tables, so cold and delta simulations go through byte-identical merge
/// logic.
pub fn merge_fibs(
    net: &SimNetwork,
    ospf_routes: &ospf::IgpRoutes,
    rip_routes: &rip::RipRoutes,
    bgp_routes: &[BTreeMap<Ipv4Prefix, bgp::BgpFibRoute>],
) -> Fibs {
    Fibs {
        per_router: net
            .routers_iter()
            .map(|(rid, _)| merge_router_fib(net, rid, ospf_routes, rip_routes, bgp_routes))
            .collect(),
    }
}

/// Merges one router's RIB contributions into its FIB — the per-router
/// body of [`merge_fibs`], exposed so the incremental engine can merge
/// only the routers a perturbation touched (and clone the rest).
pub fn merge_router_fib(
    net: &SimNetwork,
    rid: RouterId,
    ospf_routes: &ospf::IgpRoutes,
    rip_routes: &rip::RipRoutes,
    bgp_routes: &[BTreeMap<Ipv4Prefix, bgp::BgpFibRoute>],
) -> Fib {
    let mut fib = Fib::default();
    let router = net.router(rid);
    let r = rid.0 as usize;
    // Static routes install at their own prefixes (longest-prefix match
    // then decides against dynamic routes; at equal prefixes, AD 1 wins
    // over everything but Connected). Unresolvable next hops are
    // ignored, like a real RIB.
    for sr in &router.static_routes {
        let resolved = router.ifaces.iter().enumerate().find_map(|(ii, iface)| {
            if !iface.prefix.contains_addr(sr.next_hop) {
                return None;
            }
            iface.peers.iter().find_map(|p| match p {
                crate::network::Peer::Router {
                    router: peer,
                    iface: pi,
                } => (net.router(*peer).ifaces[*pi].addr == sr.next_hop).then_some((ii, *peer)),
                crate::network::Peer::Host(_) => None,
            })
        });
        if let Some((via_iface, peer)) = resolved {
            let connected_same = router.ifaces.iter().any(|i| i.prefix == sr.prefix);
            if !connected_same {
                fib.insert(FibEntry {
                    prefix: sr.prefix,
                    source: RouteSource::Static,
                    next_hops: vec![NextHop::Forward {
                        via_iface,
                        router: peer,
                        session_peer: None,
                    }],
                });
            }
        }
    }
    for (prefix, _hosts) in &net.destinations {
        // 1. Connected.
        if let Some(iface) = router.ifaces.iter().position(|i| i.prefix == *prefix) {
            fib.insert(FibEntry {
                prefix: *prefix,
                source: RouteSource::Connected,
                next_hops: vec![NextHop::Deliver { iface }],
            });
            continue;
        }
        // 1b. Static at the exact destination prefix (AD 1).
        if fib
            .entry(prefix)
            .is_some_and(|e| e.source == RouteSource::Static)
        {
            continue;
        }
        // 2. eBGP (AD 20).
        if let Some(b) = bgp_routes[r].get(prefix) {
            if b.source == RouteSource::Ebgp && !b.next_hops.is_empty() {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    source: RouteSource::Ebgp,
                    next_hops: b
                        .next_hops
                        .iter()
                        .map(|&(via_iface, router)| NextHop::Forward {
                            via_iface,
                            router,
                            session_peer: b.session_peer,
                        })
                        .collect(),
                });
                continue;
            }
        }
        // 3. OSPF (AD 110).
        if let Some(hops) = ospf_routes[r].get(prefix) {
            if !hops.is_empty() {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    source: RouteSource::Ospf,
                    next_hops: hops
                        .iter()
                        .map(|&(via_iface, router)| NextHop::Forward {
                            via_iface,
                            router,
                            session_peer: None,
                        })
                        .collect(),
                });
                continue;
            }
        }
        // 4. RIP (AD 120).
        if let Some(hops) = rip_routes[r].get(prefix) {
            if !hops.is_empty() {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    source: RouteSource::Rip,
                    next_hops: hops
                        .iter()
                        .map(|&(via_iface, router)| NextHop::Forward {
                            via_iface,
                            router,
                            session_peer: None,
                        })
                        .collect(),
                });
                continue;
            }
        }
        // 5. iBGP (AD 200).
        if let Some(b) = bgp_routes[r].get(prefix) {
            if b.source == RouteSource::Ibgp && !b.next_hops.is_empty() {
                fib.insert(FibEntry {
                    prefix: *prefix,
                    source: RouteSource::Ibgp,
                    next_hops: b
                        .next_hops
                        .iter()
                        .map(|&(via_iface, router)| NextHop::Forward {
                            via_iface,
                            router,
                            session_peer: None,
                        })
                        .collect(),
                });
            }
        }
    }

    fib
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut fib = Fib::default();
        fib.insert(FibEntry {
            prefix: p("10.0.0.0/8"),
            source: RouteSource::Ospf,
            next_hops: vec![NextHop::Deliver { iface: 0 }],
        });
        fib.insert(FibEntry {
            prefix: p("10.1.0.0/16"),
            source: RouteSource::Ospf,
            next_hops: vec![NextHop::Deliver { iface: 1 }],
        });
        let hit = fib.lookup("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(hit.prefix, p("10.1.0.0/16"));
        let hit = fib.lookup("10.2.2.3".parse().unwrap()).unwrap();
        assert_eq!(hit.prefix, p("10.0.0.0/8"));
        assert!(fib.lookup("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn admin_distances_are_ordered() {
        assert!(RouteSource::Connected.admin_distance() < RouteSource::Ebgp.admin_distance());
        assert!(RouteSource::Ebgp.admin_distance() < RouteSource::Ospf.admin_distance());
        assert!(RouteSource::Ospf.admin_distance() < RouteSource::Rip.admin_distance());
        assert!(RouteSource::Rip.admin_distance() < RouteSource::Ibgp.admin_distance());
    }
}
