//! Streaming fault sweeps: fold each scenario into a compact digest and
//! drop the full simulation immediately.
//!
//! The collect-then-reduce sweep (`Vec<Result<ScenarioOutcome>>`) retains a
//! `BTreeMap<(String, String), DegradationClass>` — plus whatever live
//! FIB/path state produced it — for *every* scenario in a batch, which is
//! what capped exhaustive k = 2 enumeration and made the parallel sweep
//! path slower than sequential on one core. This module replaces it with a
//! map-reduce shape borrowed from streamed model checking (Plankton,
//! NSDI'20): workers classify a scenario against an interned host-pair
//! table ([`PairTable`]), emit a [`ScenarioDigest`] of tens of bytes —
//! class histogram, worst class, violated-pair bitmap, packed non-unchanged
//! classes — and the caller's [`SweepReducer`] folds digests in scenario
//! order while the simulations behind them are already freed.
//!
//! [`stream_scenarios`] is the cold (full re-simulation) driver; the warm
//! incremental driver lives in `confmask-sim-delta` and produces
//! byte-identical digests (gated by `tests/delta_diff.rs`).

use crate::dataplane::{DataPlane, PairBits};
use crate::error::SimError;
use crate::fault::{run_scenario, DegradationClass, FailureScenario, ScenarioOutcome};
use confmask_config::NetworkConfigs;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The interned table of ordered host pairs a sweep classifies — one entry
/// per baseline pair, in baseline (name) order. Digests refer to pairs by
/// index into this table, so a retained digest carries no strings; names
/// are shared `Arc<str>`s interned once per sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairTable {
    pairs: Vec<(Arc<str>, Arc<str>)>,
}

impl PairTable {
    /// Interns every ordered pair of `baseline`, in its key order.
    pub fn from_baseline(baseline: &DataPlane) -> PairTable {
        let mut cache: BTreeMap<String, Arc<str>> = BTreeMap::new();
        let intern = |s: &str, cache: &mut BTreeMap<String, Arc<str>>| -> Arc<str> {
            if let Some(a) = cache.get(s) {
                return Arc::clone(a);
            }
            let a: Arc<str> = Arc::from(s);
            cache.insert(s.to_string(), Arc::clone(&a));
            a
        };
        let pairs = baseline
            .pairs()
            .map(|((s, d), _)| (intern(s, &mut cache), intern(d, &mut cache)))
            .collect();
        PairTable { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the table holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `(src, dst)` names at pair index `i`.
    pub fn pair(&self, i: usize) -> (&str, &str) {
        let (s, d) = &self.pairs[i];
        (s, d)
    }

    /// Iterates the pairs in index (== name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(s, d)| (s.as_ref(), d.as_ref()))
    }

    /// The index of a pair, if present (the table is name-sorted).
    pub fn index_of(&self, src: &str, dst: &str) -> Option<usize> {
        self.pairs
            .binary_search_by(|(s, d)| (s.as_ref(), d.as_ref()).cmp(&(src, dst)))
            .ok()
    }
}

/// The compact, retainable result of one failure scenario: what a worker
/// keeps after the full simulation is dropped.
///
/// Layout: a degradation-class histogram over all table pairs, the worst
/// class reached, a violated-pair bitmap (bit `i` set iff table pair `i`
/// is not `Unchanged`), and the non-unchanged classes packed two per byte
/// in ascending pair order. Everything else about the scenario — the full
/// per-pair map the old `ScenarioOutcome` retained — is reconstructible
/// from these plus the shared [`PairTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioDigest {
    /// Pair counts per class, indexed by [`DegradationClass::index`].
    pub histogram: [u32; DegradationClass::COUNT],
    /// The most severe class any pair reached.
    pub worst: DegradationClass,
    /// Bit `i` set iff table pair `i` degraded (class ≠ `Unchanged`).
    pub changed: PairBits,
    /// Non-unchanged classes, two nibbles per byte, ascending pair order.
    classes: Vec<u8>,
    /// Number of recorded non-unchanged classes (nibble count).
    changed_n: u32,
}

impl ScenarioDigest {
    /// An all-unchanged digest over `pairs` table entries; callers fold
    /// classes in with [`ScenarioDigest::record`].
    pub fn new(pairs: usize) -> ScenarioDigest {
        ScenarioDigest {
            histogram: [0; DegradationClass::COUNT],
            worst: DegradationClass::Unchanged,
            changed: PairBits::new(pairs),
            classes: Vec::new(),
            changed_n: 0,
        }
    }

    /// Records the class of table pair `i`. Must be called once per pair
    /// in ascending pair order (the packed class stream is positional).
    pub fn record(&mut self, i: usize, class: DegradationClass) {
        self.histogram[class.index()] += 1;
        if class == DegradationClass::Unchanged {
            return;
        }
        self.changed.set(i);
        if class > self.worst {
            self.worst = class;
        }
        let nib = class.index() as u8;
        if self.changed_n.is_multiple_of(2) {
            self.classes.push(nib);
        } else {
            *self.classes.last_mut().expect("odd nibble has a byte") |= nib << 4;
        }
        self.changed_n += 1;
    }

    /// Number of pairs the digest covers (the table width).
    pub fn pairs(&self) -> usize {
        self.changed.len()
    }

    /// Number of degraded (non-`Unchanged`) pairs.
    pub fn changed_count(&self) -> usize {
        self.changed_n as usize
    }

    /// Whether every pair was unaffected.
    pub fn all_unchanged(&self) -> bool {
        self.changed_n == 0
    }

    /// Iterates `(pair_index, class)` for every degraded pair, in
    /// ascending pair order.
    pub fn changed_classes(&self) -> impl Iterator<Item = (usize, DegradationClass)> + '_ {
        self.changed.iter_ones().enumerate().map(|(k, i)| {
            let byte = self.classes[k / 2];
            let nib = if k % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            let class = DegradationClass::from_index(nib as usize).expect("packed class in range");
            (i, class)
        })
    }

    /// Histogram entries with non-zero counts, least-severe-first — the
    /// precomputed replacement for `ScenarioOutcome::histogram()` in hot
    /// report loops.
    pub fn histogram_nonzero(&self) -> impl Iterator<Item = (DegradationClass, usize)> + '_ {
        DegradationClass::ALL
            .iter()
            .zip(self.histogram.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(c, &n)| (*c, n as usize))
    }

    /// Heap + inline bytes this digest retains — what a reducer holding it
    /// actually costs, and what the `sim.sweep.digest_bytes` gauge sums.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.changed.retained_bytes() + self.classes.capacity()
    }

    /// Canonical byte encoding (histogram, worst, pair count, bitmap
    /// words, packed classes — all little-endian). Two digests are equal
    /// iff their encodings are byte-equal; the differential gate in
    /// `tests/delta_diff.rs` asserts on this.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 * DegradationClass::COUNT + 1 + 8 + 8 * self.changed.words().len() + self.classes.len(),
        );
        for h in self.histogram {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.push(self.worst.index() as u8);
        out.extend_from_slice(&(self.changed.len() as u64).to_le_bytes());
        for w in self.changed.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.changed_n).to_le_bytes());
        out.extend_from_slice(&self.classes);
        out
    }

    /// Folds a cold [`ScenarioOutcome`] into digest form. The outcome's
    /// pair set is merge-joined against the table (both are name-sorted);
    /// table pairs the outcome does not mention fold as `Unchanged`.
    pub fn from_outcome(outcome: &ScenarioOutcome, table: &PairTable) -> ScenarioDigest {
        let mut digest = ScenarioDigest::new(table.len());
        let mut it = outcome.classes.iter().peekable();
        for (i, (src, dst)) in table.iter().enumerate() {
            let key = (src, dst);
            // Skip outcome pairs not in the table (shouldn't happen when
            // the table was built from the same baseline, but stay total).
            while let Some(((s, d), _)) = it.peek() {
                if (s.as_str(), d.as_str()) < key {
                    it.next();
                } else {
                    break;
                }
            }
            let class = match it.peek() {
                Some(((s, d), c)) if (s.as_str(), d.as_str()) == key => {
                    let c = **c;
                    it.next();
                    c
                }
                _ => DegradationClass::Unchanged,
            };
            digest.record(i, class);
        }
        digest
    }
}

/// The consumer side of a streaming sweep: workers produce digests, the
/// driver delivers them here **in scenario order** (index `i` is the
/// scenario's position in the swept sequence), and the full simulation
/// state behind each digest is already dropped by the time `fold` runs.
pub trait SweepReducer {
    /// Folds the digest of scenario `i`.
    fn fold(&mut self, i: usize, digest: ScenarioDigest);

    /// Folds a scenario whose simulation failed.
    fn fold_err(&mut self, i: usize, error: SimError);
}

/// A reducer that keeps only aggregate statistics — the cheapest possible
/// consumer (O(1) memory regardless of sweep size), used by exhaustive
/// k = 2 enumeration and the frontier's compound-failure columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Scenarios folded successfully.
    pub scenarios: usize,
    /// Scenarios whose simulation failed.
    pub errors: usize,
    /// Total pair counts per class across all scenarios.
    pub pair_histogram: [u64; DegradationClass::COUNT],
    /// Per-scenario worst-class counts (`worst_histogram[0]` = scenarios
    /// where nothing degraded).
    pub worst_histogram: [u64; DegradationClass::COUNT],
}

impl SweepSummary {
    /// The most severe class any scenario reached.
    pub fn worst(&self) -> DegradationClass {
        (0..DegradationClass::COUNT)
            .rev()
            .find(|&i| self.worst_histogram[i] > 0)
            .and_then(DegradationClass::from_index)
            .unwrap_or(DegradationClass::Unchanged)
    }

    /// Fraction of swept scenarios (errors count as dirty) whose worst
    /// class is at most `max_class` — e.g. `clean_fraction(Rerouted)` is
    /// the share of failures under which all traffic still arrives.
    pub fn clean_fraction(&self, max_class: DegradationClass) -> f64 {
        let total = self.scenarios + self.errors;
        if total == 0 {
            return 1.0;
        }
        let clean: u64 = self.worst_histogram[..=max_class.index()].iter().sum();
        clean as f64 / total as f64
    }
}

impl SweepReducer for SweepSummary {
    fn fold(&mut self, _i: usize, digest: ScenarioDigest) {
        self.scenarios += 1;
        for (k, &h) in digest.histogram.iter().enumerate() {
            self.pair_histogram[k] += h as u64;
        }
        self.worst_histogram[digest.worst.index()] += 1;
    }

    fn fold_err(&mut self, _i: usize, _error: SimError) {
        self.errors += 1;
    }
}

/// A reducer that retains every digest, in scenario order — for callers
/// that post-process per-scenario results (equivalence comparison, the
/// differential gate). Retention is digests only: tens of bytes per
/// scenario, not a dataplane.
#[derive(Debug, Clone, Default)]
pub struct DigestList {
    /// One entry per swept scenario, in scenario order.
    pub results: Vec<Result<ScenarioDigest, SimError>>,
}

impl SweepReducer for DigestList {
    fn fold(&mut self, i: usize, digest: ScenarioDigest) {
        debug_assert_eq!(i, self.results.len(), "digests arrive in order");
        self.results.push(Ok(digest));
    }

    fn fold_err(&mut self, i: usize, error: SimError) {
        debug_assert_eq!(i, self.results.len(), "digests arrive in order");
        self.results.push(Err(error));
    }
}

/// Aggregate statistics of one streaming sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Scenarios folded successfully.
    pub scenarios: usize,
    /// Scenarios whose simulation failed.
    pub errors: usize,
    /// Peak bytes of digests live inside the streaming window at once —
    /// the sweep engine's retained-memory high-water mark (what the old
    /// engine's `Vec<ScenarioOutcome>` equivalent was, orders of magnitude
    /// larger).
    pub peak_digest_bytes: usize,
    /// Peak number of outcomes (digests) retained in the window at once.
    pub peak_retained: usize,
    /// Wall time of the sweep.
    pub wall: Duration,
}

/// Shared `sim.sweep.*` instrumentation for streaming drivers (cold here,
/// warm in `confmask-sim-delta`): scenario/error counters plus live- and
/// peak-memory gauges, updated per streaming window rather than per
/// scenario so metrics cost nothing on multi-thousand-scenario sweeps.
#[derive(Debug)]
pub struct SweepMeter {
    window: usize,
    live_bytes: usize,
    live_n: usize,
    peak_bytes: usize,
    peak_n: usize,
    scenarios: usize,
    errors: usize,
    pending_scenarios: u64,
    pending_errors: u64,
    started: Instant,
}

impl SweepMeter {
    /// A meter for a sweep whose streaming window holds `window` scenarios.
    pub fn new(window: usize) -> SweepMeter {
        SweepMeter {
            window: window.max(1),
            live_bytes: 0,
            live_n: 0,
            peak_bytes: 0,
            peak_n: 0,
            scenarios: 0,
            errors: 0,
            pending_scenarios: 0,
            pending_errors: 0,
            started: Instant::now(),
        }
    }

    fn roll_window(&mut self, i: usize) {
        if i.is_multiple_of(self.window) {
            self.flush();
            confmask_obs::gauge_set("sim.sweep.digest_bytes", self.live_bytes as f64);
            self.live_bytes = 0;
            self.live_n = 0;
        }
    }

    /// Publishes the counter deltas accumulated since the last window roll.
    fn flush(&mut self) {
        if self.pending_scenarios > 0 {
            confmask_obs::counter_add("sim.sweep.scenarios", self.pending_scenarios);
            self.pending_scenarios = 0;
        }
        if self.pending_errors > 0 {
            confmask_obs::counter_add("sim.sweep.errors", self.pending_errors);
            self.pending_errors = 0;
        }
    }

    /// Accounts a successful digest of `bytes` retained bytes at scenario
    /// index `i`.
    pub fn fold_ok(&mut self, i: usize, bytes: usize) {
        self.roll_window(i);
        self.scenarios += 1;
        self.pending_scenarios += 1;
        self.live_bytes += bytes;
        self.live_n += 1;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.peak_n = self.peak_n.max(self.live_n);
    }

    /// Accounts a failed scenario at index `i`.
    pub fn fold_err(&mut self, i: usize) {
        self.roll_window(i);
        self.errors += 1;
        self.pending_errors += 1;
    }

    /// Finishes the sweep: publishes the remaining counter deltas and the
    /// peak gauges, and returns the stats.
    pub fn finish(mut self) -> SweepStats {
        self.flush();
        confmask_obs::gauge_set("sim.sweep.digest_bytes", 0.0);
        confmask_obs::gauge_set("sim.sweep.peak_retained_outcomes", self.peak_n as f64);
        SweepStats {
            scenarios: self.scenarios,
            errors: self.errors,
            peak_digest_bytes: self.peak_bytes,
            peak_retained: self.peak_n,
            wall: self.started.elapsed(),
        }
    }
}

/// Registers every `sim.sweep.*` metric at zero (the register-at-zero
/// convention; called from `confmask-sim-delta`'s registration, which both
/// the CLI and the daemon invoke at startup).
pub fn register_metrics() {
    confmask_obs::counter_add("sim.sweep.scenarios", 0);
    confmask_obs::counter_add("sim.sweep.errors", 0);
    confmask_obs::gauge_set("sim.sweep.digest_bytes", 0.0);
    confmask_obs::gauge_set("sim.sweep.peak_retained_outcomes", 0.0);
}

/// The cold streaming driver: runs every scenario through the full
/// re-simulating [`run_scenario`], folds each outcome into a digest
/// against `table`, and feeds the reducer in scenario order. Workers fan
/// out over the shared executor in bounded windows, so at most one
/// window's worth of outcomes is ever live — the swept sequence itself is
/// consumed lazily and never materialized.
///
/// `table` must be built from (or equal to) `baseline`'s pair set; pairs
/// of `baseline` absent from `table` are ignored and table pairs absent
/// from `baseline` classify as `Unchanged`.
pub fn stream_scenarios<B: std::borrow::Borrow<FailureScenario> + Sync>(
    configs: &NetworkConfigs,
    baseline: &DataPlane,
    table: &PairTable,
    scenarios: impl IntoIterator<Item = B>,
    reducer: &mut dyn SweepReducer,
) -> SweepStats {
    let window = (confmask_exec::thread_count() * 8).clamp(16, 256);
    let mut meter = SweepMeter::new(window);
    confmask_exec::par_stream_init(
        scenarios,
        window,
        || (),
        |_, _, sc: &B| {
            let sc = sc.borrow();
            run_scenario(configs, baseline, sc).map(|o| ScenarioDigest::from_outcome(&o, table))
        },
        |i, r| match r {
            Ok(d) => {
                meter.fold_ok(i, d.retained_bytes());
                reducer.fold(i, d);
            }
            Err(e) => {
                meter.fold_err(i);
                reducer.fold_err(i, e);
            }
        },
    );
    meter.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{
        enumerate_single_link_failures, run_scenario, Fault, FailureScenario,
    };
    use crate::simulate;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs};

    fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
        HostConfig {
            hostname: name.into(),
            iface_name: "eth0".into(),
            address: (addr.parse().unwrap(), 24),
            gateway: gw.parse().unwrap(),
            extra: vec![],
            added: false,
        }
    }

    /// Triangle r1–r2–r3 (all OSPF), host on r1 and on r2.
    fn triangle() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.1.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.2.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.2.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r3 = parse_router(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n!\n",
        )
        .unwrap();
        NetworkConfigs::new(
            [r1, r2, r3],
            [
                host("h1", "10.1.1.100", "10.1.1.1"),
                host("h2", "10.1.2.100", "10.1.2.1"),
            ],
        )
    }

    #[test]
    fn pair_table_interns_baseline_order() {
        let baseline = simulate(&triangle()).unwrap().dataplane;
        let table = PairTable::from_baseline(&baseline);
        assert_eq!(table.len(), baseline.len());
        for (i, ((s, d), _)) in baseline.pairs().enumerate() {
            assert_eq!(table.pair(i), (s.as_str(), d.as_str()));
            assert_eq!(table.index_of(s, d), Some(i));
        }
        assert_eq!(table.index_of("h1", "nope"), None);
    }

    #[test]
    fn digest_fold_matches_outcome() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let table = PairTable::from_baseline(&baseline);
        let sc = FailureScenario::single(Fault::RouterDown {
            router: "r2".into(),
        });
        let out = run_scenario(&cfgs, &baseline, &sc).unwrap();
        let digest = ScenarioDigest::from_outcome(&out, &table);
        assert_eq!(digest.worst, out.worst());
        assert_eq!(digest.all_unchanged(), out.all_unchanged());
        // Histogram agrees with the outcome's map-walking one.
        let hist = out.histogram();
        for (c, n) in digest.histogram_nonzero() {
            assert_eq!(hist.get(&c), Some(&n));
        }
        assert_eq!(
            digest.histogram.iter().map(|&n| n as usize).sum::<usize>(),
            out.classes.len()
        );
        // Every changed pair round-trips through the table by name.
        for (i, class) in digest.changed_classes() {
            let (s, d) = table.pair(i);
            assert_eq!(out.classes[&(s.to_string(), d.to_string())], class);
            assert_ne!(class, DegradationClass::Unchanged);
        }
        assert_eq!(digest.changed_count(), digest.changed.count_ones());
        // Encodings are stable and discriminate.
        assert_eq!(digest.encode(), ScenarioDigest::from_outcome(&out, &table).encode());
        let unchanged = ScenarioDigest::new(table.len());
        assert_ne!(digest.encode(), unchanged.encode());
    }

    #[test]
    fn stream_scenarios_matches_per_scenario_runs() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let table = PairTable::from_baseline(&baseline);
        let scenarios = enumerate_single_link_failures(&cfgs);
        let mut list = DigestList::default();
        let stats = stream_scenarios(
            &cfgs,
            &baseline,
            &table,
            scenarios.iter(),
            &mut list,
        );
        assert_eq!(stats.scenarios, scenarios.len());
        assert_eq!(stats.errors, 0);
        assert!(stats.peak_digest_bytes > 0);
        assert!(stats.peak_retained >= 1);
        assert_eq!(list.results.len(), scenarios.len());
        for (sc, got) in scenarios.iter().zip(&list.results) {
            let want =
                ScenarioDigest::from_outcome(&run_scenario(&cfgs, &baseline, sc).unwrap(), &table);
            assert_eq!(got.as_ref().unwrap(), &want, "{sc}");
        }
    }

    #[test]
    fn sweep_summary_aggregates() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let table = PairTable::from_baseline(&baseline);
        let scenarios = enumerate_single_link_failures(&cfgs);
        let mut sum = SweepSummary::default();
        stream_scenarios(
            &cfgs,
            &baseline,
            &table,
            scenarios.iter(),
            &mut sum,
        );
        assert_eq!(sum.scenarios, 3);
        assert_eq!(sum.errors, 0);
        // r1–r2 down reroutes both directions; the other two links carry
        // no h1↔h2 baseline traffic.
        assert_eq!(sum.worst(), DegradationClass::Rerouted);
        assert_eq!(sum.worst_histogram[DegradationClass::Unchanged.index()], 2);
        assert_eq!(sum.worst_histogram[DegradationClass::Rerouted.index()], 1);
        assert_eq!(sum.clean_fraction(DegradationClass::Rerouted), 1.0);
        assert!(sum.clean_fraction(DegradationClass::Unchanged) < 1.0);
        // An errored scenario counts as dirty.
        let mut sum2 = sum.clone();
        sum2.fold_err(3, SimError::BadConfig("x".into()));
        assert!(sum2.clean_fraction(DegradationClass::Looping) < 1.0);
    }
}
