//! RIP: distance-vector routing (synchronous Bellman–Ford to a fixpoint).
//!
//! Semantics:
//!
//! * hop-count metric, infinity at 16 (classic RIP);
//! * an inbound `distribute-list` drops the advertisement *on arrival*, so
//!   the filtered neighbor is excluded from the distance computation and the
//!   route falls back to the next-best neighbor — the distance-vector
//!   behaviour the SFE conditions of §5.1 describe ("no additional routing
//!   paths will be accepted", with graceful fallback);
//! * equal-metric neighbors form an ECMP set.

use crate::network::{Peer, SimNetwork};
use confmask_net_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// RIP's infinity metric.
pub const RIP_INFINITY: u32 = 16;

/// Per-router candidate next-hops per destination prefix (same shape as
/// [`crate::ospf::IgpRoutes`]).
pub type RipRoutes = Vec<BTreeMap<Ipv4Prefix, Vec<(usize, RouterId)>>>;

/// Converged per-prefix distance vectors: `dist[prefix][router]` is the hop
/// count from the router to the prefix ([`RIP_INFINITY`] = unreachable).
/// Prefixes with no advertiser are absent. The incremental engine caches
/// these to warm-start the Bellman–Ford fixpoint after a failure.
pub type RipDist = BTreeMap<Ipv4Prefix, Vec<u32>>;

/// Computes RIP routes for every (router, host-LAN prefix).
pub fn compute(net: &SimNetwork) -> RipRoutes {
    compute_with_state(net, None).0
}

/// Computes RIP routes plus the converged distance vectors, optionally
/// warm-starting the Bellman–Ford iteration from a previously converged
/// state.
///
/// **Warm-start soundness** (why the result is byte-identical to a cold
/// run): the synchronous update `T(x)[u] = min over allowed neighbors v of
/// (x[v] + 1)`, with advertisers pinned at 1 and values capped at
/// [`RIP_INFINITY`], is monotone. Warm-starting is only sound when the
/// network changed by *removing* adjacencies or advertisers (administrative
/// shutdowns), because then `T_new(x) ≥ T_old(x)` pointwise, so the old
/// fixpoint `x₀ = T_old(x₀) ≤ T_new(x₀)` and the iterates climb
/// monotonically. They converge to a fixpoint of `T_new`, and `T_new` has a
/// *unique* fixpoint: in any fixpoint, a router with value `m < 16` heads a
/// strictly descending chain of allowed adjacencies ending at an advertiser
/// (non-advertisers always have value ≥ 2), which exhibits a real filtered
/// path of length `m`; induction over the true distance then pins every
/// value. Hence the warm iteration lands exactly where the cold one does.
/// The caller (the delta engine) is responsible for the removal-only
/// precondition; a cold run (`warm = None`) needs no precondition.
pub fn compute_with_state(net: &SimNetwork, warm: Option<&RipDist>) -> (RipRoutes, RipDist) {
    let n = net.router_count();

    // RIP adjacency: both interfaces rip-active.
    let mut adj: Vec<Vec<(usize, RouterId)>> = vec![Vec::new(); n];
    for (rid, r) in net.routers_iter() {
        for (ii, iface) in r.ifaces.iter().enumerate() {
            if !iface.rip_active {
                continue;
            }
            for peer in &iface.peers {
                if let Peer::Router { router, iface: pi } = peer {
                    if net.router(*router).ifaces[*pi].rip_active {
                        adj[rid.0 as usize].push((ii, *router));
                    }
                }
            }
        }
    }

    let mut routes: RipRoutes = vec![BTreeMap::new(); n];
    let mut dists = RipDist::new();
    let mut total_rounds = 0u64;
    for (prefix, _hosts) in &net.destinations {
        let mut dist = vec![RIP_INFINITY; n];
        let mut advertiser = vec![false; n];
        // Advertisers: connected + rip-active on the prefix; metric 1.
        for (rid, r) in net.routers_iter() {
            if r.ifaces.iter().any(|i| i.rip_active && i.prefix == *prefix) {
                dist[rid.0 as usize] = 1;
                advertiser[rid.0 as usize] = true;
            }
        }
        if dist.iter().all(|&d| d == RIP_INFINITY) {
            continue;
        }
        // Warm start: seed non-advertisers from the previous fixpoint (a
        // lower bound on the new one under removal-only perturbations).
        // A prefix absent from the warm state had no advertisers before,
        // so its previous values were all infinity — the cold seed.
        if let Some(w) = warm.and_then(|w| w.get(prefix)).filter(|w| w.len() == n) {
            for u in 0..n {
                if !advertiser[u] {
                    dist[u] = w[u];
                }
            }
        }
        // Cold runs converge from above within `n` rounds (classic
        // Bellman–Ford); warm runs climb from below, gaining at least one
        // unit somewhere per non-converged round, so `16n` bounds them.
        let max_rounds = if warm.is_some() {
            n * RIP_INFINITY as usize + 1
        } else {
            n
        };

        // Synchronous Bellman–Ford. An inbound filter on the iface toward a
        // neighbor drops that neighbor's advertisements for this prefix.
        for _round in 0..max_rounds {
            total_rounds += 1;
            let mut changed = false;
            let prev = dist.clone();
            for (rid, r) in net.routers_iter() {
                let u = rid.0 as usize;
                // Connected metric (1) never changes.
                if r.ifaces.iter().any(|i| i.rip_active && i.prefix == *prefix) {
                    continue;
                }
                let mut best = RIP_INFINITY;
                for &(ii, v) in &adj[u] {
                    if r.ifaces[ii].igp_denies(prefix) {
                        continue;
                    }
                    let cand = prev[v.0 as usize].saturating_add(1).min(RIP_INFINITY);
                    best = best.min(cand);
                }
                if best != dist[u] {
                    dist[u] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (rid, r) in net.routers_iter() {
            let u = rid.0 as usize;
            if dist[u] >= RIP_INFINITY {
                continue;
            }
            if r.ifaces.iter().any(|i| i.prefix == *prefix) {
                continue; // connected route wins anyway
            }
            let mut hops = Vec::new();
            for &(ii, v) in &adj[u] {
                if r.ifaces[ii].igp_denies(prefix) {
                    continue;
                }
                if dist[v.0 as usize].saturating_add(1) == dist[u] {
                    hops.push((ii, v));
                }
            }
            if !hops.is_empty() {
                hops.sort();
                hops.dedup();
                routes[u].insert(*prefix, hops);
            }
        }
        dists.insert(*prefix, dist);
    }
    confmask_obs::counter_add("sim.rip.rounds", total_rounds);
    (routes, dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs, RouterConfig};

    fn rip_router(name: &str, links: &[(&str, u8)], lan: Option<&str>) -> RouterConfig {
        let mut text = format!("hostname {name}\n!\n");
        for (i, (addr, len)) in links.iter().enumerate() {
            let mask = confmask_net_types::Ipv4Prefix::new(addr.parse().unwrap(), *len)
                .unwrap()
                .subnet_mask();
            text.push_str(&format!(
                "interface Ethernet0/{i}\n ip address {addr} {mask}\n!\n"
            ));
        }
        if let Some(lan) = lan {
            text.push_str(&format!(
                "interface Ethernet0/9\n ip address {lan} 255.255.255.0\n!\n"
            ));
        }
        text.push_str("router rip\n version 2\n network 0.0.0.0 0.0.0.0\n!\n");
        let mut rc = parse_router(&text).unwrap();
        // `network 0.0.0.0/0` — enable everywhere.
        rc.rip.as_mut().unwrap().networks[0].prefix = "0.0.0.0/0".parse().unwrap();
        rc
    }

    /// Line: r1 - r2 - r3, LANs on r1 and r3.
    fn line() -> NetworkConfigs {
        let r1 = rip_router("r1", &[("10.0.12.0", 31)], Some("10.1.1.1"));
        let r2 = rip_router("r2", &[("10.0.12.1", 31), ("10.0.23.0", 31)], None);
        let r3 = rip_router("r3", &[("10.0.23.1", 31)], Some("10.1.3.1"));
        let h1 = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.1.100".parse().unwrap(), 24),
            gateway: "10.1.1.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let h3 = HostConfig {
            hostname: "h3".into(),
            iface_name: "eth0".into(),
            address: ("10.1.3.100".parse().unwrap(), 24),
            gateway: "10.1.3.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2, r3], [h1, h3])
    }

    #[test]
    fn hop_count_routing() {
        let net = SimNetwork::build(&line()).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let r2 = net.router_id("r2").unwrap();
        let lan3: Ipv4Prefix = "10.1.3.0/24".parse().unwrap();
        assert_eq!(routes[r1.0 as usize][&lan3], vec![(0, r2)]);
    }

    #[test]
    fn filter_falls_back_to_longer_path() {
        // Square: r1-r2-r4 and r1-r3-r4 (equal hops) + filter one way at r1.
        let r1 = rip_router(
            "r1",
            &[("10.0.12.0", 31), ("10.0.13.0", 31)],
            Some("10.1.1.1"),
        );
        let r2 = rip_router("r2", &[("10.0.12.1", 31), ("10.0.24.0", 31)], None);
        let r3 = rip_router("r3", &[("10.0.13.1", 31), ("10.0.34.0", 31)], None);
        let r4 = rip_router(
            "r4",
            &[("10.0.24.1", 31), ("10.0.34.1", 31)],
            Some("10.1.4.1"),
        );
        let h4 = HostConfig {
            hostname: "h4".into(),
            iface_name: "eth0".into(),
            address: ("10.1.4.100".parse().unwrap(), 24),
            gateway: "10.1.4.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let mut cfgs = NetworkConfigs::new([r1, r2, r3, r4], [h4]);
        {
            let r1 = cfgs.routers.get_mut("r1").unwrap();
            r1.prefix_lists.push(confmask_config::PrefixList {
                name: "F".into(),
                entries: vec![confmask_config::PrefixListEntry {
                    seq: 5,
                    action: confmask_config::FilterAction::Deny,
                    prefix: "10.1.4.0/24".parse().unwrap(),
                    added: false,
                }],
            });
            r1.rip.as_mut().unwrap().distribute_lists.push(
                confmask_config::DistributeListBinding::Interface {
                    list: "F".into(),
                    interface: "Ethernet0/0".into(),
                    added: false,
                },
            );
        }
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let r3 = net.router_id("r3").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        let hops = &routes[r1.0 as usize][&lan4];
        assert_eq!(hops.len(), 1, "fallback to the unfiltered arm: {hops:?}");
        assert_eq!(hops[0].1, r3);
    }

    #[test]
    fn paths_beyond_infinity_are_unreachable() {
        // Chain of 18 routers: the far LAN is > 15 hops away.
        let mut routers = Vec::new();
        for i in 0..18u32 {
            let mut links: Vec<(String, u8)> = Vec::new();
            if i > 0 {
                links.push((format!("10.0.{}.1", i - 1), 31));
            }
            if i < 17 {
                links.push((format!("10.0.{i}.0"), 31));
            }
            let links_ref: Vec<(&str, u8)> = links.iter().map(|(a, l)| (a.as_str(), *l)).collect();
            let lan = if i == 17 { Some("10.9.9.1") } else { None };
            routers.push(rip_router(&format!("r{i:02}"), &links_ref, lan));
        }
        let h = HostConfig {
            hostname: "h".into(),
            iface_name: "eth0".into(),
            address: ("10.9.9.100".parse().unwrap(), 24),
            gateway: "10.9.9.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let cfgs = NetworkConfigs::new(routers, [h]);
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let far: Ipv4Prefix = "10.9.9.0/24".parse().unwrap();
        let r00 = net.router_id("r00").unwrap();
        let r10 = net.router_id("r10").unwrap();
        assert!(
            !routes[r00.0 as usize].contains_key(&far),
            "17 hops > infinity"
        );
        assert!(routes[r10.0 as usize].contains_key(&far), "7 hops is fine");
    }
}
