//! Failure-scenario engine: inject element failures into a configured
//! network, re-run the full control plane to a new fixpoint, and classify
//! how each host pair's forwarding behaviour degraded.
//!
//! ConfMask's equivalence guarantees (§3.1) are stated for the *healthy*
//! network. This module extends the reproduction with the natural
//! robustness question: does an anonymized network also degrade the same
//! way the original does when elements fail? Three fault kinds are
//! modelled, all expressed as administrative shutdowns so that applying a
//! scenario is a pure, idempotent configuration transformation:
//!
//! * [`Fault::LinkDown`] — both endpoint interfaces of a router-to-router
//!   link go down;
//! * [`Fault::RouterDown`] — every interface of one router goes down;
//! * [`Fault::InterfaceShutdown`] — one named interface goes down.
//!
//! The engine re-simulates the failed network from scratch (OSPF SPF, RIP
//! Bellman–Ford, and BGP path-vector all re-converge on the surviving
//! topology) and compares the resulting data plane against a healthy
//! baseline per host pair, yielding a [`DegradationClass`].

use crate::dataplane::{DataPlane, PathSet};
use crate::error::SimError;
use crate::simulate;
use confmask_config::NetworkConfigs;
use confmask_net_types::Ipv4Prefix;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One failed element.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// A router-to-router link fails: every interface pair between `a` and
    /// `b` sharing a connected prefix — and whose provenance matches
    /// `added` — is shut on both sides.
    ///
    /// `added` discriminates real links from anonymization-added fake
    /// links: fake links have no stable prefix identity across the
    /// original/anonymized network pair, so provenance is the portable way
    /// to name them.
    LinkDown {
        /// One endpoint router (hostname).
        a: String,
        /// The other endpoint router (hostname).
        b: String,
        /// `true` to fail only anonymization-added (fake) links between the
        /// two routers, `false` to fail only original links.
        added: bool,
    },
    /// A whole router fails (every interface shut).
    RouterDown {
        /// The failed router's hostname.
        router: String,
    },
    /// A single interface is administratively shut.
    InterfaceShutdown {
        /// Owning router's hostname.
        router: String,
        /// Interface name, e.g. `Ethernet0/3`.
        iface: String,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::LinkDown { a, b, added } => {
                let kind = if *added { "fake-link" } else { "link" };
                write!(f, "{kind}-down {a}--{b}")
            }
            Fault::RouterDown { router } => write!(f, "router-down {router}"),
            Fault::InterfaceShutdown { router, iface } => {
                write!(f, "iface-shutdown {router}:{iface}")
            }
        }
    }
}

/// A set of simultaneous faults (k = `faults.len()`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailureScenario {
    /// The faults injected together.
    pub faults: Vec<Fault>,
}

impl std::fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.faults.iter().map(|x| x.to_string()).collect();
        write!(f, "{{{}}}", parts.join(" + "))
    }
}

impl FailureScenario {
    /// A scenario with a single fault.
    pub fn single(fault: Fault) -> Self {
        FailureScenario {
            faults: vec![fault],
        }
    }

    /// Applies the scenario: returns a copy of `configs` with every
    /// affected interface administratively shut.
    ///
    /// Pure and idempotent — faults only ever set `shutdown = true`, so
    /// `apply(apply(c)) == apply(c)` and already-shut interfaces are
    /// unaffected. Referencing a router, interface, or link the network
    /// does not have yields [`SimError::UnknownElement`].
    pub fn apply(&self, configs: &NetworkConfigs) -> Result<NetworkConfigs, SimError> {
        let mut out = configs.clone();
        self.apply_in_place(&mut out)?;
        Ok(out)
    }

    /// [`FailureScenario::apply`] without the copy: shuts the affected
    /// interfaces of `configs` directly and returns the `(router, iface)`
    /// names whose shutdown flag this call actually flipped (interfaces
    /// that were already shut are not recorded). Passing the flips to
    /// [`revert_shutdowns`] restores `configs` exactly, which lets a sweep
    /// reuse one scratch copy instead of cloning the configurations per
    /// scenario. On error the configs are left unmodified.
    pub fn apply_in_place(
        &self,
        configs: &mut NetworkConfigs,
    ) -> Result<Vec<(String, String)>, SimError> {
        let mut flips = Vec::new();
        let mut go = || -> Result<(), SimError> {
            for fault in &self.faults {
                match fault {
                    Fault::LinkDown { a, b, added } => {
                        // Faults only flip shutdown flags, which
                        // `link_iface_pairs` never reads, so resolving the
                        // link against the partially-applied configs is
                        // identical to resolving it against the original.
                        let pairs = link_iface_pairs(configs, a, b, *added);
                        if pairs.is_empty() {
                            return Err(SimError::UnknownElement(format!(
                                "no {} between routers {a} and {b}",
                                if *added { "fake link" } else { "link" }
                            )));
                        }
                        for (router, iface) in pairs {
                            if shut_iface(configs, &router, &iface)? {
                                flips.push((router, iface));
                            }
                        }
                    }
                    Fault::RouterDown { router } => {
                        let rc = configs
                            .routers
                            .get_mut(router)
                            .ok_or_else(|| SimError::UnknownElement(format!("router {router}")))?;
                        for iface in &mut rc.interfaces {
                            if !iface.shutdown {
                                iface.shutdown = true;
                                flips.push((router.clone(), iface.name.clone()));
                            }
                        }
                    }
                    Fault::InterfaceShutdown { router, iface } => {
                        if !configs.routers.contains_key(router) {
                            return Err(SimError::UnknownElement(format!("router {router}")));
                        }
                        if shut_iface(configs, router, iface)? {
                            flips.push((router.clone(), iface.clone()));
                        }
                    }
                }
            }
            Ok(())
        };
        match go() {
            Ok(()) => Ok(flips),
            Err(e) => {
                revert_shutdowns(configs, &flips);
                Err(e)
            }
        }
    }
}

/// Un-shuts exactly the interfaces [`FailureScenario::apply_in_place`]
/// reported flipping, restoring the configs to their pre-apply state.
pub fn revert_shutdowns(configs: &mut NetworkConfigs, flipped: &[(String, String)]) {
    for (router, iface) in flipped {
        if let Some(rc) = configs.routers.get_mut(router) {
            if let Some(i) = rc.interfaces.iter_mut().find(|i| &i.name == iface) {
                i.shutdown = false;
            }
        }
    }
}

/// Shuts one interface; `Ok(true)` when this call flipped the flag.
fn shut_iface(configs: &mut NetworkConfigs, router: &str, iface: &str) -> Result<bool, SimError> {
    let rc = configs
        .routers
        .get_mut(router)
        .ok_or_else(|| SimError::UnknownElement(format!("router {router}")))?;
    let i = rc
        .interfaces
        .iter_mut()
        .find(|i| i.name == iface)
        .ok_or_else(|| SimError::UnknownElement(format!("interface {router}:{iface}")))?;
    let flipped = !i.shutdown;
    i.shutdown = true;
    Ok(flipped)
}

/// The interface pairs realizing the (a, b) link with the given provenance:
/// `(router, iface_name)` for every interface on `a` or `b` whose connected
/// prefix is shared by the other router and whose `added` flag matches.
fn link_iface_pairs(
    configs: &NetworkConfigs,
    a: &str,
    b: &str,
    added: bool,
) -> Vec<(String, String)> {
    let (Some(ra), Some(rb)) = (configs.routers.get(a), configs.routers.get(b)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ia in &ra.interfaces {
        let Some(pa) = ia.prefix() else { continue };
        for ib in &rb.interfaces {
            if ib.prefix() == Some(pa) && ia.added == added && ib.added == added {
                out.push((a.to_string(), ia.name.clone()));
                out.push((b.to_string(), ib.name.clone()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// All router-to-router links present in a network, as `(a, b, added)`
/// with `a < b`. A link is a connected prefix shared by interfaces on
/// exactly two distinct routers; its provenance is `added` iff both
/// endpoint interfaces are anonymization-added.
pub fn links_of(configs: &NetworkConfigs) -> Vec<(String, String, bool)> {
    let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<(&str, bool)>> = BTreeMap::new();
    for (name, rc) in &configs.routers {
        for iface in &rc.interfaces {
            if let Some(p) = iface.prefix() {
                by_prefix.entry(p).or_default().push((name, iface.added));
            }
        }
    }
    let mut out = Vec::new();
    for members in by_prefix.values() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (na, aa) = members[i];
                let (nb, ab) = members[j];
                if na == nb {
                    continue;
                }
                let (x, y) = if na < nb { (na, nb) } else { (nb, na) };
                out.push((x.to_string(), y.to_string(), aa && ab));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Every single-link (k = 1) failure scenario of a network, in
/// deterministic order.
pub fn enumerate_single_link_failures(configs: &NetworkConfigs) -> Vec<FailureScenario> {
    links_of(configs)
        .into_iter()
        .map(|(a, b, added)| FailureScenario::single(Fault::LinkDown { a, b, added }))
        .collect()
}

/// A seeded sample of double-link (k = 2) failure scenarios: up to `count`
/// distinct unordered pairs of single-link faults, drawn deterministically
/// from `seed`.
pub fn sample_double_link_failures(
    configs: &NetworkConfigs,
    seed: u64,
    count: usize,
) -> Vec<FailureScenario> {
    let singles = links_of(configs);
    let n = singles.len();
    if n < 2 || count == 0 {
        return Vec::new();
    }
    let total_pairs = n * (n - 1) / 2;
    let want = count.min(total_pairs);
    let mut rng = SplitMix64::new(seed);
    let mut chosen: BTreeSet<(usize, usize)> = BTreeSet::new();
    // Rejection-sample distinct index pairs; bounded because want ≤ total.
    while chosen.len() < want {
        let i = (rng.next() % n as u64) as usize;
        let j = (rng.next() % n as u64) as usize;
        if i != j {
            chosen.insert((i.min(j), i.max(j)));
        }
    }
    chosen
        .into_iter()
        .map(|(i, j)| {
            let mk = |(a, b, added): &(String, String, bool)| Fault::LinkDown {
                a: a.clone(),
                b: b.clone(),
                added: *added,
            };
            FailureScenario {
                faults: vec![mk(&singles[i]), mk(&singles[j])],
            }
        })
        .collect()
}

/// Lazily enumerates **every** unordered pair of distinct link failures
/// (exhaustive k = 2), in deterministic `(i < j)` index order over
/// [`links_of`]. `C(links, 2)` scenarios exist — ~2 000 on net D, ~51 000
/// on net F — so the iterator materializes one [`FailureScenario`] at a
/// time instead of a vector of them; driven through the streaming sweep
/// the whole enumeration retains only digests.
#[derive(Debug, Clone)]
pub struct DoubleLinkFailures {
    links: Vec<(String, String, bool)>,
    i: usize,
    j: usize,
}

/// Every k = 2 link-failure scenario of a network, lazily.
pub fn enumerate_double_link_failures(configs: &NetworkConfigs) -> DoubleLinkFailures {
    DoubleLinkFailures {
        links: links_of(configs),
        i: 0,
        j: 1,
    }
}

impl DoubleLinkFailures {
    fn scenario(&self, i: usize, j: usize) -> FailureScenario {
        let mk = |(a, b, added): &(String, String, bool)| Fault::LinkDown {
            a: a.clone(),
            b: b.clone(),
            added: *added,
        };
        FailureScenario {
            faults: vec![mk(&self.links[i]), mk(&self.links[j])],
        }
    }
}

impl Iterator for DoubleLinkFailures {
    type Item = FailureScenario;

    fn next(&mut self) -> Option<FailureScenario> {
        let n = self.links.len();
        if self.i + 1 >= n || self.j >= n {
            return None;
        }
        let sc = self.scenario(self.i, self.j);
        self.j += 1;
        if self.j >= n {
            self.i += 1;
            self.j = self.i + 1;
        }
        Some(sc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.links.len();
        if self.i + 1 >= n {
            return (0, Some(0));
        }
        // Full rows below the current one, plus the rest of this row.
        let rows_after = n - 1 - self.i; // rows i+1 .. n-1 have n-1-r pairs each
        let below = rows_after * rows_after.saturating_sub(1) / 2;
        let this_row = n - self.j;
        let rem = below + this_row;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for DoubleLinkFailures {}

/// A seeded sample of triple-link (k = 3) failure scenarios: up to `count`
/// distinct unordered triples of single-link faults, drawn
/// deterministically from `seed`. Exhaustive k = 3 is `C(links, 3)` —
/// already ~5.4M on net F — so compound-failure columns beyond k = 2 are
/// always budgeted samples.
pub fn sample_triple_link_failures(
    configs: &NetworkConfigs,
    seed: u64,
    count: usize,
) -> Vec<FailureScenario> {
    let singles = links_of(configs);
    let n = singles.len();
    if n < 3 || count == 0 {
        return Vec::new();
    }
    let total = n * (n - 1) * (n - 2) / 6;
    let want = count.min(total);
    let mut rng = SplitMix64::new(seed);
    let mut chosen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    // Rejection-sample distinct index triples; bounded because want ≤ total.
    while chosen.len() < want {
        let mut idx = [
            (rng.next() % n as u64) as usize,
            (rng.next() % n as u64) as usize,
            (rng.next() % n as u64) as usize,
        ];
        idx.sort_unstable();
        if idx[0] != idx[1] && idx[1] != idx[2] {
            chosen.insert((idx[0], idx[1], idx[2]));
        }
    }
    chosen
        .into_iter()
        .map(|(i, j, k)| {
            let mk = |(a, b, added): &(String, String, bool)| Fault::LinkDown {
                a: a.clone(),
                b: b.clone(),
                added: *added,
            };
            FailureScenario {
                faults: vec![mk(&singles[i]), mk(&singles[j]), mk(&singles[k])],
            }
        })
        .collect()
}

/// The standard scenario sweep: every k = 1 link failure plus a seeded
/// sample of `k2_sample` k = 2 scenarios.
pub fn enumerate_scenarios(
    configs: &NetworkConfigs,
    k: usize,
    seed: u64,
    k2_sample: usize,
) -> Vec<FailureScenario> {
    let mut out = enumerate_single_link_failures(configs);
    if k >= 2 {
        out.extend(sample_double_link_failures(configs, seed, k2_sample));
    }
    out
}

/// SplitMix64 — the sim crate carries no RNG dependency, and scenario
/// sampling needs only a tiny deterministic stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How one host pair's forwarding behaviour changed under a failure,
/// relative to the healthy baseline. Ordered least-severe-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationClass {
    /// Identical path set — the failure did not affect this pair.
    Unchanged,
    /// Still cleanly reachable, over a different path set.
    Rerouted,
    /// Traffic is dropped even though the surviving physical topology
    /// still connects the pair — a routing (not connectivity) failure.
    BlackHoled,
    /// The surviving physical topology no longer connects the pair; no
    /// routing protocol could help.
    Partitioned,
    /// Some branch of the post-failure forwarding graph loops.
    Looping,
}

impl DegradationClass {
    /// Number of degradation classes (histogram width).
    pub const COUNT: usize = 5;

    /// Every class, least-severe-first (the `Ord` order).
    pub const ALL: [DegradationClass; Self::COUNT] = [
        DegradationClass::Unchanged,
        DegradationClass::Rerouted,
        DegradationClass::BlackHoled,
        DegradationClass::Partitioned,
        DegradationClass::Looping,
    ];

    /// The class's ordinal in severity order (`Unchanged` = 0).
    pub fn index(self) -> usize {
        match self {
            DegradationClass::Unchanged => 0,
            DegradationClass::Rerouted => 1,
            DegradationClass::BlackHoled => 2,
            DegradationClass::Partitioned => 3,
            DegradationClass::Looping => 4,
        }
    }

    /// Inverse of [`DegradationClass::index`] (`None` when out of range).
    pub fn from_index(i: usize) -> Option<DegradationClass> {
        Self::ALL.get(i).copied()
    }
}

impl std::fmt::Display for DegradationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradationClass::Unchanged => "unchanged",
            DegradationClass::Rerouted => "rerouted",
            DegradationClass::BlackHoled => "black-holed",
            DegradationClass::Partitioned => "partitioned",
            DegradationClass::Looping => "looping",
        };
        f.write_str(s)
    }
}

/// Classifies one host pair's post-failure behaviour against its healthy
/// baseline. `physically_connected` reports whether the pair is still
/// connected in the surviving physical topology and arbitrates
/// [`DegradationClass::Partitioned`] vs [`DegradationClass::BlackHoled`].
pub fn classify_pair(
    before: &PathSet,
    after: &PathSet,
    physically_connected: bool,
) -> DegradationClass {
    classify_pair_with(before, after, || physically_connected)
}

/// [`classify_pair`] with the connectivity answer supplied lazily.
///
/// Physical connectivity only arbitrates dropped traffic (blackhole vs
/// partition), so most pairs never consult it; callers that compute
/// component maps on demand (the incremental engine) pass a closure and
/// skip the flood fill whenever no pair drops traffic.
pub fn classify_pair_with(
    before: &PathSet,
    after: &PathSet,
    physically_connected: impl FnOnce() -> bool,
) -> DegradationClass {
    if after == before {
        return DegradationClass::Unchanged;
    }
    if after.has_loop {
        return DegradationClass::Looping;
    }
    if after.paths.is_empty() || after.blackhole {
        return if physically_connected() {
            DegradationClass::BlackHoled
        } else {
            DegradationClass::Partitioned
        };
    }
    DegradationClass::Rerouted
}

/// Connected components of the surviving physical topology (up interfaces
/// only): maps each device name (router or host) to a component id.
/// Devices sharing a component id are physically connected.
pub fn physical_components(configs: &NetworkConfigs) -> BTreeMap<String, usize> {
    // Adjacency: routers sharing a prefix on up interfaces; hosts attached
    // to a router whose up interface covers their gateway.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<&str>> = BTreeMap::new();
    for (name, rc) in &configs.routers {
        adj.entry(name).or_default();
        for iface in &rc.interfaces {
            if iface.shutdown {
                continue;
            }
            if let Some(p) = iface.prefix() {
                by_prefix.entry(p).or_default().push(name);
            }
        }
    }
    for members in by_prefix.values() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if members[i] != members[j] {
                    adj.entry(members[i]).or_default().push(members[j]);
                    adj.entry(members[j]).or_default().push(members[i]);
                }
            }
        }
    }
    for (hname, hc) in &configs.hosts {
        adj.entry(hname).or_default();
        for (rname, rc) in &configs.routers {
            let attached = rc.interfaces.iter().any(|i| {
                !i.shutdown
                    && i.address.map(|(a, _)| a) == Some(hc.gateway)
                    && i.prefix() == hc.prefix()
            });
            if attached {
                adj.entry(hname).or_default().push(rname);
                adj.entry(rname).or_default().push(hname);
            }
        }
    }

    let mut comp: BTreeMap<String, usize> = BTreeMap::new();
    let mut next = 0usize;
    let names: Vec<&str> = adj.keys().copied().collect();
    for name in names {
        if comp.contains_key(name) {
            continue;
        }
        let id = next;
        next += 1;
        let mut q = VecDeque::from([name]);
        comp.insert(name.to_string(), id);
        while let Some(cur) = q.pop_front() {
            for &nb in adj.get(cur).into_iter().flatten() {
                if !comp.contains_key(nb) {
                    comp.insert(nb.to_string(), id);
                    q.push_back(nb);
                }
            }
        }
    }
    comp
}

/// The outcome of one failure scenario: per-host-pair degradation classes
/// against the supplied healthy baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The scenario that was injected.
    pub scenario: FailureScenario,
    /// Degradation class for every ordered host pair in the baseline.
    pub classes: BTreeMap<(String, String), DegradationClass>,
}

impl ScenarioOutcome {
    /// Counts of pairs per degradation class, least-severe-first.
    pub fn histogram(&self) -> BTreeMap<DegradationClass, usize> {
        let mut h = BTreeMap::new();
        for c in self.classes.values() {
            *h.entry(*c).or_insert(0) += 1;
        }
        h
    }

    /// The most severe class any pair reached ([`DegradationClass`] order).
    pub fn worst(&self) -> DegradationClass {
        self.classes
            .values()
            .copied()
            .max()
            .unwrap_or(DegradationClass::Unchanged)
    }

    /// Whether every pair was unaffected.
    pub fn all_unchanged(&self) -> bool {
        self.classes
            .values()
            .all(|c| *c == DegradationClass::Unchanged)
    }
}

/// Injects `scenario` into `configs`, re-simulates every protocol to a new
/// fixpoint, and classifies each host pair of `baseline` against the
/// post-failure data plane.
///
/// `baseline` decides which pairs are reported — pass a data plane
/// restricted to real hosts to ignore anonymization-added fake hosts.
pub fn run_scenario(
    configs: &NetworkConfigs,
    baseline: &DataPlane,
    scenario: &FailureScenario,
) -> Result<ScenarioOutcome, SimError> {
    let _sp = confmask_obs::span("sim.fault.scenario");
    confmask_obs::counter_add("sim.fault.scenarios", 1);
    confmask_obs::debug!("sim.fault", "injecting scenario {scenario}");
    let failed_configs = scenario.apply(configs)?;
    let sim = simulate(&failed_configs)?;
    let comp = physical_components(&failed_configs);
    let empty = PathSet {
        blackhole: true,
        ..PathSet::default()
    };
    let mut classes = BTreeMap::new();
    for ((src, dst), before) in baseline.pairs() {
        let after = sim.dataplane.between(src, dst).unwrap_or(&empty);
        let connected = match (comp.get(src), comp.get(dst)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        classes.insert(
            (src.clone(), dst.clone()),
            classify_pair(before, after, connected),
        );
    }
    Ok(ScenarioOutcome {
        scenario: scenario.clone(),
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig};

    fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
        HostConfig {
            hostname: name.into(),
            iface_name: "eth0".into(),
            address: (addr.parse().unwrap(), 24),
            gateway: gw.parse().unwrap(),
            extra: vec![],
            added: false,
        }
    }

    /// Triangle r1–r2–r3 (all OSPF), host on r1 and on r2. Failing the
    /// r1–r2 link leaves the detour via r3.
    fn triangle() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.1.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.2.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n network 10.1.2.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r3 = parse_router(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n!\n",
        )
        .unwrap();
        NetworkConfigs::new(
            [r1, r2, r3],
            [
                host("h1", "10.1.1.100", "10.1.1.1"),
                host("h2", "10.1.2.100", "10.1.2.1"),
            ],
        )
    }

    #[test]
    fn enumerates_all_links() {
        let links = links_of(&triangle());
        assert_eq!(
            links,
            vec![
                ("r1".to_string(), "r2".to_string(), false),
                ("r1".to_string(), "r3".to_string(), false),
                ("r2".to_string(), "r3".to_string(), false),
            ]
        );
        assert_eq!(enumerate_single_link_failures(&triangle()).len(), 3);
    }

    #[test]
    fn apply_is_idempotent_and_pure() {
        let cfgs = triangle();
        let sc = FailureScenario::single(Fault::LinkDown {
            a: "r1".into(),
            b: "r2".into(),
            added: false,
        });
        let once = sc.apply(&cfgs).unwrap();
        let twice = sc.apply(&once).unwrap();
        assert_eq!(once, twice);
        // The original is untouched.
        assert!(cfgs.routers["r1"].interfaces.iter().all(|i| !i.shutdown));
        // Exactly the two endpoint interfaces are shut.
        assert!(
            once.routers["r1"]
                .interface("Ethernet0/0")
                .unwrap()
                .shutdown
        );
        assert!(
            once.routers["r2"]
                .interface("Ethernet0/0")
                .unwrap()
                .shutdown
        );
        assert!(
            !once.routers["r1"]
                .interface("Ethernet0/1")
                .unwrap()
                .shutdown
        );
    }

    #[test]
    fn unknown_elements_are_reported() {
        let cfgs = triangle();
        for sc in [
            FailureScenario::single(Fault::RouterDown {
                router: "nope".into(),
            }),
            FailureScenario::single(Fault::InterfaceShutdown {
                router: "r1".into(),
                iface: "Serial9/9".into(),
            }),
            FailureScenario::single(Fault::LinkDown {
                a: "r1".into(),
                b: "r2".into(),
                added: true, // no fake link exists between r1 and r2
            }),
        ] {
            assert!(
                matches!(sc.apply(&cfgs), Err(SimError::UnknownElement(_))),
                "{sc}"
            );
        }
    }

    #[test]
    fn link_failure_reroutes_via_detour() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let sc = FailureScenario::single(Fault::LinkDown {
            a: "r1".into(),
            b: "r2".into(),
            added: false,
        });
        let out = run_scenario(&cfgs, &baseline, &sc).unwrap();
        assert_eq!(
            out.classes[&("h1".to_string(), "h2".to_string())],
            DegradationClass::Rerouted
        );
        assert_eq!(out.worst(), DegradationClass::Rerouted);
        assert!(!out.all_unchanged());
    }

    #[test]
    fn router_failure_partitions_its_host() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        let sc = FailureScenario::single(Fault::RouterDown {
            router: "r2".into(),
        });
        let out = run_scenario(&cfgs, &baseline, &sc).unwrap();
        // h2 hangs off r2: both directions are physically partitioned.
        assert_eq!(
            out.classes[&("h1".to_string(), "h2".to_string())],
            DegradationClass::Partitioned
        );
        assert_eq!(
            out.classes[&("h2".to_string(), "h1".to_string())],
            DegradationClass::Partitioned
        );
    }

    #[test]
    fn double_failure_sampling_is_seeded_and_distinct() {
        let cfgs = triangle();
        let s1 = sample_double_link_failures(&cfgs, 7, 2);
        let s2 = sample_double_link_failures(&cfgs, 7, 2);
        assert_eq!(s1, s2, "same seed, same sample");
        assert_eq!(s1.len(), 2);
        assert!(s1[0] != s1[1]);
        for sc in &s1 {
            assert_eq!(sc.faults.len(), 2);
        }
        // Requesting more than C(n, 2) pairs saturates.
        assert_eq!(sample_double_link_failures(&cfgs, 7, 100).len(), 3);
    }

    #[test]
    fn exhaustive_k2_enumeration_is_lazy_and_complete() {
        let cfgs = triangle();
        let mut it = enumerate_double_link_failures(&cfgs);
        // 3 links → C(3, 2) = 3 scenarios, in (i < j) order.
        assert_eq!(it.len(), 3);
        let all: Vec<FailureScenario> = it.by_ref().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(it.len(), 0);
        for sc in &all {
            assert_eq!(sc.faults.len(), 2);
        }
        // Matches the saturated sampler's scenario *set*.
        let sampled: BTreeSet<FailureScenario> =
            sample_double_link_failures(&cfgs, 7, 100).into_iter().collect();
        assert_eq!(all.iter().cloned().collect::<BTreeSet<_>>(), sampled);
        // len() stays exact mid-iteration.
        let mut it2 = enumerate_double_link_failures(&cfgs);
        it2.next();
        assert_eq!(it2.len(), 2);
        assert_eq!(it2.by_ref().count(), 2);
    }

    #[test]
    fn triple_failure_sampling_is_seeded_and_distinct() {
        let cfgs = triangle();
        let s1 = sample_triple_link_failures(&cfgs, 11, 5);
        let s2 = sample_triple_link_failures(&cfgs, 11, 5);
        assert_eq!(s1, s2, "same seed, same sample");
        // Only C(3, 3) = 1 triple exists: the request saturates.
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].faults.len(), 3);
        assert!(sample_triple_link_failures(&cfgs, 11, 0).is_empty());
    }

    #[test]
    fn degradation_class_index_roundtrip() {
        for (i, c) in DegradationClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(DegradationClass::from_index(i), Some(*c));
        }
        assert_eq!(DegradationClass::from_index(DegradationClass::COUNT), None);
    }

    #[test]
    fn unaffected_scenario_is_all_unchanged() {
        let cfgs = triangle();
        let baseline = simulate(&cfgs).unwrap().dataplane;
        // r2–r3 carries no baseline traffic between h1 and h2.
        let sc = FailureScenario::single(Fault::LinkDown {
            a: "r2".into(),
            b: "r3".into(),
            added: false,
        });
        let out = run_scenario(&cfgs, &baseline, &sc).unwrap();
        assert!(out.all_unchanged(), "{:?}", out.histogram());
    }
}
